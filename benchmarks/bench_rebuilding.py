"""Global rebuilding (Section 4 preamble) — worst-case smoothing, measured.

"Standard, worst-case efficient global rebuilding techniques (see [12])"
give fully dynamic dictionaries with no size bound.  Claims quantified:

* during a rebuild, no single operation pays more than a constant (the
  migration batch is bounded — contrast a stop-the-world rehash);
* the total cost over n inserts with geometric growth stays linear;
* queries mid-rebuild still answer in one parallel round (both structures
  probed simultaneously on their own disk groups).

Output: ``benchmarks/results/rebuilding.txt``.
"""

import pytest

from repro.analysis.reporting import render_table
from repro.core.basic_dict import BasicDictionary
from repro.core.rebuilding import RebuildingDictionary
from repro.hashing.dgmp import DGMPDictionary
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 18


def _factory(capacity, generation):
    machine = ParallelDiskMachine(16, 32)
    return BasicDictionary(
        machine, universe_size=U, capacity=capacity, degree=16,
        seed=400 + generation,
    )


def test_rebuilding_smoothing(benchmark, save_table):
    n = 800
    d = RebuildingDictionary(_factory, initial_capacity=16, move_per_op=4)
    worst_insert = 0
    worst_lookup = 0
    total = 0
    for i in range(n):
        cost = d.insert(i, i)
        worst_insert = max(worst_insert, cost.total_ios)
        total += cost.total_ios
        result = d.lookup(i // 2)
        worst_lookup = max(worst_lookup, result.cost.total_ios)
        total += result.cost.total_ios

    # Contrast: a stop-the-world rebuild (DGMP forced to rehash) pays a
    # Theta(n/BD) spike on ONE unlucky operation.
    machine = ParallelDiskMachine(4, 4)
    dgmp = DGMPDictionary(machine, universe_size=U, capacity=4 * n, seed=1)
    from repro.workloads.keys import adversarial_keys_for_hash

    bad = adversarial_keys_for_hash(
        dgmp.hash, U, dgmp.table.capacity_items + 1
    )
    dgmp_worst = max(dgmp.insert(k, None).total_ios for k in bad)

    rows = [
        ["inserts performed", n],
        ["rebuilds completed", d.stats.rebuilds_finished],
        ["items migrated", d.stats.items_migrated],
        ["worst single insert (incl. mid-rebuild)", worst_insert],
        ["worst single lookup (incl. mid-rebuild)", worst_lookup],
        ["avg I/Os per op overall", f"{total / (2 * n):.2f}"],
        ["stop-the-world rehash spike ([7], context)", dgmp_worst],
    ]
    table = render_table(["metric", "value"], rows)
    save_table("rebuilding", table)
    assert d.stats.rebuilds_finished >= 4
    assert worst_insert <= 20  # constant, independent of n
    assert worst_lookup <= 2
    assert dgmp_worst > worst_insert  # the spike rebuilding removes
    benchmark.pedantic(lambda: d.lookup(5), rounds=5, iterations=1)
