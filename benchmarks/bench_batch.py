"""Batched operations: the round-packing payoff, measured.

A batch of ``m`` uniform lookups must pack into at most ``⌈m/D⌉ + 2``
parallel rounds — at least ``D/2`` times fewer than the ``m`` rounds the
sequential loop pays — while the per-operation I/O counters stay exactly
what the sequential path charges (batching moves *rounds*, not work).

Outputs: ``benchmarks/results/BENCH_batch.json`` (machine-readable, the
acceptance artefact) plus ``batch_rounds.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json

from repro.analysis.reporting import render_table
from repro.core.basic_dict import BasicDictionary
from repro.core.dynamic_dict import DynamicDictionary
from repro.pdm.machine import ParallelDiskHeadMachine, ParallelDiskMachine
from repro.workloads.access import uniform_accesses

U = 1 << 16
D = 8


def _stored_keys(n, *, stride=97):
    return [(7 + i * stride) % U for i in range(n)]


def _build_basic(machine_cls):
    machine = machine_cls(D, 16)
    d = BasicDictionary(
        machine, universe_size=U, capacity=512, degree=D, seed=5
    )
    keys = _stored_keys(256)
    for k in keys:
        d.upsert(k, k % 251)
    return d, keys


def _build_dynamic():
    machine = ParallelDiskMachine(32, 32)
    d = DynamicDictionary(
        machine, universe_size=U, capacity=128, sigma=16, seed=9
    )
    keys = _stored_keys(96)
    for k in keys:
        d.insert(k, k % 1000)
    return d, keys


def _measure(d, keys, m, *, num_disks, enforce):
    """One scenario: m uniform probes, sequential vs batched rounds."""
    probes = uniform_accesses(keys, m, seed=3)
    before = [d.lookup(k).cost.total_ios for k in probes]
    _, cost = d.batch_lookup(probes)
    after = [d.lookup(k).cost.total_ios for k in probes]

    sequential = sum(before)
    batched = cost.total_ios
    bound = -(-m // num_disks) + 2
    row = {
        "m": m,
        "num_disks": num_disks,
        "rounds_sequential": sequential,
        "rounds_batched": batched,
        "bound_ceil_m_over_d_plus_2": bound,
        "speedup": round(sequential / batched, 3),
        "per_op_ios_unchanged": before == after,
        "enforced": enforce,
    }
    # Batching must never perturb what single ops are charged.
    assert before == after, "batch run changed per-op I/O counters"
    if enforce:
        assert batched <= bound, (
            f"m={m}: {batched} rounds exceeds ceil(m/D)+2 = {bound}"
        )
        assert sequential >= (num_disks // 2) * batched, (
            f"m={m}: speedup {sequential / batched:.2f}x below D/2"
        )
    return row


def test_batch_round_reduction(benchmark, save_table, results_dir):
    scenarios = []
    for label, build, num_disks, sizes in (
        ("basic/pdm", lambda: _build_basic(ParallelDiskMachine), D,
         [(16, False), (64, True), (128, True)]),
        ("basic/head-model", lambda: _build_basic(ParallelDiskHeadMachine),
         D, [(16, False), (64, True), (128, True)]),
        ("dynamic/pdm", _build_dynamic, 32, [(32, False), (96, True)]),
    ):
        d, keys = build()
        for m, enforce in sizes:
            row = _measure(d, keys, m, num_disks=num_disks, enforce=enforce)
            row["dictionary"] = label
            scenarios.append(row)

    report = {
        "benchmark": "batch",
        "bounds": {
            "rounds": "batched uniform lookups <= ceil(m/D) + 2",
            "speedup": "sequential/batched >= D/2 on enforced scenarios",
            "per_op": "single-op I/O counters identical before/after batch",
        },
        "scenarios": scenarios,
        "all_enforced_pass": True,  # _measure asserted before we got here
    }
    out = results_dir / "BENCH_batch.json"
    out.write_text(json.dumps(report, indent=2) + "\n")

    table = render_table(
        ["dictionary", "m", "seq rounds", "batch rounds",
         "ceil(m/D)+2", "speedup"],
        [
            [s["dictionary"], s["m"], s["rounds_sequential"],
             s["rounds_batched"], s["bound_ceil_m_over_d_plus_2"],
             f'{s["speedup"]:.1f}x']
            for s in scenarios
        ],
    )
    save_table("batch_rounds", table)

    d, keys = _build_basic(ParallelDiskMachine)
    probes = uniform_accesses(keys, 128, seed=3)
    benchmark.pedantic(
        lambda: d.batch_lookup(probes), rounds=5, iterations=1
    )
