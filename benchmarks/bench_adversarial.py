"""Adversarial inputs — where "deterministic" earns its keep.

Section 1.1: "randomized solutions never give firm guarantees on
performance... all hashing based dictionaries we are aware of may use
``n/B^{O(1)}`` I/Os for a single operation in the worst case.  In contrast,
we give very good guarantees on the worst case performance of ANY
operation."

Two experiments:

1. **Against hashing**: keys engineered to collide under the table's hash
   function (an adversary who learned the function — or simply bad luck)
   drive per-operation cost toward ``Theta(n / BD)``.
2. **Against the expander**: the analogous attack — greedily choosing keys
   whose neighborhoods overlap the most — cannot push the deterministic
   structure past its Lemma 3 worst-case bound, because the bound holds for
   *every* subset of the universe.

Outputs: ``benchmarks/results/adversarial_*.txt``.
"""

import random

import pytest

from repro.analysis.reporting import render_table
from repro.core.basic_dict import BasicDictionary
from repro.core.load_balancer import lemma3_bound
from repro.hashing import DGMPDictionary, StripedHashTable
from repro.pdm.machine import ParallelDiskMachine
from repro.workloads.keys import adversarial_keys_for_hash

U = 1 << 18


def test_adversarial_vs_hashing(benchmark, save_table):
    rows = []

    # Striped table under colliding keys: probe chains grow linearly.
    machine = ParallelDiskMachine(4, 4)
    table = StripedHashTable(
        machine, universe_size=U, capacity=3000, seed=3
    )
    for mult in (1, 2, 4):
        n_bad = table.table.capacity_items * mult
        bad = adversarial_keys_for_hash(table.hash, U, n_bad)
        machine2 = ParallelDiskMachine(4, 4)
        fresh = StripedHashTable(
            machine2, universe_size=U, capacity=3000, seed=3
        )
        worst_ins = max(fresh.insert(k, None).total_ios for k in bad)
        worst_lkp = max(fresh.lookup(k).cost.total_ios for k in bad)
        rows.append(
            [f"striped, {mult}x superblock of colliders", n_bad,
             worst_lkp, worst_ins]
        )
    # DGMP: a single overflowing bucket triggers a full O(n/BD) rebuild.
    machine3 = ParallelDiskMachine(4, 4)
    dgmp = DGMPDictionary(machine3, universe_size=U, capacity=3000, seed=3)
    bad = adversarial_keys_for_hash(
        dgmp.hash, U, dgmp.table.capacity_items + 1
    )
    worst = max(dgmp.insert(k, None).total_ios for k in bad)
    rows.append(
        [f"[7] DGMP, 1 bucket + 1 collider", len(bad), 1, worst]
    )
    table_text = render_table(
        ["attack", "keys", "wc lookup I/Os", "wc update I/Os"], rows
    )
    save_table("adversarial_hashing", table_text)
    # The attacks work: worst cases far above the whp constants.
    assert any(int(r[3]) >= 4 for r in rows)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def _overlapping_keys(graph, count, pool=4000, seed=0):
    """Greedy adversary: pick keys minimizing NEW buckets covered —
    maximal neighborhood overlap against the (public) expander."""
    rng = random.Random(seed)
    candidates = rng.sample(range(graph.left_size), pool)
    covered = set()
    chosen = []
    while len(chosen) < count and candidates:
        best, best_new = None, None
        for key in candidates[:400]:
            new = len(set(graph.neighbors(key)) - covered)
            if best_new is None or new < best_new:
                best, best_new = key, new
        chosen.append(best)
        covered.update(graph.neighbors(best))
        candidates.remove(best)
    return chosen


def test_adversary_cannot_break_deterministic_bound(benchmark, save_table):
    degree = 12
    machine = ParallelDiskMachine(degree, 32)
    d = BasicDictionary(
        machine, universe_size=U, capacity=800, degree=degree,
        stripe_size=48, seed=4,
    )
    n = 500
    bad = _overlapping_keys(d.graph, n, seed=4)
    worst_ins = max(d.insert(k, None).total_ios for k in bad)
    worst_lkp = max(d.lookup(k).cost.total_ios for k in bad)
    bound = lemma3_bound(
        n=n, v=d.num_buckets, k=1, d=degree, eps=1 / 12, delta=0.5
    )
    max_load = d.current_max_load()

    # Compare with a benign (random) key set on an identical structure.
    machine2 = ParallelDiskMachine(degree, 32)
    benign = BasicDictionary(
        machine2, universe_size=U, capacity=800, degree=degree,
        stripe_size=48, seed=4,
    )
    for k in random.Random(1).sample(range(U), n):
        benign.insert(k, None)

    table = render_table(
        ["key set", "max load", "Lemma3 bound", "wc lookup", "wc update"],
        [
            ["adversarial (max overlap)", max_load, f"{bound:.1f}",
             worst_lkp, worst_ins],
            ["random", benign.current_max_load(), f"{bound:.1f}", 1, 2],
        ],
    )
    save_table("adversarial_deterministic", table)
    assert max_load <= bound
    assert worst_lkp == 1 and worst_ins == 2  # untouched by the adversary
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
