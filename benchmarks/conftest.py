"""Shared benchmark plumbing.

Every benchmark regenerates one of the paper's quantitative artefacts
(Figure 1 or a lemma/theorem bound).  Wall-clock timing comes from
pytest-benchmark; the scientifically meaningful output — parallel-I/O
counts versus the paper's bounds — is attached as ``extra_info`` and also
written as a plain-text table under ``benchmarks/results/`` so
EXPERIMENTS.md can reference it.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.obs.export import write_table_artifact

RESULTS_DIR = pathlib.Path(__file__).parent / "results"


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


@pytest.fixture
def save_table(results_dir):
    """Write a rendered table under benchmarks/results/<name>.txt (plus a
    machine-readable .json sidecar via repro.obs.export)."""

    def _save(name: str, text: str) -> None:
        write_table_artifact(results_dir, name, text)
        # Also echo to the captured stdout for `pytest -s` users.
        print(f"\n[{name}]\n{text}")

    return _save
