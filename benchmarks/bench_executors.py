"""Executor scaling: wall-clock round time per backend, charged rounds fixed.

The executor seam's contract has two halves.  The *deterministic* half —
identical results, identical charged I/O — is pinned by the differential
suite (``tests/integration/test_executor_parity.py``).  This benchmark
pins the *physical* half: with a modelled per-block transfer time, the
file backend's thread-per-disk fan-out must actually overlap the D
transfers of a parallel round, while its own sequential (``workers=1``)
mode pays for them one after another.  That overlap is the PDM's whole
point — a round costs one transfer, not D — so the speedup at ``D=8`` is
gated at >= 2x (the observed value is near D; the gate is loose so one
noisy CI box cannot flake it).

Every scenario drives the *same* seeded workload, and the charged round
counts are asserted identical across all backends before any wall number
is reported: the clock may move, the accounting may not.

Outputs ``benchmarks/results/BENCH_executors.json`` (ingested into the
bench trajectory by ``python -m repro.obs.history``) and
``executors.txt``.  Wall values are machine-dependent; the schema and the
charged counts are fixed.
"""

from __future__ import annotations

import json
import time

from repro.analysis.reporting import render_table
from repro.pdm.executors import create_executor
from repro.pdm.machine import ParallelDiskMachine

B = 16
BLOCKS_PER_DISK = 8
#: timed full-stripe read rounds per scenario
ROUNDS = 24
#: modelled per-block transfer time (GIL released while it elapses), so
#: the parallel-vs-sequential ratio measures overlap, not the page cache
TRANSFER_DELAY_NS = 1_500_000
DISK_COUNTS = (4, 8, 16)
#: the CI gate: parallel file backend vs its own workers=1 mode at D=8
SPEEDUP_GATE_D = 8
SPEEDUP_GATE = 2.0


def _build_executor(name, disks, tmp_path):
    directory = str(tmp_path / f"{name}-d{disks}")
    if name == "simulated":
        return None
    if name == "file":
        return create_executor(
            "file", directory=directory, transfer_delay_ns=TRANSFER_DELAY_NS
        )
    if name == "file-seq":
        return create_executor(
            "file", directory=directory, workers=1,
            transfer_delay_ns=TRANSFER_DELAY_NS,
        )
    if name == "process":
        return create_executor(
            "process", directory=directory,
            transfer_delay_ns=TRANSFER_DELAY_NS,
        )
    raise ValueError(name)


def _run_scenario(name, disks, tmp_path):
    """One backend, one D: fill, warm, then time ROUNDS full stripes.

    Returns ``(elapsed_ms, round_us, charged)`` where ``charged`` is the
    (rounds, blocks) read during the timed window only — the quantity
    that must be identical across every backend.
    """
    machine = ParallelDiskMachine(
        disks, B, executor=_build_executor(name, disks, tmp_path)
    )
    try:
        machine.write_blocks(
            ((d, b), [d, b], 24)
            for d in range(disks) for b in range(BLOCKS_PER_DISK)
        )
        # One warm pass: page cache, thread spin-up, process-pool start.
        machine.read_blocks([(d, 0) for d in range(disks)])

        before = (machine.stats.read_ios, machine.stats.blocks_read)
        t0 = time.perf_counter_ns()
        for r in range(ROUNDS):
            blocks = machine.read_blocks(
                [(d, (r + d) % BLOCKS_PER_DISK) for d in range(disks)]
            )
            assert len(blocks) == disks
        elapsed_ns = time.perf_counter_ns() - t0
        charged = (
            machine.stats.read_ios - before[0],
            machine.stats.blocks_read - before[1],
        )
    finally:
        machine.close()
    return elapsed_ns / 1e6, elapsed_ns / ROUNDS / 1e3, charged


def test_executor_scaling(benchmark, save_table, results_dir, tmp_path):
    scenarios = []
    wall = {}
    for disks in DISK_COUNTS:
        charged_by_backend = {}
        for name in ("simulated", "file", "file-seq", "process"):
            elapsed_ms, round_us, charged = _run_scenario(
                name, disks, tmp_path
            )
            charged_by_backend[name] = charged
            wall[(name, disks)] = elapsed_ms
            scenarios.append({
                "executor": name,
                "disks": disks,
                "elapsed_ms": round(elapsed_ms, 3),
                "round_us": round(round_us, 2),
                "charged_rounds": charged[0],
                "charged_blocks": charged[1],
            })
        # The accounting half of the contract: every backend charged the
        # same rounds and moved the same blocks for the same workload.
        assert len(set(charged_by_backend.values())) == 1, (
            f"charged-I/O divergence at D={disks}: {charged_by_backend}"
        )
        assert charged_by_backend["simulated"] == (ROUNDS, ROUNDS * disks)

    speedups = {
        f"file_parallel_over_sequential_d{disks}": round(
            wall[("file-seq", disks)] / wall[("file", disks)], 2
        )
        for disks in DISK_COUNTS
    }
    gate_key = f"file_parallel_over_sequential_d{SPEEDUP_GATE_D}"
    assert speedups[gate_key] >= SPEEDUP_GATE, (
        f"file backend failed to overlap parallel rounds: "
        f"{speedups[gate_key]}x < {SPEEDUP_GATE}x at D={SPEEDUP_GATE_D} "
        f"(sequential {wall[('file-seq', SPEEDUP_GATE_D)]:.1f}ms vs "
        f"parallel {wall[('file', SPEEDUP_GATE_D)]:.1f}ms)"
    )

    payload = {
        "benchmark": "executors",
        "config": {
            "block_items": B,
            "blocks_per_disk": BLOCKS_PER_DISK,
            "rounds": ROUNDS,
            "transfer_delay_ns": TRANSFER_DELAY_NS,
            "disk_counts": list(DISK_COUNTS),
            "speedup_gate": SPEEDUP_GATE,
        },
        "scenarios": scenarios,
        "speedups": speedups,
    }
    out = results_dir / "BENCH_executors.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    rows = [
        [
            sc["executor"], sc["disks"], sc["elapsed_ms"], sc["round_us"],
            sc["charged_rounds"], sc["charged_blocks"],
        ]
        for sc in scenarios
    ]
    table = render_table(
        ["executor", "D", "elapsed ms", "round us", "rounds", "blocks"],
        rows,
    )
    table += "\n" + "\n".join(
        f"{key}: {value}x" for key, value in sorted(speedups.items())
    )
    save_table("executors", table)

    # pytest-benchmark compatibility: time one parallel file-backed round.
    bench_machine = ParallelDiskMachine(
        4, B, executor=_build_executor("file", 4, tmp_path / "bench")
    )
    try:
        bench_machine.write_blocks(
            ((d, 0), [d], 24) for d in range(4)
        )
        benchmark.pedantic(
            lambda: bench_machine.read_blocks([(d, 0) for d in range(4)]),
            rounds=5, iterations=2,
        )
    finally:
        bench_machine.close()
