"""Lemmas 4 and 5 — unique-neighbor quantities, measured vs bounds.

* Lemma 4: ``|Phi(S)| >= (1 - 2 eps) d |S|``;
* Lemma 5: ``|S'| >= (1 - 2 eps / lambda) |S|`` for
  ``S' = {x : |Γ(x) ∩ Phi(S)| >= (1 - lambda) d}``;
* the construction corollary (eps = 1/12, lambda = 1/3): at least half of
  every set is assignable per round.

``eps`` is measured per set (the actual expansion deficit of that S on the
seeded graph), so the check is exact, not asymptotic.

Output: ``benchmarks/results/lemma45_unique.txt``.
"""

import random

import pytest

from repro.analysis.reporting import render_table
from repro.expanders.random_graph import SeededRandomExpander
from repro.expanders.verify import (
    neighbor_set,
    unique_neighbor_set,
    well_assignable_subset,
)

U = 1 << 20


def _cell(n, d, stripe, seed):
    g = SeededRandomExpander(
        left_size=U, degree=d, stripe_size=stripe, seed=seed
    )
    S = random.Random(seed).sample(range(U), n)
    gamma = len(neighbor_set(g, S))
    phi = len(unique_neighbor_set(g, S))
    eps = max(1e-9, 1 - gamma / (d * n))
    lemma4 = (1 - 2 * eps) * d * n
    s_prime = len(well_assignable_subset(g, S, 1 / 3))
    lemma5 = (1 - 2 * eps / (1 / 3)) * n
    return gamma, phi, eps, lemma4, s_prime, lemma5


def test_lemma45_sweep(benchmark, save_table):
    rows = []
    for n, d, stripe in (
        (100, 16, 2048),
        (500, 16, 2048),
        (2000, 16, 2048),
        (500, 24, 2048),
        (500, 16, 512),   # tighter array -> bigger eps
    ):
        gamma, phi, eps, lemma4, s_prime, lemma5 = _cell(n, d, stripe, n + d)
        rows.append(
            [
                n, d, d * stripe,
                f"{eps:.4f}",
                phi, f"{lemma4:.0f}",
                s_prime, f"{max(0.0, lemma5):.0f}",
            ]
        )
        assert phi >= lemma4 - 1e-6
        assert s_prime >= lemma5 - 1e-6
    table = render_table(
        ["n", "d", "v", "eps(meas)", "|Phi(S)|", "Lemma4 bound",
         "|S'|", "Lemma5 bound"],
        rows,
    )
    save_table("lemma45_unique", table)
    benchmark.pedantic(
        lambda: _cell(500, 16, 2048, 1), rounds=1, iterations=1
    )


def test_half_assignable_per_round(benchmark, save_table):
    """The Theorem 6 recursion engine: with the paper's parameters, each
    round assigns at least half of what remains — measured across rounds."""
    g = SeededRandomExpander(
        left_size=U, degree=16, stripe_size=4 * 600, seed=5
    )
    remaining = random.Random(5).sample(range(U), 600)
    rows = []
    rnd = 0
    while remaining and rnd < 10:
        s_prime = set(well_assignable_subset(g, remaining, 1 / 3))
        rows.append([rnd, len(remaining), len(s_prime)])
        assert len(s_prime) >= len(remaining) * 0.5
        remaining = [x for x in remaining if x not in s_prime]
        rnd += 1
    assert not remaining
    table = render_table(["round", "remaining", "assignable"], rows)
    save_table("lemma5_rounds", table)
    benchmark.pedantic(
        lambda: well_assignable_subset(
            g, random.Random(1).sample(range(U), 300), 1 / 3
        ),
        rounds=1,
        iterations=1,
    )
