"""Scaling curves — the "figure" view of Figure 1.

Two series the paper's argument rests on:

1. **I/O vs n**: the B-tree's lookup cost grows as ``Theta(log_BD n)``
   while every dictionary row stays flat at ~1 — the asymptotic separation
   of Section 1 plotted as measured points;
2. **I/O vs D (randomness-for-parallelism)**: at fixed universe size, the
   deterministic structures need ``D = Omega(log u)`` disks to exist at all
   (the expander degree); hashing works at any D.  The sweep shows the
   trade the title announces: spend parallelism, drop randomness.

Outputs: ``benchmarks/results/scaling_*.txt``.
"""

import random

import pytest

from repro.analysis.reporting import render_table
from repro.btree import BTreeDictionary
from repro.core.basic_dict import BasicDictionary
from repro.core.interface import CapacityExceeded
from repro.hashing import StripedHashTable
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 22


def test_scaling_io_vs_n(benchmark, save_table):
    rows = []
    dict_curve = []
    btree_curve = []
    for n in (500, 4_000, 32_000, 130_000):
        probes = random.Random(n).sample(range(U), 300)

        machine_b = ParallelDiskMachine(8, 4)
        btree = BTreeDictionary(machine_b, universe_size=U, capacity=n)
        machine_d = ParallelDiskMachine(8, 4)
        d = BasicDictionary(
            machine_d, universe_size=U, capacity=n, degree=8,
            bucket_capacity=12, seed=1,
        )
        keys = random.Random(n + 1).sample(range(U), n)
        for k in keys:
            btree.insert(k, None)
            d.insert(k, None)
        sample = random.Random(2).sample(keys, 300)
        btree_ios = sum(
            btree.lookup(k).cost.total_ios for k in sample
        ) / 300
        dict_ios = sum(d.lookup(k).cost.total_ios for k in sample) / 300
        dict_curve.append(dict_ios)
        btree_curve.append(btree_ios)
        rows.append([n, f"{btree_ios:.2f}", f"{dict_ios:.2f}"])
    table = render_table(
        ["n", "B-tree lookup I/Os", "S4.1 lookup I/Os"], rows
    )
    save_table("scaling_n", table)
    # B-tree grows with n; the dictionary does not.
    assert btree_curve[-1] > btree_curve[0]
    assert max(dict_curve) == min(dict_curve)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_scaling_io_vs_disks(benchmark, save_table):
    """The randomness/parallelism trade: how each family uses more disks."""
    n = 2000
    rows = []
    for D in (2, 4, 8, 16, 32):
        keys = random.Random(3).sample(range(U), n)

        # Hashing: works at any D; more disks -> bigger superblocks.
        machine_h = ParallelDiskMachine(D, 8)
        table_h = StripedHashTable(
            machine_h, universe_size=U, capacity=n, seed=3
        )
        for k in keys:
            table_h.insert(k, None)
        h_ios = sum(
            table_h.lookup(k).cost.total_ios for k in keys[:200]
        ) / 200

        # Deterministic: needs degree <= D; small D forces a small degree
        # whose load balancing needs deep (multi-block) buckets or fails.
        try:
            machine_d = ParallelDiskMachine(D, 8)
            d = BasicDictionary(
                machine_d, universe_size=U, capacity=n, degree=D,
                seed=3,
            )
            for k in keys:
                d.insert(k, None)
            det = (
                f"{sum(d.lookup(k).cost.total_ios for k in keys[:200]) / 200:.2f}"
            )
        except CapacityExceeded:
            det = "infeasible"
        rows.append([D, f"{h_ios:.2f}", det])
    table = render_table(
        ["disks D", "hashing lookup I/Os", "S4.1 lookup I/Os"], rows
    )
    save_table("scaling_disks", table)
    # At D >= ~log u the deterministic structure matches hashing.
    assert rows[-1][2] != "infeasible"
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_pointer_indirection_bandwidth(benchmark, save_table):
    """Section 1.1's pointer trick: any dictionary serves B*D-item payloads
    at its native cost + exactly one extra I/O."""
    from repro.core.pointer_store import PointerStore

    degree, B = 16, 32
    index = BasicDictionary(
        ParallelDiskMachine(degree, B), universe_size=U, capacity=64,
        degree=degree, seed=5,
    )
    store = PointerStore(
        index, ParallelDiskMachine(degree, B), capacity=64
    )
    payload = list(range(store.payload_capacity_items))
    for k in range(32):
        store.insert(k, payload)
    costs = [store.lookup(k).cost.total_ios for k in range(32)]
    table = render_table(
        ["payload items", "lookup I/Os (index + payload)", "wc"],
        [[len(payload), f"{sum(costs) / len(costs):.2f}", max(costs)]],
    )
    save_table("scaling_pointer", table)
    assert max(costs) == 2  # 1 index probe + 1 payload fetch
    benchmark.pedantic(lambda: store.lookup(1), rounds=5, iterations=1)
