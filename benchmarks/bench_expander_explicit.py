"""Section 5 / Theorem 12 — the semi-explicit expander construction.

Regenerated claims:

* degree ``polylog(u)`` — orders of magnitude below tabulating the
  universe, and far below Ta-Shma's ``2^{(log log u)^{O(1)}}`` blow-up at
  these sizes;
* right part ``O(N d)``;
* internal memory ``O(N^beta)``-regime advice, traded for explicitness;
* composed error ``1 - (1 - eps')^k`` (Lemma 10/11), certified by sampling;
* trivial striping multiplies the right part by exactly ``d`` (the PDM
  adaptation), while the parallel-disk-head model needs no blow-up.

Output: ``benchmarks/results/expander_semi_explicit.txt``.
"""

import pytest

from repro.analysis.reporting import render_table
from repro.expanders.semi_explicit import SemiExplicitExpander
from repro.expanders.striping import TriviallyStripedExpander
from repro.expanders.telescope import TelescopeProduct
from repro.expanders.verify import verify_expansion_sampled


def test_semi_explicit_u_sweep(benchmark, save_table):
    rows = []
    for log_u in (14, 17, 20):
        u = 1 << log_u
        se = SemiExplicitExpander.build(
            u=u, N=4, eps=0.5, beta=0.5, seed=3, certify_trials=60
        )
        report = verify_expansion_sampled(
            se.expander, 4, se.composed_eps, trials=30, seed=1
        )
        rows.append(
            [
                f"2^{log_u}",
                len(se.stages),
                se.degree,
                se.right_size,
                se.memory_words,
                f"{se.composed_eps:.3f}",
                "yes" if report.is_expander else "NO",
            ]
        )
        assert report.is_expander
        # polylog degree: far below any constant root of u.
        assert se.degree < u ** 0.5
        # Memory far below tabulating the universe (u * d words).
        assert se.memory_words < u * se.degree / 10
    table = render_table(
        ["u", "stages", "degree", "right size", "memory words",
         "composed eps", "certified"],
        rows,
    )
    save_table("expander_semi_explicit", table)
    benchmark.pedantic(
        lambda: SemiExplicitExpander.build(
            u=1 << 14, N=4, eps=0.5, beta=0.5, seed=3, certify=False
        ),
        rounds=1,
        iterations=1,
    )


def test_telescope_error_composition(benchmark, save_table):
    """Lemma 10: the measured expansion of the composition is consistent
    with 1 - prod(1 - eps_i)."""
    se = SemiExplicitExpander.build(
        u=1 << 18, N=4, eps=0.5, beta=0.5, seed=7, certify_trials=60
    )
    stage_eps = [s.eps for s in se.stages]
    predicted = TelescopeProduct.composed_eps(stage_eps)
    report = verify_expansion_sampled(
        se.expander, 4, predicted, trials=40, seed=2
    )
    rows = [[f"{e:.3f}" for e in stage_eps] + [f"{predicted:.3f}",
            f"{report.worst_ratio:.3f}"]]
    table = render_table(
        [f"eps_{i}" for i in range(len(stage_eps))]
        + ["composed", "worst measured ratio"],
        rows,
    )
    save_table("expander_telescope", table)
    assert report.is_expander
    assert report.worst_ratio >= 1 - predicted
    benchmark.pedantic(lambda: se.expander.neighbors(12345), rounds=5,
                       iterations=1)


def test_striping_blowup_is_exactly_d(benchmark, save_table):
    se = SemiExplicitExpander.build(
        u=1 << 16, N=4, eps=0.5, beta=0.5, seed=9, certify=False
    )
    striped = TriviallyStripedExpander(se.expander)
    table = render_table(
        ["model", "right size", "space factor"],
        [
            ["parallel disk head (no striping)", se.right_size, 1],
            ["parallel disk (trivially striped)", striped.right_size,
             striped.space_blowup],
        ],
    )
    save_table("expander_striping", table)
    assert striped.right_size == se.right_size * se.degree
    benchmark.pedantic(lambda: striped.striped_neighbors(1), rounds=5,
                       iterations=1)
