"""Section 6 (open problems) — recursive load balancing, quantified.

The paper: "It is plausible that full bandwidth can be achieved with lookup
in 1 I/O, while still supporting efficient updates.  One idea... apply the
load balancing scheme with k = Omega(d), recursively, for some constant
number of levels before relying on a brute-force approach.  However, this
makes the time for updates non-constant."

We built that structure (:mod:`repro.core.recursive_dict`).  This benchmark
maps out what the idea buys and what it costs:

* worst-case lookups ARE 1 parallel I/O at record sizes up to ~BD bits
  (full bandwidth) — the open problem's target, achieved on (levels+1)*d
  disks;
* as space tightens, records spill through levels into the brute-force
  area, whose rewrite-per-insert and hard capacity are exactly the
  "non-constant updates / eventually stuck" failure the paper predicted.

Outputs: ``benchmarks/results/section6_*.txt``.
"""

import random

import pytest

from repro.analysis.reporting import render_table
from repro.core.interface import CapacityExceeded
from repro.core.recursive_dict import RecursiveLoadBalancedDictionary
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 20


def _build(capacity, sigma, slack, levels=2, degree=16, seed=1):
    machine = ParallelDiskMachine((levels + 1) * degree, 32)
    d = RecursiveLoadBalancedDictionary(
        machine, universe_size=U, capacity=capacity, sigma=sigma,
        degree=degree, levels=levels, stripe_slack=slack, seed=seed,
    )
    rng = random.Random(seed)
    ref = {}
    while len(ref) < capacity:
        k = rng.randrange(U)
        v = rng.randrange(1 << sigma)
        d.insert(k, v)
        ref[k] = v
    return d, ref


def test_section6_full_bandwidth_one_probe(benchmark, save_table):
    """Record size sweep toward BD bits, asserting 1-I/O worst case."""
    degree, B, item_bits = 16, 32, 64
    bd_bits = degree * B * item_bits
    rows = []
    for label, sigma in (("BD/64", bd_bits // 64), ("BD/16", bd_bits // 16),
                         ("BD/8", bd_bits // 8)):
        d, ref = _build(120, sigma, slack=3.0)
        costs = [d.lookup(k).cost.total_ios for k in ref]
        ok = all(d.lookup(k).value == v for k, v in list(ref.items())[:20])
        rows.append(
            [label, sigma, max(costs), f"{d.stats.avg_insert_ios:.2f}",
             f"{d.stats.spill_fraction:.3f}", "yes" if ok else "NO"]
        )
        assert max(costs) == 1 and ok
    table = render_table(
        ["sigma", "bits", "wc lookup I/O", "avg insert I/O",
         "spill fraction", "roundtrip"],
        rows,
    )
    save_table("section6_bandwidth", table)
    benchmark.pedantic(
        lambda: _build(60, 256, slack=3.0), rounds=1, iterations=1
    )


def test_section6_update_cost_under_pressure(benchmark, save_table):
    """The predicted failure mode: tighter space -> spills -> brute-force
    churn.  Rounds stay flat (the parallel read hides the levels) but the
    data VOLUME per insert — blocks written, i.e. bandwidth — grows, and at
    the extreme the brute area's hard capacity raises: the "non-constant
    updates" of Section 6, showing up in the volume column."""
    rows = []
    volumes = []
    # (levels, slack, bucket_slots): from roomy to starved.
    settings = [
        (2, 3.0, None),
        (2, 0.4, None),
        (1, 0.1, 8),
        (1, 0.05, 4),
    ]
    for levels, slack, slots in settings:
        degree = 16
        machine = ParallelDiskMachine((levels + 1) * degree, 32)
        d = RecursiveLoadBalancedDictionary(
            machine, universe_size=U, capacity=400, sigma=160,
            degree=degree, levels=levels, stripe_slack=slack,
            bucket_slots=slots, seed=2,
        )
        rng = random.Random(2)
        inserted = 0
        outcome = "ok"
        try:
            while inserted < 400:
                k = rng.randrange(U)
                if d.contains(k):
                    continue
                d.insert(k, rng.randrange(1 << 160))
                inserted += 1
        except CapacityExceeded:
            outcome = "CapacityExceeded"
        blocks_per_insert = (
            machine.stats.blocks_written / max(1, d.stats.inserts)
        )
        volumes.append(blocks_per_insert)
        rows.append(
            [levels, slack, inserted, f"{d.stats.avg_insert_ios:.2f}",
             f"{blocks_per_insert:.1f}",
             f"{d.stats.spill_fraction:.3f}", d.stats.brute_inserts,
             outcome]
        )
    table = render_table(
        ["levels", "slack", "inserted", "avg insert rounds",
         "blocks written/insert", "spill fraction", "brute inserts",
         "outcome"],
        rows,
    )
    save_table("section6_pressure", table)
    # At generous slack the structure works; under pressure write volume
    # grows (the brute area is rewritten per insert) and finally the brute
    # capacity raises — the paper's predicted non-constant updates.
    assert rows[0][-1] == "ok"
    assert volumes[-1] > volumes[0]
    assert rows[-1][-1] == "CapacityExceeded" or rows[-1][6] > 0
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_section6_vs_theorem7_tradeoff(benchmark, save_table):
    """Side by side with Section 4.3 on equal degree: S6 buys 1-I/O
    worst-case lookups with 50% more disks; S4.3 holds fewer disks but
    pays eps on average and 2 on the lookup worst case."""
    from repro.core.dynamic_dict import DynamicDictionary

    degree, sigma, n = 16, 160, 300
    s6, ref6 = _build(n, sigma, slack=3.0, levels=2, degree=degree)
    s6_lookup_wc = max(s6.lookup(k).cost.total_ios for k in ref6)

    machine = ParallelDiskMachine(2 * degree, 32)
    s43 = DynamicDictionary(
        machine, universe_size=U, capacity=n, sigma=sigma, degree=degree,
        seed=1,
    )
    rng = random.Random(1)
    ref43 = {}
    while len(ref43) < n:
        k = rng.randrange(U)
        v = rng.randrange(1 << sigma)
        s43.insert(k, v)
        ref43[k] = v
    s43_costs = [s43.lookup(k).cost.total_ios for k in ref43]

    table = render_table(
        ["structure", "disks", "wc lookup", "avg lookup", "avg insert"],
        [
            ["S6 recursive", s6.disks_used, s6_lookup_wc,
             f"{1.0:.3f}", f"{s6.stats.avg_insert_ios:.3f}"],
            ["S4.3 dynamic", 2 * degree, max(s43_costs),
             f"{sum(s43_costs) / len(s43_costs):.3f}",
             f"{s43.stats.avg_insert_ios:.3f}"],
        ],
    )
    save_table("section6_vs_s43", table)
    assert s6_lookup_wc == 1
    assert max(s43_costs) >= s6_lookup_wc
    benchmark.pedantic(lambda: s6.lookup(next(iter(ref6))), rounds=5,
                       iterations=1)
