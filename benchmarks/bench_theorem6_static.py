"""Theorem 6 — the one-probe static dictionary.

Regenerated claims:

* lookups take exactly **one parallel I/O** in both cases, hit or miss;
* construction via external sorting costs ``O(sort(nd))`` — the measured
  I/Os divided by one sort(nd) bound stay a small constant as n grows;
* space: case (a) ``O(n (log u + sigma))`` bits, case (b)
  ``O(n log u log n + n sigma)`` bits — per-key bit counts reported;
* bandwidth: the record size sigma can grow toward ``Theta(BD)`` while
  lookups remain one probe.

Outputs: ``benchmarks/results/theorem6_*.txt``.
"""

import math
import random

import pytest

from repro.analysis.reporting import render_table
from repro.core.static_dict import StaticDictionary
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 20


def _items(n, sigma, seed=0):
    rng = random.Random(seed)
    out = {}
    while len(out) < n:
        out[rng.randrange(U)] = rng.randrange(1 << sigma)
    return out


def test_theorem6_one_probe_lookups(benchmark, save_table):
    rows = []
    for case in ("a", "b"):
        for n in (200, 800):
            sigma = 48
            degree = 16
            disks = degree * (2 if case == "a" else 1)
            machine = ParallelDiskMachine(disks, 32)
            items = _items(n, sigma, seed=n)
            d = StaticDictionary.build(
                machine, items, universe_size=U, sigma=sigma, case=case,
                degree=degree, seed=n,
            )
            hit = [d.lookup(k).cost.total_ios for k in items]
            rng = random.Random(9)
            miss = []
            while len(miss) < 200:
                probe = rng.randrange(U)
                if probe not in items:
                    miss.append(d.lookup(probe).cost.total_ios)
            per_key_bits = d.space_bits / n
            rows.append(
                [case, n, max(hit), max(miss), d.report.rounds,
                 f"{per_key_bits:.0f}"]
            )
            assert max(hit) == 1 and max(miss) == 1
    table = render_table(
        ["case", "n", "wc hit I/O", "wc miss I/O", "rounds", "bits/key"],
        rows,
    )
    save_table("theorem6_lookup", table)
    benchmark.pedantic(
        lambda: StaticDictionary.build(
            ParallelDiskMachine(16, 32),
            _items(200, 48),
            universe_size=U, sigma=48, case="b", degree=16,
        ),
        rounds=1,
        iterations=1,
    )


def test_theorem6_construction_is_o_sort_nd(benchmark, save_table):
    """Construction I/Os / sort(nd) must stay O(1) as n quadruples."""
    rows = []
    ratios = []
    for n in (128, 512, 2048):
        machine = ParallelDiskMachine(16, 32)
        items = _items(n, 16, seed=n)
        d = StaticDictionary.build(
            machine, items, universe_size=U, sigma=16, case="b",
            degree=16, seed=n, construction="extsort",
        )
        rep = d.external_report
        ratios.append(rep.ios_per_sort_bound)
        rows.append(
            [n, rep.total_ios, rep.sort_nd_bound,
             f"{rep.ios_per_sort_bound:.2f}", rep.rounds]
        )
    table = render_table(
        ["n", "construction I/Os", "sort(nd) bound", "ratio", "rounds"],
        rows,
    )
    save_table("theorem6_construction", table)
    # O(sort(nd)): the ratio must not grow with n (allow mild wobble).
    assert max(ratios) <= 2.5 * min(ratios)
    assert max(ratios) <= 16
    benchmark.pedantic(
        lambda: StaticDictionary.build(
            ParallelDiskMachine(16, 32),
            _items(128, 16, seed=1),
            universe_size=U, sigma=16, case="b", degree=16,
            construction="extsort",
        ),
        rounds=1,
        iterations=1,
    )


def test_construction_cost_comparison(benchmark, save_table):
    """All construction paths side by side: per-key inserts, batched bulk
    builds, and the Theorem 6 external-sort procedure."""
    from repro.core.basic_dict import BasicDictionary
    from repro.core.dynamic_dict import DynamicDictionary

    n = 600
    items = _items(n, 32, seed=9)
    rows = []

    m1 = ParallelDiskMachine(16, 32)
    incr = BasicDictionary(
        m1, universe_size=U, capacity=n, degree=16, seed=9
    )
    snap = m1.stats.snapshot()
    for k, v in items.items():
        incr.insert(k, v)
    rows.append(["S4.1 per-key inserts", m1.stats.since(snap).total_ios])

    m2 = ParallelDiskMachine(16, 32)
    bulk = BasicDictionary(
        m2, universe_size=U, capacity=n, degree=16, seed=9
    )
    rows.append(["S4.1 bulk_build", bulk.bulk_build(items).total_ios])

    m3 = ParallelDiskMachine(32, 32)
    dyn = DynamicDictionary(
        m3, universe_size=U, capacity=n, sigma=32, degree=16, seed=9
    )
    rows.append(["S4.3 bulk_load", dyn.bulk_load(items).total_ios])

    m4 = ParallelDiskMachine(16, 32)
    ext = StaticDictionary.build(
        m4, items, universe_size=U, sigma=32, case="b", degree=16,
        seed=9, construction="extsort",
    )
    rows.append(
        ["S4.2 extsort (Theorem 6)", ext.external_report.total_ios]
    )

    table = render_table(["construction path", "total parallel I/Os"], rows)
    save_table("theorem6_construction_paths", table)
    costs = {name: ios for name, ios in rows}
    assert costs["S4.1 bulk_build"] < costs["S4.1 per-key inserts"]
    assert costs["S4.3 bulk_load"] < 2 * n
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_theorem6_bandwidth_sweep(benchmark, save_table):
    """sigma growing toward Theta(BD) bits while lookups stay one probe."""
    degree, B = 16, 64
    item_bits = 64
    bd_bits = degree * B * item_bits  # full striped-block capacity
    rows = []
    for frac, sigma in (
        ("BD/64", bd_bits // 64),
        ("BD/16", bd_bits // 16),
        ("BD/4", bd_bits // 4),
    ):
        machine = ParallelDiskMachine(2 * degree, B)
        items = _items(60, sigma, seed=sigma)
        d = StaticDictionary.build(
            machine, items, universe_size=U, sigma=sigma, case="a",
            degree=degree, seed=3,
        )
        costs = [d.lookup(k).cost.total_ios for k in items]
        ok = all(d.lookup(k).value == v for k, v in list(items.items())[:10])
        rows.append([frac, sigma, max(costs), "yes" if ok else "NO"])
        assert max(costs) == 1 and ok
    table = render_table(
        ["sigma as frac of BD", "sigma bits", "wc lookup I/Os", "roundtrip"],
        rows,
    )
    save_table("theorem6_bandwidth", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
