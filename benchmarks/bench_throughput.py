"""Concurrent-read throughput: batched probes under skew.

Section 1.2's webmail/http workload is many simultaneous small reads with
heavy popularity skew.  Because the dictionaries have no directory and
probes are independent block fetches, a server can merge a window of
pending lookups into one machine batch; overlapping hot keys then share
blocks and rounds.  This benchmark measures rounds-per-request as the
request skew grows — a throughput effect the B-tree cannot match (its
probes serialise through the same root path instead of deduplicating).

Output: ``benchmarks/results/throughput_skew.txt``.
"""

import random

import pytest

from repro.analysis.reporting import render_table
from repro.core.basic_dict import BasicDictionary
from repro.pdm.machine import ParallelDiskMachine
from repro.workloads.access import zipf_accesses

U = 1 << 20


def test_batched_reads_under_skew(benchmark, save_table):
    # Size the structure well beyond the batch window so deduplication is
    # a property of the request mix, not of a tiny bucket array.
    machine = ParallelDiskMachine(16, 32)
    d = BasicDictionary(
        machine, universe_size=U, capacity=20_000, degree=16, seed=6
    )
    keys = random.Random(6).sample(range(U), 20_000)
    for k in keys:
        d.insert(k, None)

    window = 64
    rows = []
    per_request = {}
    for label, s in (("uniform", 0.0), ("zipf s=1.1", 1.1),
                     ("zipf s=1.5", 1.5), ("zipf s=2.0", 2.0)):
        if s == 0.0:
            stream = random.Random(1).choices(keys, k=window * 8)
        else:
            stream = zipf_accesses(keys, window * 8, s=s, seed=1)
        total_rounds = 0
        for start in range(0, len(stream), window):
            batch = stream[start : start + window]
            _, cost = d.lookup_batch(batch)
            total_rounds += cost.total_ios
        rpr = total_rounds / len(stream)
        per_request[label] = rpr
        rows.append([label, window, f"{rpr:.3f}"])
    table = render_table(
        ["request mix", "batch window", "rounds per request"], rows
    )
    save_table("throughput_skew", table)
    # Skew helps: hotter mixes need fewer rounds per request.
    assert per_request["zipf s=2.0"] < per_request["uniform"]
    # Even uniform batches never exceed one round per request.
    assert per_request["uniform"] <= 1.0 + 1e-9
    benchmark.pedantic(
        lambda: d.lookup_batch(keys[:64]), rounds=3, iterations=1
    )
