"""Serving throughput under skew: rounds, wall clock, and the buffer pool.

Section 1.2's webmail/http workload is many simultaneous small reads with
heavy popularity skew.  Because the dictionaries have no directory and
probes are independent block fetches, a server can merge a window of
pending lookups into one machine batch; overlapping hot keys then share
blocks and rounds — and an M-bounded buffer pool (:mod:`repro.pdm.cache`)
makes the hot blocks cost *zero* charged rounds on a hit.

This benchmark measures, per request mix (uniform, Zipf s=1.1/1.5/2.0),
at steady state (one warm pass, then several measured passes drawn from
the same popularity distribution with fresh seeds):

* charged rounds per request, batched, with and without the pool;
* wall-clock operations per second for the same replays;
* the pool's hit rate;

plus the sequential (one-lookup-at-a-time) uncached ops/sec — the raw
hot-path figure the ``__slots__``/fast-path work targets.

Outputs:

* ``benchmarks/results/BENCH_throughput.json`` — the machine-readable
  acceptance artefact; CI uploads it and gates >20% regressions against
  ``benchmarks/baselines/throughput.json`` via
  ``scripts/check_throughput_regression.py``.
* ``benchmarks/results/throughput_skew.txt`` for EXPERIMENTS.md.
"""

from __future__ import annotations

import json
import random
import time

import pytest

from repro.analysis.reporting import render_table
from repro.core.basic_dict import BasicDictionary
from repro.kernels import default_kernel
from repro.pdm.machine import ParallelDiskMachine
from repro.workloads.access import zipf_accesses

U = 1 << 20
D = 16
B = 32
CAPACITY = 20_000
WINDOW = 64
REQUESTS = WINDOW * 8
PASSES = 3  # measured passes per mix, after one warm pass
#: pool size in blocks — a genuine subset of the structure's ~1.26k
#: bucket blocks, charged against the machine's internal memory
CACHE_BLOCKS = 1024
SKEWS = (("uniform", 0.0), ("zipf s=1.1", 1.1),
         ("zipf s=1.5", 1.5), ("zipf s=2.0", 2.0))
#: acceptance floor for the vectorized batch path over the sequential
#: scalar baseline, measured in-run on the same streams (the regression
#: gate re-checks the reported number with the same floor)
BATCHED_SPEEDUP_FLOOR = 3.0
#: best-of-N wall repeats for the batched comparison — this box's
#: sequential baseline alone jitters by ~25%, best-of-7 stabilizes it
TIMING_REPEATS = 7


def _build(cache_blocks=None, kernel=None):
    machine = ParallelDiskMachine(D, B, cache_blocks=cache_blocks)
    d = BasicDictionary(
        machine, universe_size=U, capacity=CAPACITY, degree=D, seed=6,
        kernel=kernel,
    )
    keys = random.Random(6).sample(range(U), CAPACITY)
    for k in keys:
        d.insert(k, None)
    return machine, d, keys


def _streams(keys, s):
    """Warm pass + ``PASSES`` measured passes: fresh samples from the same
    popularity distribution (the ranks are fixed, the draws are not)."""
    out = []
    for p in range(PASSES + 1):
        if s == 0.0:
            out.append(random.Random(p + 1).choices(keys, k=REQUESTS))
        else:
            out.append(zipf_accesses(keys, REQUESTS, s=s, seed=p + 1))
    return out


def _timed(fn, repeats=3):
    """Best-of-N wall-clock seconds for one call of ``fn``."""
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def _replay_batched(d, stream):
    for start in range(0, len(stream), WINDOW):
        d.lookup_batch(stream[start : start + WINDOW])


def _measure_mix(machine, d, streams):
    """Steady-state charged rounds/request and wall-clock ops/sec."""
    _replay_batched(d, streams[0])  # warm
    measured = streams[1:]
    requests = sum(len(st) for st in measured)
    before = machine.stats.total_ios
    for st in measured:
        _replay_batched(d, st)
    rounds_per_op = (machine.stats.total_ios - before) / requests

    def replay_all():
        for st in measured:
            _replay_batched(d, st)

    elapsed = _timed(replay_all)
    return rounds_per_op, requests / elapsed


def test_throughput_skew_report(benchmark, save_table, results_dir):
    machine, d, keys = _build()
    cmachine, cd, _ = _build(cache_blocks=CACHE_BLOCKS)

    # Raw hot-path figure: sequential uncached lookups, no batching.
    seq_stream = zipf_accesses(keys, REQUESTS, s=1.1, seed=1)
    for k in seq_stream:  # warm the neighborhood memo before timing
        d.lookup(k)
    seq_elapsed = _timed(
        lambda: [d.lookup(k) for k in seq_stream], repeats=5
    )
    sequential_ops_per_sec = len(seq_stream) / seq_elapsed

    scenarios = []
    rows = []
    for label, s in SKEWS:
        streams = _streams(keys, s)
        rpo, ops = _measure_mix(machine, d, streams)

        cstats = cmachine.cache.stats
        base_req = cstats.requests
        base_hits = cstats.hits
        crpo, cops = _measure_mix(cmachine, cd, streams)
        delta_req = cstats.requests - base_req
        hit_rate = (
            (cstats.hits - base_hits) / delta_req if delta_req else 1.0
        )

        scenarios.append({
            "skew": label,
            "s": s,
            "uncached": {
                "rounds_per_op": round(rpo, 4),
                "ops_per_sec": round(ops, 1),
            },
            "cached": {
                "rounds_per_op": round(crpo, 4),
                "ops_per_sec": round(cops, 1),
                "hit_rate": round(hit_rate, 4),
            },
            "round_reduction": round(rpo / crpo, 3) if crpo else None,
        })
        rows.append([
            label, f"{rpo:.3f}", f"{crpo:.3f}",
            f"{hit_rate:.1%}", f"{ops:,.0f}", f"{cops:,.0f}",
        ])

    by_skew = {sc["skew"]: sc for sc in scenarios}
    zipf11 = by_skew["zipf s=1.1"]
    report = {
        "benchmark": "throughput",
        "config": {
            "num_disks": D,
            "block_items": B,
            "capacity": CAPACITY,
            "window": WINDOW,
            "requests_per_pass": REQUESTS,
            "passes": PASSES,
            "cache_blocks": CACHE_BLOCKS,
        },
        "sequential": {
            "ops_per_sec": round(sequential_ops_per_sec, 1),
        },
        "scenarios": scenarios,
        # Machine-relative ratios: these survive CI hardware variance and
        # are what the regression gate leans on for wall-clock health.
        "ratios": {
            "batched_vs_sequential_ops": round(
                zipf11["uncached"]["ops_per_sec"] / sequential_ops_per_sec, 3
            ),
            "cached_vs_uncached_ops_zipf11": round(
                zipf11["cached"]["ops_per_sec"]
                / zipf11["uncached"]["ops_per_sec"], 3
            ),
            "cached_round_reduction_zipf11": zipf11["round_reduction"],
        },
    }
    out = results_dir / "BENCH_throughput.json"
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    table = render_table(
        ["request mix", "rounds/op", "cached rounds/op", "hit rate",
         "ops/sec", "cached ops/sec"],
        rows,
    )
    save_table("throughput_skew", table)

    # Skew helps: hotter mixes need fewer rounds per request.
    assert by_skew["zipf s=2.0"]["uncached"]["rounds_per_op"] < \
        by_skew["uniform"]["uncached"]["rounds_per_op"]
    # Even uniform batches never exceed one round per request.
    assert by_skew["uniform"]["uncached"]["rounds_per_op"] <= 1.0 + 1e-9
    # Acceptance: at the webmail skew the pool at least halves the charged
    # rounds per request relative to the uncached machine.
    assert zipf11["round_reduction"] is None or \
        zipf11["round_reduction"] >= 2.0, (
            f"cache round reduction {zipf11['round_reduction']}x < 2x "
            f"at zipf s=1.1"
        )
    # The pool never *adds* charged rounds on any mix.
    for sc in scenarios:
        assert sc["cached"]["rounds_per_op"] <= \
            sc["uncached"]["rounds_per_op"] + 1e-9, sc["skew"]

    benchmark.pedantic(
        lambda: d.lookup_batch(keys[:WINDOW]), rounds=3, iterations=1
    )


def test_throughput_batched_kernel(benchmark, save_table, results_dir):
    """The vectorized batch fast path (``repro.kernels``), measured in-run
    against both the sequential scalar baseline and the kernel-off batched
    path on identical streams, and gated on the two acceptance criteria:

    * ops/sec >= ``BATCHED_SPEEDUP_FLOOR`` x the sequential baseline;
    * charged rounds **bit-identical** to the scalar batched path.

    All three figures come from the same process on the same streams
    (best-of-``TIMING_REPEATS`` wall clock), so the speedup ratio survives
    noisy shared runners where absolute ops/sec does not.  The section is
    merged into ``BENCH_throughput.json`` (read-modify-write, so running
    this test alone via ``-k batched`` keeps the skew report's sections).
    """
    kern = default_kernel()
    if kern is None:  # REPRO_KERNEL=off: nothing to vectorize
        pytest.skip("batch kernels disabled via REPRO_KERNEL=off")

    machine_scalar, d_scalar, keys = _build(kernel="off")
    machine_vec, d_vec, _ = _build()  # the process-default kernel

    streams = _streams(keys, 1.1)
    _replay_batched(d_scalar, streams[0])  # warm memos + structures
    _replay_batched(d_vec, streams[0])
    measured = streams[1:]
    flat = [k for st in measured for k in st]

    # Charged cost first, before timing reruns touch the machines again.
    before = machine_scalar.stats.total_ios
    for st in measured:
        _replay_batched(d_scalar, st)
    scalar_rounds = machine_scalar.stats.total_ios - before
    before = machine_vec.stats.total_ios
    for st in measured:
        _replay_batched(d_vec, st)
    vec_rounds = machine_vec.stats.total_ios - before

    def _replay_all(d):
        for st in measured:
            _replay_batched(d, st)

    n = len(flat)
    seq_ops = n / _timed(
        lambda: [d_scalar.lookup(k) for k in flat], repeats=TIMING_REPEATS
    )
    scalar_ops = n / _timed(
        lambda: _replay_all(d_scalar), repeats=TIMING_REPEATS
    )
    vec_ops = n / _timed(lambda: _replay_all(d_vec), repeats=TIMING_REPEATS)

    section = {
        "kernel": kern.name,
        "sequential_ops_per_sec": round(seq_ops, 1),
        "scalar_ops_per_sec": round(scalar_ops, 1),
        "ops_per_sec": round(vec_ops, 1),
        "speedup_vs_sequential": round(vec_ops / seq_ops, 3),
        "speedup_vs_scalar_batched": round(vec_ops / scalar_ops, 3),
        "rounds_per_op": round(vec_rounds / n, 4),
        "charged_rounds_equal": scalar_rounds == vec_rounds,
    }

    out = results_dir / "BENCH_throughput.json"
    report = (
        json.loads(out.read_text()) if out.exists()
        else {"benchmark": "throughput"}
    )
    report["batched"] = section
    out.write_text(json.dumps(report, indent=2, sort_keys=True) + "\n")

    save_table("throughput_batched", render_table(
        ["path", "ops/sec", "vs sequential", "rounds"],
        [
            ["sequential (scalar)", f"{seq_ops:,.0f}", "1.00x",
             str(scalar_rounds)],
            ["batched, kernel off", f"{scalar_ops:,.0f}",
             f"{scalar_ops / seq_ops:.2f}x", str(scalar_rounds)],
            [f"batched, kernel {kern.name}", f"{vec_ops:,.0f}",
             f"{vec_ops / seq_ops:.2f}x", str(vec_rounds)],
        ],
    ))

    # Acceptance: vectorization changes the clock, never the charge.
    assert scalar_rounds == vec_rounds, (
        f"charged rounds diverged: scalar {scalar_rounds} vs "
        f"{kern.name} {vec_rounds}"
    )
    assert section["speedup_vs_sequential"] >= BATCHED_SPEEDUP_FLOOR, (
        f"batched kernel path {section['speedup_vs_sequential']}x < "
        f"{BATCHED_SPEEDUP_FLOOR}x over sequential"
    )
    # Flat-array lanes must at least pay for themselves over the same
    # batched algorithm run through scalar loops.
    assert vec_ops > scalar_ops, (
        f"{kern.name} kernel slower than the kernel-off batched path "
        f"({vec_ops:,.0f} vs {scalar_ops:,.0f} ops/sec)"
    )

    benchmark.pedantic(
        lambda: d_vec.lookup_batch(keys[:WINDOW]), rounds=3, iterations=1
    )
