"""Figure 1 — the paper's comparison table, regenerated.

Paper: "Old and new results for linear space dictionaries with constant
time per operation" (lookup I/Os, update I/Os, bandwidth, conditions for
six methods).  This benchmark rebuilds every row on identical machines and
measures the same cells; the rendered table lands in
``benchmarks/results/figure1.txt``.

Expected shape (asserted): one-probe methods hit exactly 1 I/O; the
deterministic structures' worst cases stay at their stated constants while
cuckoo's update worst case spikes; the eps-rows average just above 1 / 2.
"""

import pytest

from repro.analysis.figure1 import figure1_text, run_figure1


@pytest.fixture(scope="module")
def figure1_rows():
    return run_figure1(n=768, lookups=1500, degree=20, seed=3)


def test_fig1_regenerate_table(benchmark, figure1_rows, save_table):
    rows = benchmark.pedantic(
        lambda: run_figure1(n=256, lookups=400, degree=20, seed=3),
        rounds=1,
        iterations=1,
    )
    save_table("figure1", figure1_text(figure1_rows))
    by = {r.method: r for r in figure1_rows}

    # The table's qualitative content, asserted:
    assert by["S4.1 basic"].hit_worst == 1 and by["S4.1 basic"].update_worst == 2
    assert by["S4.2 static"].hit_avg == 1.0 and by["S4.2 static"].miss_avg == 1.0
    assert by["Hashing striped"].hit_avg <= 1.05  # "1 whp"
    assert by["[13] cuckoo"].hit_worst == 1
    assert by["[13] cuckoo"].update_worst > 2  # amortized, not worst-case
    assert 1.0 <= by["S4.3 dynamic"].hit_avg <= 1.3
    assert 2.0 <= by["S4.3 dynamic"].update_avg <= 2.3
    assert by["S4.3 dynamic"].update_worst <= 12  # O(log n), never linear
    assert 1.0 <= by["[7]+trick"].hit_avg <= 1.6

    benchmark.extra_info["rows"] = {
        r.method: {
            "hit_avg": r.hit_avg,
            "hit_worst": r.hit_worst,
            "miss_avg": r.miss_avg,
            "update_avg": r.update_avg,
            "update_worst": r.update_worst,
        }
        for r in figure1_rows
    }


def test_fig1_pipeline_is_reproducible(benchmark, figure1_rows):
    """Determinism of the whole measurement pipeline: a second identical
    run regenerates byte-identical cells."""
    def cells(rows):
        return [tuple(r.cells()) for r in rows]

    again = benchmark.pedantic(
        lambda: run_figure1(n=768, lookups=1500, degree=20, seed=3),
        rounds=1,
        iterations=1,
    )
    assert cells(again) == cells(figure1_rows)


def test_fig1_deterministic_beats_randomized_worst_case(
    benchmark, figure1_rows
):
    """The paper's thesis in one assert: the deterministic structures'
    worst update never exceeds the randomized structures' worst update."""
    det = [r for r in figure1_rows if r.deterministic and "S4" in r.method]
    rnd = [r for r in figure1_rows if not r.deterministic]
    worst_rnd = benchmark(lambda: max(r.update_worst for r in rnd))
    worst_det = max(r.update_worst for r in det)
    assert worst_det <= worst_rnd
    benchmark.extra_info["worst_update_det"] = worst_det
    benchmark.extra_info["worst_update_rnd"] = worst_rnd
