"""Theorem 7 — the dynamic full-bandwidth dictionary.

Regenerated claims, per ``eps`` (via the level-shrink ratio):

* unsuccessful searches take exactly 1 parallel I/O;
* successful searches average ``1 + eps``;
* updates average ``2 + eps``;
* the worst case is ``O(log n)`` — contrast the hashing worst cases;
* level occupancy decays geometrically (the engine behind the averages).

Outputs: ``benchmarks/results/theorem7_*.txt``.
"""

import random

import pytest

from repro.analysis.reporting import render_table
from repro.core.dynamic_dict import DynamicDictionary
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 20


def _build(n, ratio, seed=0, degree=16, sigma=40):
    machine = ParallelDiskMachine(2 * degree, 32)
    d = DynamicDictionary(
        machine, universe_size=U, capacity=n, sigma=sigma, degree=degree,
        ratio=ratio, seed=seed,
    )
    rng = random.Random(seed)
    ref = {}
    while len(ref) < n:
        k, v = rng.randrange(U), rng.randrange(1 << sigma)
        d.insert(k, v)
        ref[k] = v
    return d, ref


def test_theorem7_eps_sweep(benchmark, save_table):
    """ratio plays the role of 6*eps: smaller ratio -> smaller eps."""
    rows = []
    prev_hit_avg = None
    for ratio in (0.5, 0.25, 0.125):
        d, ref = _build(600, ratio, seed=4)
        hit = [d.lookup(k).cost.total_ios for k in ref]
        rng = random.Random(1)
        miss = []
        while len(miss) < 300:
            probe = rng.randrange(U)
            if probe not in ref:
                miss.append(d.lookup(probe).cost.total_ios)
        hit_avg = sum(hit) / len(hit)
        rows.append(
            [
                ratio,
                d.num_levels,
                f"{hit_avg:.3f}",
                max(hit),
                f"{sum(miss) / len(miss):.3f}",
                f"{d.stats.avg_insert_ios:.3f}",
            ]
        )
        assert sum(miss) == len(miss)  # every miss exactly 1 I/O
        assert hit_avg <= 1 + 2 * ratio
        assert d.stats.avg_insert_ios <= 2 + 2 * ratio
        prev_hit_avg = hit_avg
    table = render_table(
        ["ratio (~6eps)", "levels", "avg hit", "wc hit", "avg miss",
         "avg insert"],
        rows,
    )
    save_table("theorem7_eps", table)
    benchmark.pedantic(
        lambda: _build(200, 0.25, seed=4), rounds=1, iterations=1
    )


def test_theorem7_level_occupancy_geometric(benchmark, save_table):
    d, _ = _build(800, 0.25, seed=6)
    occ = d.level_occupancy()
    hist = d.stats.level_histogram
    rows = [
        [lvl, arr.stripe_size, occ[lvl], hist.get(lvl, 0)]
        for lvl, arr in enumerate(d.levels)
    ]
    table = render_table(
        ["level", "stripe size", "occupied fields", "keys placed"], rows
    )
    save_table("theorem7_levels", table)
    placed = [hist.get(lvl, 0) for lvl in range(d.num_levels)]
    # Geometric decay: each level holds a small fraction of the previous.
    for a, b in zip(placed, placed[1:]):
        if a >= 20:
            assert b <= a * 0.5
    benchmark.pedantic(lambda: d.lookup(1), rounds=5, iterations=1)


def test_theorem7_worst_case_vs_hashing(benchmark, save_table):
    """The deterministic worst case (O(log n)) against cuckoo's measured
    worst insert on the same machine geometry."""
    from repro.hashing import CuckooDictionary

    d, ref = _build(800, 0.25, seed=8)
    det_worst_insert = max(
        d.insert(k, v).total_ios
        for k, v in list(ref.items())[:100]  # updates of existing keys
    )
    det_worst_lookup = max(d.lookup(k).cost.total_ios for k in ref)

    machine = ParallelDiskMachine(32, 32)
    cuckoo = CuckooDictionary(
        machine, universe_size=U, capacity=800, load_slack=2.05, seed=8
    )
    rnd_worst_insert = 0
    for k in random.Random(8).sample(range(U), 800):
        rnd_worst_insert = max(
            rnd_worst_insert, cuckoo.insert(k, None).total_ios
        )
    table = render_table(
        ["structure", "wc lookup", "wc insert"],
        [
            ["S4.3 deterministic", det_worst_lookup, det_worst_insert],
            ["cuckoo [13]", 1, rnd_worst_insert],
        ],
    )
    save_table("theorem7_worst_case", table)
    assert det_worst_insert <= 8
    assert rnd_worst_insert > det_worst_insert
    benchmark.pedantic(lambda: d.lookup(next(iter(ref))), rounds=5,
                       iterations=1)
