"""Section 1.1's concurrency claims, quantified.

"There is no notion of an index structure or central directory of keys"
and "no piece of data is ever moved, once inserted... simplifies
concurrency control mechanisms such as locking."

Three measurements against the B-tree status quo:

1. **write-footprint conflicts**: the probability two concurrent updates
   must latch a common block;
2. **hot-spot contention**: how many of a batch of updates write the single
   hottest block (a B-tree's upper levels act as the central directory the
   paper's structures don't have);
3. **reference stability**: the fraction of keys whose physical block
   changes while unrelated inserts stream in (B-tree splits move records;
   the dictionary never moves one).

Also reports parallel-instances batching (Section 4): ``c`` inserts in the
I/Os of one.

Outputs: ``benchmarks/results/concurrency_*.txt``.
"""

import random

import pytest

from repro.analysis.concurrency import (
    conflict_rate,
    footprints,
    max_block_contention,
)
from repro.analysis.reporting import render_table
from repro.btree import BTreeDictionary
from repro.core.basic_dict import BasicDictionary
from repro.core.multi_instance import MultiInstanceDictionary
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 20


def _dict_setup(n=600, degree=16, B=8):
    machine = ParallelDiskMachine(degree, B)
    d = BasicDictionary(
        machine, universe_size=U, capacity=2 * n, degree=degree, seed=1
    )
    keys = random.Random(1).sample(range(U), n)
    for k in keys:
        d.insert(k, None)
    return machine, d, keys


def _btree_setup(n=600, degree=16, B=8):
    machine = ParallelDiskMachine(degree, B)
    bt = BTreeDictionary(machine, universe_size=U, capacity=4 * n)
    keys = random.Random(1).sample(range(U), n)
    for k in keys:
        bt.insert(k, None)
    return machine, bt, keys


def test_concurrent_update_conflicts(benchmark, save_table):
    batch = 64
    rows = []

    machine, d, keys = _dict_setup()
    ops = [
        (lambda k=k: d.insert(k, "new")) for k in keys[:batch]
    ]
    prints = footprints(machine, ops)
    dict_rate = conflict_rate(prints)
    dict_hot = max_block_contention(prints)
    rows.append(["S4.1 dictionary", f"{dict_rate:.3f}", dict_hot])

    machine_b, bt, keys_b = _btree_setup()
    fresh = [k for k in random.Random(7).sample(range(U), 4 * batch)
             if k not in set(keys_b)][:batch]
    ops_b = [(lambda k=k: bt.insert(k, None)) for k in fresh]
    prints_b = footprints(machine_b, ops_b)
    bt_rate = conflict_rate(prints_b)
    bt_hot = max_block_contention(prints_b)
    rows.append(["B-tree", f"{bt_rate:.3f}", bt_hot])

    table = render_table(
        ["structure", "write-write conflict rate", "hottest block writers"],
        rows,
    )
    save_table("concurrency_conflicts", table)
    assert dict_rate <= bt_rate + 1e-9
    assert dict_hot <= bt_hot
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_reference_stability(benchmark, save_table):
    """Insert churn; check whether previously stored keys' blocks moved."""

    def dict_locations(d, keys):
        out = {}
        for k in keys:
            locs = d.graph.striped_neighbors(k)
            for loc in locs:
                for it in d.buckets.peek(loc):
                    if it[0] == k:
                        out[k] = loc
        return out

    def btree_locations(bt, keys):
        out = {}
        stack = [bt.root]
        while stack:
            node_id = stack.pop()
            kind, entries = bt._peek_node(node_id)
            if kind == "L":
                for (k2, _v) in entries:
                    out[k2] = node_id
            else:
                stack.extend(entries[0::2])
        return {k: out[k] for k in keys if k in out}

    _, d, keys = _dict_setup(n=400)
    before_d = dict_locations(d, keys[:200])
    _, bt, keys_b = _btree_setup(n=400)
    before_b = btree_locations(bt, keys_b[:200])

    churn = [k for k in random.Random(5).sample(range(U), 1200)][:400]
    for k in churn:
        if k not in set(keys):
            d.insert(k, None)
        if k not in set(keys_b):
            bt.insert(k, None)

    after_d = dict_locations(d, keys[:200])
    after_b = btree_locations(bt, keys_b[:200])
    moved_d = sum(1 for k in before_d if after_d.get(k) != before_d[k])
    moved_b = sum(1 for k in before_b if after_b.get(k) != before_b[k])

    table = render_table(
        ["structure", "tracked keys", "moved after 400 inserts"],
        [
            ["S4.1 dictionary", len(before_d), moved_d],
            ["B-tree", len(before_b), moved_b],
        ],
    )
    save_table("concurrency_stability", table)
    assert moved_d == 0  # "no piece of data is ever moved, once inserted"
    assert moved_b > 0  # splits relocate records
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_parallel_instances_batching(benchmark, save_table):
    """Section 4: c insertions in the parallel I/Os of one insertion."""

    def factory(i):
        machine = ParallelDiskMachine(16, 32)
        return BasicDictionary(
            machine, universe_size=U, capacity=400, degree=16, seed=60 + i
        )

    rows = []
    for c in (1, 2, 4, 8):
        multi = MultiInstanceDictionary(factory, instances=c)
        cost = multi.insert_batch([(k, None) for k in range(c)])
        rows.append([c, cost.total_ios, cost.read_ios, cost.write_ios])
        assert cost.total_ios == 2  # one insert's worth, regardless of c
    table = render_table(
        ["batch size c", "batch I/Os", "reads", "writes"], rows
    )
    save_table("concurrency_batching", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
