"""Ablations — the design choices DESIGN.md calls out, swept.

1. **Degree d** (the paper's ``D = Omega(log u)``): how small can the disk
   array get before the structures degrade?  Sweeps d for the load
   balancer and the dynamic dictionary.
2. **Right-side slack** (``v = Theta(Nd)``'s constant): space against the
   probe averages of Section 4.3.
3. **Level-shrink ratio** (the paper's ``6 eps``): levels vs average I/O.
4. **Striping vs the parallel disk head model**: the same probe pattern
   costs 1 I/O striped, up to d I/Os unstriped on the PDM, and
   ``ceil(d/D)`` in the head model — why Section 2 demands striped
   expanders.

Outputs: ``benchmarks/results/ablation_*.txt``.
"""

import random

import pytest

from repro.analysis.reporting import render_table
from repro.core.dynamic_dict import DynamicDictionary
from repro.core.load_balancer import DChoiceLoadBalancer
from repro.expanders.random_graph import SeededRandomExpander
from repro.pdm.machine import ParallelDiskHeadMachine, ParallelDiskMachine

U = 1 << 20


def test_ablation_degree(benchmark, save_table):
    """Max load as the degree (number of disks) shrinks: fewer choices,
    worse balance — the price of a small disk array."""
    rows = []
    maxima = {}
    n, v = 20_000, 8192
    for d in (2, 4, 8, 16, 32):
        g = SeededRandomExpander(
            left_size=U, degree=d, stripe_size=v // d, seed=1
        )
        lb = DChoiceLoadBalancer(g, k=1)
        lb.place_all(random.Random(1).sample(range(U), n))
        maxima[d] = lb.max_load
        rows.append([d, lb.max_load, f"{n / v:.2f}"])
    table = render_table(["d", "max load", "avg load"], rows)
    save_table("ablation_degree", table)
    assert maxima[32] <= maxima[2]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_slack(benchmark, save_table):
    """Space/performance: shrinking v = slack * N * d pushes keys to deeper
    levels of the Section 4.3 structure (higher averages), until it fails."""
    rows = []
    averages = {}
    for slack in (8.0, 4.0, 2.0, 1.0):
        machine = ParallelDiskMachine(32, 32)
        d = DynamicDictionary(
            machine, universe_size=U, capacity=400, sigma=32, degree=16,
            stripe_slack=slack, seed=2,
        )
        rng = random.Random(2)
        inserted = {}
        try:
            while len(inserted) < 400:
                k = rng.randrange(U)
                d.insert(k, k % (1 << 32))
                inserted[k] = True
            hit = [d.lookup(k).cost.total_ios for k in inserted]
            avg = sum(hit) / len(hit)
            averages[slack] = avg
            rows.append(
                [slack, len(inserted), f"{avg:.3f}",
                 f"{d.stats.avg_insert_ios:.3f}",
                 sum(1 for lvl in d.stats.level_histogram if lvl > 0)]
            )
        except Exception as exc:  # capacity blow-up at tiny slack
            rows.append([slack, len(inserted), "-", "-", type(exc).__name__])
    table = render_table(
        ["slack", "inserted", "avg hit", "avg insert", "deep levels used"],
        rows,
    )
    save_table("ablation_slack", table)
    # More space -> shallower structure -> smaller averages; the tightest
    # slack may not even finish (reported in the table as an exception).
    tightest_finished = min(averages)
    assert averages[8.0] <= averages[tightest_finished]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_level_ratio(benchmark, save_table):
    """The 6-eps fan-out of Section 4.3: smaller ratio -> fewer deep keys
    but more levels of external space."""
    rows = []
    for ratio in (0.6, 0.3, 0.1):
        machine = ParallelDiskMachine(32, 32)
        d = DynamicDictionary(
            machine, universe_size=U, capacity=400, sigma=32, degree=16,
            ratio=ratio, seed=3,
        )
        rng = random.Random(3)
        seen = set()
        while len(seen) < 400:
            k = rng.randrange(U)
            d.insert(k, 0)
            seen.add(k)
        deep = sum(
            cnt for lvl, cnt in d.stats.level_histogram.items() if lvl > 0
        )
        rows.append(
            [ratio, d.num_levels, deep, f"{d.space_bits / 8 / 1024:.0f} KiB"]
        )
    table = render_table(
        ["ratio", "levels", "keys beyond level 1", "external space"], rows
    )
    save_table("ablation_ratio", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_ablation_striping_vs_head_model(benchmark, save_table):
    """Why striped expanders: one probe of d blocks costs 1 parallel I/O
    striped, d I/Os when all blocks collide on one disk, and ceil(d/D) in
    the disk-head model regardless of placement."""
    d = 16
    rows = []

    pdm = ParallelDiskMachine(d, 16)
    pdm.read_blocks([(disk, 0) for disk in range(d)])
    rows.append(["PDM, striped probe", pdm.stats.read_ios])

    pdm2 = ParallelDiskMachine(d, 16)
    pdm2.read_blocks([(0, i) for i in range(d)])
    rows.append(["PDM, unstriped probe (one disk)", pdm2.stats.read_ios])

    head = ParallelDiskHeadMachine(d, 16)
    head.read_blocks([(0, i) for i in range(d)])
    rows.append(["disk-head model, any placement", head.stats.read_ios])

    table = render_table(["scenario", "parallel I/Os for d blocks"], rows)
    save_table("ablation_striping", table)
    assert pdm.stats.read_ios == 1
    assert pdm2.stats.read_ios == d
    assert head.stats.read_ios == 1
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
