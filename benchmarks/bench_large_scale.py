"""Large-scale run — the paper's hardware context, simulated.

Section 1 cites the Hitachi TagmaStore USP1100 ("up to 1152 disks, storing
up to 32 petabytes") as the kind of array the results target.  This
benchmark runs the structures at the biggest geometry the simulator
comfortably holds in a test run — a 64-bit key universe, ``D = d = 128``
disks (the paper's ``2 ceil(log2 u)`` for ``u = 2^64``), tens of thousands
of keys — and checks the guarantees are scale-invariant:

* §4.1: lookups exactly 1 I/O, updates exactly 2, at n = 50k;
* §4.3: misses 1, hits ``1+ɛ``, inserts ``2+ɛ``, worst cases constant;
* utilization: striped probes keep the full array busy.

Output: ``benchmarks/results/large_scale.txt``.
"""

import random

import pytest

from repro.analysis.reporting import render_table
from repro.core.basic_dict import BasicDictionary
from repro.core.dynamic_dict import DynamicDictionary
from repro.pdm.machine import ParallelDiskMachine

U64 = 1 << 64
DEGREE = 128  # 2 * log2(2^64)


def test_large_scale_basic(benchmark, save_table):
    n = 50_000
    machine = ParallelDiskMachine(DEGREE, 64)
    d = BasicDictionary(
        machine, universe_size=U64, capacity=n, degree=DEGREE, seed=1
    )
    rng = random.Random(1)
    keys = [rng.randrange(U64) for _ in range(n)]
    worst_ins = 0
    for k in keys:
        worst_ins = max(worst_ins, d.insert(k, None).total_ios)
    sample = rng.sample(keys, 2000)
    # Read utilization of the probe phase alone: striped lookups should
    # keep every disk busy every round (writes touch one block by design).
    probe_snap = machine.stats.snapshot()
    worst_lkp = max(d.lookup(k).cost.total_ios for k in sample)
    miss_worst = max(
        d.lookup(rng.randrange(U64)).cost.total_ios for _ in range(500)
    )
    probe_stats = machine.stats.since(probe_snap)
    util = probe_stats.blocks_read / (probe_stats.read_ios * machine.D)
    rows = [
        ["universe", "2^64"],
        ["disks = degree", DEGREE],
        ["keys stored", len(d)],
        ["worst insert I/Os", worst_ins],
        ["worst hit I/Os", worst_lkp],
        ["worst miss I/Os", miss_worst],
        ["max bucket load", d.current_max_load()],
        ["probe read utilization", f"{util:.3f}"],
    ]
    table = render_table(["metric", "value"], rows)
    save_table("large_scale", table)
    assert worst_ins == 2 and worst_lkp == 1 and miss_worst == 1
    assert util > 0.9  # striping keeps nearly every disk busy every round
    benchmark.pedantic(lambda: d.lookup(keys[0]), rounds=5, iterations=1)


def test_large_scale_dynamic(benchmark, save_table):
    n = 8_000
    machine = ParallelDiskMachine(2 * DEGREE, 64)
    d = DynamicDictionary(
        machine, universe_size=U64, capacity=n, sigma=64, degree=DEGREE,
        seed=2,
    )
    rng = random.Random(2)
    ref = {}
    while len(ref) < n:
        k = rng.randrange(U64)
        v = rng.randrange(1 << 64)
        d.insert(k, v)
        ref[k] = v
    sample = rng.sample(list(ref), 1500)
    hits = [d.lookup(k).cost.total_ios for k in sample]
    misses = [
        d.lookup(rng.randrange(U64)).cost.total_ios for _ in range(400)
    ]
    rows = [
        ["keys stored", n],
        ["avg hit I/Os", f"{sum(hits) / len(hits):.4f}"],
        ["worst hit I/Os", max(hits)],
        ["avg miss I/Os", f"{sum(misses) / len(misses):.4f}"],
        ["avg insert I/Os", f"{d.stats.avg_insert_ios:.4f}"],
        ["levels", d.num_levels],
    ]
    table = render_table(["metric", "value"], rows)
    save_table("large_scale_dynamic", table)
    assert max(misses) == 1
    assert sum(hits) / len(hits) <= 1.1
    assert d.stats.avg_insert_ios <= 2.1
    benchmark.pedantic(lambda: d.lookup(sample[0]), rounds=5, iterations=1)
