"""The Section 6 expander wish, granted: GUV vs the other constructions.

"It seems possible that practical and truly simple constructions could
exist" — the Parvaresh–Vardy-code expander of Guruswami–Umans–Vadhan
(published the year after the paper) is simple, canonical (zero random
bits), and naturally striped.  This benchmark lines it up against the two
other routes to an expander in this library and then runs a **fully
deterministic dictionary** on it: no seeds, no probabilistic
preprocessing, worst-case constants.

Outputs: ``benchmarks/results/guv_*.txt``.
"""

import pytest

from repro.analysis.reporting import render_table
from repro.core.basic_dict import BasicDictionary
from repro.expanders.guv import GUVExpander
from repro.expanders.random_graph import SeededRandomExpander
from repro.expanders.semi_explicit import SemiExplicitExpander
from repro.expanders.verify import verify_expansion_sampled
from repro.pdm.machine import ParallelDiskMachine


def test_construction_comparison(benchmark, save_table):
    """Three ways to get an (N~16, eps~1/3) expander over u ~ 2^20+."""
    rows = []

    seeded = SeededRandomExpander(
        left_size=1 << 20, degree=40, stripe_size=16 * 3 * 40 // 40 * 16,
        seed=1,
    )
    rows.append(
        [
            "seeded random (paper's 'for free' assumption)",
            seeded.degree,
            seeded.right_size,
            2,
            "no (fixed seed)",
        ]
    )

    semi = SemiExplicitExpander.build(
        u=1 << 20, N=16, eps=1 / 3, beta=0.5, seed=2, certify_trials=60
    )
    rows.append(
        [
            "semi-explicit telescope (Section 5)",
            semi.degree,
            semi.right_size,
            semi.memory_words,
            "advice found probabilistically",
        ]
    )

    guv = GUVExpander.design(
        min_universe=1 << 20, min_N=16, max_eps=1 / 3
    )
    rows.append(
        [
            "GUV / Parvaresh-Vardy (post-paper, truly explicit)",
            guv.degree,
            guv.right_size,
            guv.evaluation_memory_words(),
            "yes - zero random bits",
        ]
    )
    table = render_table(
        ["construction", "degree", "right size", "memory words",
         "deterministic?"],
        rows,
    )
    save_table("guv_comparison", table)

    report = verify_expansion_sampled(
        guv, guv.N_guarantee, guv.eps_guarantee, trials=150, seed=3
    )
    assert report.is_expander
    # The GUV trade-off: modest degree, but a right side far above O(Nd).
    assert guv.degree < 2 * semi.degree or guv.degree < 512
    assert guv.right_size > 16 * guv.degree
    benchmark.pedantic(lambda: guv.striped_neighbors(12345), rounds=5,
                       iterations=1)


def test_fully_deterministic_dictionary(benchmark, save_table):
    """End to end with zero randomness: canonical expander, deterministic
    algorithms, worst-case constants."""
    guv = GUVExpander(p=53, n=3, m=2, h=4)  # u=148877, d=53, N=16
    machine = ParallelDiskMachine(guv.degree, 32)
    d = BasicDictionary(
        machine,
        universe_size=guv.left_size,
        capacity=guv.N_guarantee,
        graph=guv,
    )
    keys = [7, 1234, 99999, 148000, 52, 77777, 31415, 27182]
    ins = [d.insert(k, k * 3).total_ios for k in keys]
    hits = [d.lookup(k).cost.total_ios for k in keys]
    misses = [d.lookup(k).cost.total_ios for k in (1, 2, 3, 4)]
    ok = all(d.lookup(k).value == k * 3 for k in keys)
    rows = [
        ["universe (= 53^3)", guv.left_size],
        ["degree / disks", guv.degree],
        ["N guarantee (h^m)", guv.N_guarantee],
        ["eps guarantee (nhm/p)", f"{guv.eps_guarantee:.3f}"],
        ["keys stored", len(keys)],
        ["worst insert I/Os", max(ins)],
        ["worst hit I/Os", max(hits)],
        ["worst miss I/Os", max(misses)],
        ["roundtrip", "yes" if ok else "NO"],
        ["random bits used", 0],
    ]
    table = render_table(["metric", "value"], rows)
    save_table("guv_dictionary", table)
    assert ok and max(ins) == 2 and max(hits) == 1 and max(misses) == 1
    benchmark.pedantic(lambda: d.lookup(keys[0]), rounds=5, iterations=1)
