"""Wall-clock latency: percentiles per op class and layer, disk
utilization, and the cost of measuring it.

Charged I/O rounds are the paper's currency, but a serving deployment
(Section 1.2's webmail workload) also cares how long an operation takes
on a real clock, and *which layer* the time went to — buffer-pool hit,
charged fetch, or fault-retry detour.  This benchmark replays a mixed
workload with the wall channel enabled and reports:

* p50/p95/p99/max wall latency per operation class (``lookup`` /
  ``upsert`` / ``delete``) and per serving layer (``cache-hit`` /
  ``cache-miss`` / ``fault-retry`` / ``uncached`` / ``kernel``);
* the per-stage split of the vectorized batch kernels
  (``kernel.neighborhoods`` / ``kernel.plan`` / ``kernel.match``) from a
  batched replay — where the wall time of a round-packed batched lookup
  actually goes;
* per-disk busy/idle utilization from the traced I/O schedule;
* the self-measured overhead of the always-on
  :class:`~repro.obs.latency.LatencyTracker` — interleaved best-of-N
  instrumented vs plain passes (gated ≤5% in CI by
  ``scripts/check_obs_overhead.py``).

Outputs ``benchmarks/results/BENCH_latency.json`` (ingested into the
bench trajectory by ``python -m repro.obs.history``) and ``latency.txt``.
All latency *values* are machine-dependent; the *schema* (bucket bounds,
label sets) is fixed so runs line up metric-for-metric.
"""

from __future__ import annotations

import json
import random

from repro.analysis.reporting import render_table
from repro.core.basic_dict import BasicDictionary
from repro.obs.latency import (
    DiskTimeline,
    LatencyTracker,
    collect_latency,
)
from repro.obs.harness import run_instrumented
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.wallclock import measure_overhead
from repro.pdm.faults import StragglerWindow, attach_faults
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 20
D = 16
B = 32
OPERATIONS = 1024
CACHE_BLOCKS = 256
#: lookups replayed under a transient-fault window (fault-retry layer)
FAULT_LOOKUPS = 64
#: operations replayed through the round-packed batch methods (kernel layer)
BATCH_OPERATIONS = 256
#: keys per batched call in the kernel phase
BATCH_SIZE = 64
#: sequential lookups per overhead pass
OVERHEAD_OPS = 2048


def _family_summary(registry: MetricsRegistry, name: str, label_key: str):
    """``{label: {"count", "p50", "p95", "p99", "max"}}`` for one
    latency-histogram family, in first-observation order."""
    out = {}
    for metric_name, labels, metric in registry.items():
        if metric_name != name or not isinstance(metric, Histogram):
            continue
        entry = {"count": metric.total}
        entry.update(
            {k: round(v, 2) for k, v in metric.percentiles().items()}
        )
        entry["max"] = round(metric.max, 2)
        out[labels[label_key]] = entry
    return out


def _measure_tracker_overhead():
    """Plain vs LatencyTracker-wrapped sequential lookups on an
    uninstrumented machine (the always-on serving configuration)."""
    machine = ParallelDiskMachine(D, B)
    d = BasicDictionary(
        machine, universe_size=U, capacity=4096, degree=D, seed=9
    )
    keys = random.Random(9).sample(range(U), 4096)
    for k in keys:
        d.insert(k, None)
    stream = random.Random(10).choices(keys, k=OVERHEAD_OPS)
    for k in stream:  # warm the neighborhood memo before timing
        d.lookup(k)
    tracker = LatencyTracker()

    def plain():
        for k in stream:
            d.lookup(k)

    def instrumented():
        for k in stream:
            t0 = tracker.start()
            d.lookup(k)
            tracker.stop_ns("lookup", t0)

    report = measure_overhead(
        plain, instrumented, operations=len(stream)
    )
    return report, tracker


def test_latency_report(benchmark, save_table, results_dir):
    # One instrumented run with the wall channel on: cached (so hit and
    # miss layers both appear), traced (so the disk timeline exists).
    report = run_instrumented(
        "basic",
        num_disks=D,
        block_items=B,
        universe_size=U,
        operations=OPERATIONS,
        trace=True,
        wall=True,
        cache_blocks=CACHE_BLOCKS,
    )
    assert report.ok

    # Fault phase on a second, *uncached* run (a pool would absorb the
    # reads and no straggler round would ever be charged): a straggler
    # window over disk 0 taxes every batch touching it, so the
    # fault-retry layer has real latency mass — and stragglers always
    # answer, so no degraded lookups.
    fault_report = run_instrumented(
        "basic",
        num_disks=D,
        block_items=B,
        universe_size=U,
        operations=FAULT_LOOKUPS,
        wall=True,
    )
    attach_faults(
        fault_report.machine,
        [StragglerWindow(disk=0, start=0, end=1 << 30)],
    )
    hot = random.Random(11).sample(range(U), FAULT_LOOKUPS)
    for k in hot:
        fault_report.dictionary.lookup(k)

    # Batched phase on a third, uncached run: ``batch=N`` routes runs of
    # same-kind operations through the round-packed batch methods, whose
    # vectorized fast path opens ``kernel.*`` child spans — the "kernel"
    # latency layer and the per-stage ``latency.kernel_us`` family.
    batch_report = run_instrumented(
        "basic",
        num_disks=D,
        block_items=B,
        universe_size=U,
        operations=BATCH_OPERATIONS,
        wall=True,
        batch=BATCH_SIZE,
    )
    assert batch_report.ok

    wall_registry = MetricsRegistry()
    attributed = collect_latency(wall_registry, report.recorder)
    attributed += collect_latency(wall_registry, fault_report.recorder)
    attributed += collect_latency(wall_registry, batch_report.recorder)
    assert attributed >= OPERATIONS + FAULT_LOOKUPS

    timeline = DiskTimeline.from_tracer(report.tracer, D)
    assert timeline.total_rounds > 0

    overhead, tracker = _measure_tracker_overhead()
    assert tracker.operations == OVERHEAD_OPS * overhead.repeats
    # Loose sanity here; the hard ≤5% gate is scripts/check_obs_overhead.py
    # reading the JSON this writes (so one noisy CI box fails the gate,
    # not the benchmark suite).
    assert overhead.overhead_fraction < 0.50

    op_classes = _family_summary(wall_registry, "latency.op_us", "op")
    layers = _family_summary(wall_registry, "latency.layer_us", "layer")
    lanes = _family_summary(wall_registry, "latency.lane_us", "lane")
    kernel_stages = _family_summary(
        wall_registry, "latency.kernel_us", "stage"
    )
    assert "lookup" in op_classes
    assert "fault-retry" in layers and "cache-hit" in layers
    assert "kernel" in layers and "plan" in kernel_stages

    payload = {
        "benchmark": "latency",
        "config": {
            "num_disks": D,
            "block_items": B,
            "operations": OPERATIONS,
            "cache_blocks": CACHE_BLOCKS,
            "fault_lookups": FAULT_LOOKUPS,
            "batch_operations": BATCH_OPERATIONS,
            "batch_size": BATCH_SIZE,
            "overhead_operations": OVERHEAD_OPS,
        },
        "op_classes": op_classes,
        "layers": layers,
        "lanes": lanes,
        "kernel_stages": kernel_stages,
        "disks": timeline.to_dict(),
        "overhead": overhead.to_dict(),
    }
    out = results_dir / "BENCH_latency.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    rows = [
        [label, e["count"], e["p50"], e["p95"], e["p99"], e["max"]]
        for label, e in (
            list(op_classes.items())
            + list(layers.items())
            + [(f"kernel.{s}", e) for s, e in kernel_stages.items()]
        )
    ]
    table = render_table(
        ["class/layer", "count", "p50 us", "p95 us", "p99 us", "max us"],
        rows,
    )
    table += "\n" + render_table(
        ["disk", "busy", "idle", "utilization"], timeline.summary_rows()
    )
    table += (
        f"\ntracker overhead: {overhead.overhead_fraction:.2%} "
        f"({overhead.instrumented_ops_per_sec:,.0f} vs "
        f"{overhead.plain_ops_per_sec:,.0f} ops/sec)"
    )
    save_table("latency", table)

    tracker2 = LatencyTracker()
    benchmark.pedantic(
        lambda: tracker2.stop_ns("lookup", tracker2.start()),
        rounds=5,
        iterations=1000,
    )
