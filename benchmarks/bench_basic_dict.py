"""Section 4.1 — the basic dictionary's I/O guarantees across geometries.

Paper claims regenerated here:

* worst-case O(1) I/Os for lookups AND updates with no constraint on B
  (multi-block buckets when B is tiny);
* 1-I/O lookups / 2-I/O updates once ``B = Omega(log N)`` and
  ``v = O(N/B)`` is sized so the Lemma 3 max load stays below B;
* the ``k = d/2`` satellite variant retrieves ``O(BD / log N)`` satellite
  data in the same single probe.

Output: ``benchmarks/results/basic_dict.txt``.
"""

import math
import random

import pytest

from repro.analysis.reporting import render_table
from repro.core.basic_dict import BasicDictionary
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 20


def _drive(d, n, seed=0):
    rng = random.Random(seed)
    keys = rng.sample(range(U), n)
    ins = [d.insert(k, None).total_ios for k in keys]
    hits = [d.lookup(k).cost.total_ios for k in keys]
    miss = []
    while len(miss) < n // 2:
        probe = rng.randrange(U)
        if probe not in set(keys):
            miss.append(d.lookup(probe).cost.total_ios)
    return ins, hits, miss


GEOMETRIES = [
    # (B, n, degree, extra kwargs) — one-probe regime (B >= log N)...
    (16, 500, 16, {}),
    (32, 2000, 16, {}),
    (64, 4000, 24, {}),
    # ...and the tiny-B regime: buckets hold Theta(log N) items across
    # several blocks, lookups stay O(1) I/Os but are no longer one-probe.
    (4, 1000, 16, {"bucket_capacity": 12, "stripe_size": 16}),
]


def test_basic_dict_geometry_sweep(benchmark, save_table):
    rows = []
    for (B, n, degree, extra) in GEOMETRIES:
        machine = ParallelDiskMachine(degree, B)
        d = BasicDictionary(
            machine, universe_size=U, capacity=n, degree=degree, seed=1,
            **extra,
        )
        ins, hits, miss = _drive(d, n)
        one_probe = d.one_probe
        rows.append(
            [
                B,
                n,
                degree,
                d.buckets.blocks_per_bucket,
                "yes" if one_probe else "no",
                max(hits),
                max(miss),
                max(ins),
                d.current_max_load(),
            ]
        )
        bpb = d.buckets.blocks_per_bucket
        assert max(hits) == bpb       # O(1); ==1 in the one-probe regime
        assert max(ins) == 2 * bpb    # read + write
        assert d.current_max_load() <= d.buckets.capacity_items
    table = render_table(
        ["B", "n", "d", "blk/bkt", "one-probe", "wc hit", "wc miss",
         "wc upd", "max load"],
        rows,
    )
    save_table("basic_dict", table)
    benchmark.pedantic(
        lambda: _drive(
            BasicDictionary(
                ParallelDiskMachine(16, 32),
                universe_size=U, capacity=500, degree=16, seed=1,
            ),
            500,
        ),
        rounds=1,
        iterations=1,
    )


def test_basic_dict_satellite_bandwidth(benchmark, save_table):
    """The k = d/2 variant: satellite payload per single-probe lookup."""
    rows = []
    for degree, B in ((16, 32), (24, 32), (32, 64)):
        machine = ParallelDiskMachine(degree, B)
        k = degree // 2
        n = 200
        d = BasicDictionary(
            machine, universe_size=U, capacity=n, degree=degree,
            k_fragments=k, seed=2,
        )
        # Payload sized at the paper's O(BD / log N) items.
        payload_items = (B * degree) // (2 * math.ceil(math.log2(n)))
        payload = "x" * payload_items
        rng = random.Random(3)
        keys = rng.sample(range(U), n)
        for key in keys:
            d.insert(key, payload)
        costs = [d.lookup(key).cost.total_ios for key in keys]
        assert max(costs) == 1  # full payload in one probe
        assert all(d.lookup(key).value == payload for key in keys[:20])
        rows.append([degree, B, k, payload_items, max(costs)])
    table = render_table(
        ["d", "B", "k=d/2", "payload items", "wc lookup I/Os"], rows
    )
    save_table("basic_dict_bandwidth", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
