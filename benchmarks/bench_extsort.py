"""The sort(n) substrate — external mergesort I/Os vs the textbook bound.

Theorem 6 prices its construction in units of ``sort(nd)``; this benchmark
validates the unit: measured mergesort I/Os track
``Theta((n / DB) log_{M/B}(n / B))`` across n, D and M sweeps and stay
below the closed-form bound of :mod:`repro.extsort.analysis`.

Output: ``benchmarks/results/extsort.txt``.
"""

import random

import pytest

from repro.analysis.reporting import render_table
from repro.extsort import (
    ExternalRecordArray,
    external_merge_sort,
    sort_ios_bound,
)
from repro.pdm.machine import ParallelDiskMachine


def _sort_run(n, disks, block_items, mem_blocks, seed=0):
    machine = ParallelDiskMachine(disks, block_items)
    arr = ExternalRecordArray(machine, record_bits=64)
    rng = random.Random(seed)
    arr.extend(rng.randrange(1 << 40) for _ in range(n))
    mem = mem_blocks * arr.records_per_block
    out, report = external_merge_sort(machine, arr, memory_records=mem)
    bound = sort_ios_bound(n, arr.records_per_block, disks, mem)
    return report, bound


def test_extsort_n_sweep(benchmark, save_table):
    rows = []
    for n in (1_000, 4_000, 16_000):
        report, bound = _sort_run(n, disks=8, block_items=16, mem_blocks=32)
        rows.append(
            [n, report.runs_formed, report.merge_passes,
             report.cost.total_ios, bound]
        )
        assert report.cost.total_ios <= bound
    table = render_table(
        ["n", "runs", "merge passes", "measured I/Os", "bound"], rows
    )
    save_table("extsort_n", table)
    benchmark.pedantic(
        lambda: _sort_run(2_000, 8, 16, 32), rounds=1, iterations=1
    )


def test_extsort_parallelism_speedup(benchmark, save_table):
    """Doubling D should roughly halve the I/O rounds (striping works)."""
    rows = []
    ios = {}
    for disks in (2, 4, 8, 16):
        report, _ = _sort_run(8_000, disks, 16, mem_blocks=32)
        ios[disks] = report.cost.total_ios
        rows.append([disks, report.cost.total_ios])
    table = render_table(["disks", "sort I/Os"], rows)
    save_table("extsort_disks", table)
    assert ios[16] < ios[2] / 4  # at least 4x from 8x the disks
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_extsort_memory_tradeoff(benchmark, save_table):
    """More internal memory -> larger fan-in -> fewer passes."""
    rows = []
    passes = {}
    for mem_blocks in (16, 64, 512):
        report, _ = _sort_run(30_000, 8, 16, mem_blocks)
        passes[mem_blocks] = report.merge_passes
        rows.append(
            [mem_blocks, report.fan_in, report.merge_passes,
             report.cost.total_ios]
        )
    table = render_table(
        ["memory (blocks)", "fan-in", "merge passes", "I/Os"], rows
    )
    save_table("extsort_memory", table)
    assert passes[512] <= passes[16]
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
