"""Fault recovery — the price of answering through failures.

Theorem 6's replicated one-probe dictionary keeps answering while up to
``floor((ceil(2d/3) - 1) / 2)`` of a key's field disks are dead; past that
it must refuse (a typed error), and at no point may it lie.  These
benchmarks put numbers on the two halves of that contract:

1. **Threshold sweep**: kill 0..tolerance+1 of a chosen key's field disks
   and tabulate, per fault count, how many lookups answer, how many raise,
   and what the degraded reads cost relative to the healthy baseline.
2. **Chaos recovery overhead**: run the seeded chaos harness per structure
   and tabulate survival rates and the recovery I/O (retries + repairs)
   that degraded operation charges on top of the healthy run.
3. **Self-healing under rolling failures**: attach the recovery stack
   (health tracker, budgeted rebuild manager, scrubber) and roll seeded
   failures through the disks while the workload keeps running; measure
   time-to-heal, the fraction of operations that ran degraded, and the
   foreground p99 impact.

Outputs: ``benchmarks/results/fault_recovery_*.txt`` (+ .json sidecars)
and ``benchmarks/results/BENCH_recovery.json`` (ingested into the
committed bench trajectory by ``scripts/bench_history.py``).
"""

import json

from repro.analysis.reporting import render_table
from repro.core.interface import DegradedLookupError
from repro.core.static_dict import StaticDictionary, fault_tolerance
from repro.faults.chaos import run_chaos
from repro.faults.plan import FaultPlan
from repro.pdm.faults import attach_faults
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 18
SIGMA = 16


def _build_static(num_disks=8, n=64, seed=3):
    machine = ParallelDiskMachine(num_disks, 16, item_bits=64)
    items = {(11 + i * 131) % U: (i * 37) % (1 << SIGMA) for i in range(n)}
    sd = StaticDictionary.build(
        machine,
        items,
        universe_size=U,
        sigma=SIGMA,
        case="b",
        redundancy="replicate",
        seed=seed,
    )
    return machine, sd, items


def test_static_degradation_threshold_sweep(benchmark, save_table):
    num_disks = 8
    tol = fault_tolerance(num_disks)
    rows = []
    baseline_ios = None
    for f in range(tol + 2):
        machine, sd, items = _build_static(num_disks)
        target = sorted(items)[0]
        doomed = sorted(sd.assignment[target])[:f]
        attach_faults(
            machine,
            FaultPlan.kill_disks(doomed, num_disks=num_disks).events,
        )
        ok = raised = wrong = 0
        before = machine.stats.snapshot()
        for k, v in sorted(items.items()):
            try:
                result = sd.lookup(k)
            except DegradedLookupError:
                raised += 1
                continue
            if result.found and result.value == v:
                ok += 1
            else:
                wrong += 1
        cost = machine.stats.since(before)
        if f == 0:
            baseline_ios = cost.total_ios
        overhead = cost.total_ios / baseline_ios - 1.0
        rows.append(
            [
                f,
                f"{f}/{tol}" if f <= tol else f"{f}/{tol} (beyond)",
                ok,
                raised,
                wrong,
                cost.total_ios,
                f"{overhead:+.1%}",
            ]
        )
        # The contract, per fault count: silence is the only failure mode
        # that never appears.
        assert wrong == 0
        if f <= tol:
            assert ok == len(items) and raised == 0
        else:
            assert raised > 0

    table = render_table(
        ["killed", "of tolerance", "answered", "refused", "wrong",
         "total I/Os", "overhead"],
        rows,
    )
    save_table("fault_recovery_threshold", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


def test_chaos_recovery_overhead(benchmark, save_table):
    rows = []
    for structure in ("static", "basic", "dynamic"):
        report = run_chaos(
            structure, operations=128, capacity=96, num_disks=16
        )
        rows.append(
            [
                structure,
                f"{report.survived}/{report.operations}",
                report.failed_total,
                report.wrong_answers,
                report.retry_ios,
                report.repair_ios,
                f"{report.overhead:+.1%}",
            ]
        )
        assert report.ok  # zero silent wrong answers, every structure
    table = render_table(
        ["structure", "survived", "refused", "wrong", "retry I/Os",
         "repair I/Os", "I/O overhead"],
        rows,
    )
    save_table("fault_recovery_chaos", table)
    # Degradation must be visible, not free: the seeded plan injects
    # transients and stragglers, so recovery rounds are non-zero somewhere.
    assert any(int(r[4]) > 0 for r in rows)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)


_OP_SUFFIXES = (".lookup", ".insert", ".upsert", ".delete", ".contains")


def _op_p99(recorder):
    """p99 effective round cost of the foreground operation spans."""
    costs = sorted(
        s.effective_cost.total_ios
        for s in recorder.iter_spans()
        if s.name.endswith(_OP_SUFFIXES)
    )
    if not costs:
        return 0
    return costs[min(len(costs) - 1, (len(costs) * 99) // 100)]


def test_rolling_failure_recovery(benchmark, save_table, results_dir):
    """Live workload + rolling failures + the self-healing stack."""
    scenarios = []
    rows = []
    configs = [
        # static: permanent kills, rebuild onto spares, scrub in between.
        ("static", dict(rolling=2, repair_budget=6, spares=4, scrub_rate=2)),
        # mutable dicts: rolling transient windows, retry + verify heal.
        ("basic", dict(rolling=3, repair_budget=4)),
        ("dynamic", dict(rolling=3, repair_budget=4)),
    ]
    common = dict(operations=128, capacity=96, num_disks=16)
    for structure, kw in configs:
        # Baseline pass with an empty plan: same build, same workload,
        # same instrumentation — healthy per-op span costs.
        baseline = run_chaos(
            structure,
            plan=FaultPlan(seed=0, num_disks=16, horizon=1, events=()),
            **common,
        )
        report = run_chaos(structure, **kw, **common)
        assert report.ok and report.healed is True
        assert report.wrong_answers == 0
        healthy_p99 = _op_p99(baseline.recorder)
        chaos_p99 = _op_p99(report.recorder)
        p99_overhead = (
            chaos_p99 / healthy_p99 - 1.0 if healthy_p99 else 0.0
        )
        degraded_fraction = report.degraded_spans / report.operations
        blocks_lost = report.recovery["stats"]["blocks_lost"]
        scenarios.append(
            {
                "structure": structure,
                "params": dict(kw),
                "time_to_heal_rounds": report.heal_rounds,
                "degraded_read_fraction": degraded_fraction,
                "foreground_p99_overhead": p99_overhead,
                "wrong_answers": report.wrong_answers,
                "blocks_lost": blocks_lost,
                "rebuilds_completed": report.recovery["stats"][
                    "rebuilds_completed"
                ],
                "blocks_rebuilt": report.recovery["stats"]["blocks_rebuilt"],
                "repair_ios": report.repair_ios,
                "retry_ios": report.retry_ios,
            }
        )
        rows.append(
            [
                structure,
                report.heal_rounds,
                f"{degraded_fraction:.1%}",
                f"{p99_overhead:+.1%}",
                report.recovery["stats"]["rebuilds_completed"],
                blocks_lost,
                report.repair_ios,
            ]
        )
        # The healing contract the chaos suite enforces, re-checked at
        # bench scale: everything heals, nothing is lost.
        assert blocks_lost == 0

    payload = {
        "benchmark": "recovery",
        "config": common,
        "scenarios": scenarios,
    }
    out = results_dir / "BENCH_recovery.json"
    out.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")

    table = render_table(
        ["structure", "heal rounds", "degraded ops", "p99 impact",
         "rebuilds", "blocks lost", "repair I/Os"],
        rows,
    )
    save_table("fault_recovery_healing", table)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
