"""Lemma 3 — deterministic load balancing: max load vs the bound.

Paper claim: greedy d-choice over a (d, eps, delta)-expander yields maximum
load at most ``kn/((1-delta)v) + log_{(1-eps)d/k} v``.  The sweep varies
n (light -> heavily loaded), k, and d; for every cell the measured maximum
must sit below the bound — and, per the balanced-allocations literature the
paper derandomizes, far below the 1-choice maximum.

Output table: ``benchmarks/results/lemma3_load.txt``.
"""

import random

import pytest

from repro.analysis.reporting import render_table
from repro.core.load_balancer import DChoiceLoadBalancer, lemma3_bound
from repro.expanders.random_graph import SeededRandomExpander

U = 1 << 20


def _run_cell(n, d, stripe, k, seed=0):
    graph = SeededRandomExpander(
        left_size=U, degree=d, stripe_size=stripe, seed=seed
    )
    balancer = DChoiceLoadBalancer(graph, k=k)
    xs = random.Random(seed).sample(range(U), n)
    report = balancer.place_all(xs)
    bound = lemma3_bound(
        n=n, v=graph.right_size, k=k, d=d, eps=1 / 12, delta=0.5
    )
    return report, bound


SWEEP = [
    # (n, d, stripe, k) — light, moderate, heavy, multi-item, high degree
    (1_000, 12, 512, 1),
    (5_000, 12, 512, 1),
    (20_000, 12, 512, 1),
    (60_000, 12, 512, 1),
    (10_000, 16, 256, 4),
    (10_000, 32, 256, 1),
]


def test_lemma3_sweep(benchmark, save_table):
    rows = []
    for (n, d, stripe, k) in SWEEP:
        report, bound = _run_cell(n, d, stripe, k)
        rows.append(
            [
                n,
                d,
                d * stripe,
                k,
                f"{report.avg_load:.2f}",
                report.max_load,
                f"{bound:.2f}",
                "OK" if report.max_load <= bound else "VIOLATED",
            ]
        )
        assert report.max_load <= bound
    table = render_table(
        ["n", "d", "v", "k", "avg load", "max load", "Lemma3 bound", "check"],
        rows,
    )
    save_table("lemma3_load", table)
    # Time one representative cell.
    benchmark.pedantic(
        lambda: _run_cell(5_000, 12, 512, 1), rounds=1, iterations=1
    )
    benchmark.extra_info["sweep"] = [list(map(str, r)) for r in rows]


def test_lemma3_heavily_loaded_additive_gap(benchmark, save_table):
    """Berenbrink et al.'s heavily loaded case, derandomized: the gap
    max - average stays O(log v) as n grows with v fixed."""
    rows = []
    gaps = []
    for n in (2_000, 8_000, 32_000, 128_000):
        report, _ = _run_cell(n, 12, 128, 1, seed=3)
        gap = report.max_load - report.avg_load
        gaps.append(gap)
        rows.append([n, f"{report.avg_load:.2f}", report.max_load, f"{gap:.2f}"])
    table = render_table(["n", "avg", "max", "gap"], rows)
    save_table("lemma3_heavy", table)
    # The gap must not grow with the load (additive, not multiplicative).
    assert max(gaps) <= gaps[0] + 4
    benchmark.pedantic(
        lambda: _run_cell(8_000, 12, 128, 1, seed=3), rounds=1, iterations=1
    )
