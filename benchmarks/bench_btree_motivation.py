"""Section 1.2 motivation — "one disk read instead of 3".

The file-system scenario: random block accesses through a B-tree of
striped fan-out Theta(BD) versus the paper's one-probe dictionary, on the
same machine geometry, across data-set sizes.  The B-tree pays its height
(log_{BD} n); the dictionary pays 1, always.

Output: ``benchmarks/results/btree_motivation.txt``.
"""

import pytest

from repro.analysis.reporting import render_table
from repro.btree import BTreeDictionary
from repro.core.basic_dict import BasicDictionary
from repro.pdm.machine import ParallelDiskMachine
from repro.workloads.filesystem import FileSystemWorkload


def _compare(num_files, disks=16, block=8, reads=1000):
    fs = FileSystemWorkload(
        num_files=num_files, max_blocks_per_file=32, seed=1
    )
    keys = list(fs.all_keys())

    btree = BTreeDictionary(
        ParallelDiskMachine(disks, block),
        universe_size=fs.universe_size,
        capacity=len(keys),
    )
    dico = BasicDictionary(
        ParallelDiskMachine(disks, block),
        universe_size=fs.universe_size,
        capacity=len(keys),
        degree=disks,
        seed=2,
    )
    for key in keys:
        btree.insert(key, None)
        dico.insert(key, None)

    probe = fs.random_reads(reads, seed=3)
    btree_ios = sum(btree.lookup(k).cost.total_ios for k in probe) / reads
    dict_ios = sum(dico.lookup(k).cost.total_ios for k in probe) / reads
    return len(keys), btree.height(), btree_ios, dict_ios


def test_btree_vs_dictionary(benchmark, save_table):
    rows = []
    for num_files in (100, 800, 6000):
        n, height, btree_ios, dict_ios = _compare(num_files)
        rows.append(
            [
                n,
                height,
                f"{btree_ios:.2f}",
                f"{dict_ios:.2f}",
                f"{btree_ios / dict_ios:.1f}x",
            ]
        )
        assert dict_ios == 1.0
        assert btree_ios >= 2.0 or n < 2000
    table = render_table(
        ["blocks stored", "B-tree height", "B-tree I/Os/read",
         "dict I/Os/read", "speedup"],
        rows,
    )
    save_table("btree_motivation", table)
    # The paper's "3 disk accesses" setting must appear at the large size.
    assert int(rows[-1][1]) >= 3
    benchmark.pedantic(
        lambda: _compare(100, reads=100), rounds=1, iterations=1
    )


def test_insert_side_of_the_story(benchmark, save_table):
    """Updates: B-tree pays height reads plus writes; the dictionary pays
    a flat 2 parallel I/Os."""
    fs = FileSystemWorkload(num_files=2000, max_blocks_per_file=32, seed=4)
    keys = list(fs.all_keys())
    btree = BTreeDictionary(
        ParallelDiskMachine(16, 8),
        universe_size=fs.universe_size,
        capacity=len(keys),
    )
    dico = BasicDictionary(
        ParallelDiskMachine(16, 8),
        universe_size=fs.universe_size,
        capacity=len(keys),
        degree=16,
        seed=5,
    )
    btree_ios = [btree.insert(k, None).total_ios for k in keys]
    dict_ios = [dico.insert(k, None).total_ios for k in keys]
    table = render_table(
        ["structure", "avg insert I/Os", "wc insert I/Os"],
        [
            ["B-tree", f"{sum(btree_ios) / len(keys):.2f}", max(btree_ios)],
            ["S4.1 dict", f"{sum(dict_ios) / len(keys):.2f}", max(dict_ios)],
        ],
    )
    save_table("btree_insert", table)
    assert max(dict_ios) == 2
    assert sum(btree_ios) > sum(dict_ios)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
