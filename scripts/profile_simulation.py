#!/usr/bin/env python
"""Profile the simulator's hot paths (per the optimization-workflow guide:
no optimization without measuring).

Runs a representative §4.3 workload under cProfile and prints the top
functions by cumulative time.  Use it before touching anything for speed —
historically the profile is dominated by expander neighbor evaluation and
block bookkeeping, both already O(1) per probe.

    python scripts/profile_simulation.py [ops]
"""

import cProfile
import pstats
import random
import sys

from repro.core.dynamic_dict import DynamicDictionary
from repro.pdm.machine import ParallelDiskMachine

U = 1 << 20


def workload(ops: int) -> None:
    machine = ParallelDiskMachine(32, 32)
    d = DynamicDictionary(
        machine, universe_size=U, capacity=ops, sigma=48, degree=16, seed=1
    )
    rng = random.Random(1)
    keys = []
    for _ in range(ops):
        k = rng.randrange(U)
        d.insert(k, rng.randrange(1 << 48))
        keys.append(k)
    for k in keys:
        d.lookup(k)
    for _ in range(ops // 2):
        d.lookup(rng.randrange(U))


def main() -> None:
    ops = int(sys.argv[1]) if len(sys.argv) > 1 else 2000
    profiler = cProfile.Profile()
    profiler.enable()
    workload(ops)
    profiler.disable()
    stats = pstats.Stats(profiler)
    stats.sort_stats("cumulative")
    print(f"== top functions for {ops} inserts + {ops * 1.5:.0f} lookups ==")
    stats.print_stats(18)


if __name__ == "__main__":
    main()
