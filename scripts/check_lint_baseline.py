#!/usr/bin/env python
"""Refuse detlint baseline growth: the baseline may only shrink.

Usage::

    python scripts/check_lint_baseline.py [BASELINE] [--against REF]

Compares the working-tree baseline (default ``.detlint-baseline.json``)
against the committed version (``git show REF:<path>``, default ``HEAD``)
and exits 1 when any entry grew or appeared.

The detlint CLI already fails on findings the baseline does not cover, so
the only way to sneak a new finding past CI is to *edit the baseline* —
this gate closes that door.  Legitimate baseline changes are one-way:

* entries shrink or disappear (debt paid down via ``make baseline``
  after fixes) — accepted;
* entries grow or appear — rejected.  Fix the finding or suppress it at
  the site with a justified ``# detlint: off(CODE) -- why`` pragma, which
  keeps the exception next to the code it excuses.

A missing committed baseline (first introduction) accepts any content:
there is nothing to ratchet against.  Exit 2 on operational errors
(unreadable/malformed baseline, git failure), mirroring the linter's own
exit-code contract.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path

FORMAT_VERSION = 1


def _entries(text: str, origin: str) -> dict:
    try:
        data = json.loads(text)
    except json.JSONDecodeError as exc:
        raise SystemExit(f"lint-baseline: malformed JSON in {origin}: {exc}")
    if data.get("version") != FORMAT_VERSION:
        raise SystemExit(
            f"lint-baseline: unsupported version {data.get('version')!r} "
            f"in {origin} (expected {FORMAT_VERSION})"
        )
    entries = data.get("entries", {})
    if not isinstance(entries, dict) or not all(
        isinstance(v, int) and v > 0 for v in entries.values()
    ):
        raise SystemExit(f"lint-baseline: malformed entries in {origin}")
    return entries


def _committed(path: str, ref: str) -> str | None:
    proc = subprocess.run(
        ["git", "show", f"{ref}:{path}"],
        capture_output=True,
        text=True,
    )
    if proc.returncode != 0:
        stderr = proc.stderr.lower()
        if "exists on disk" in stderr or "does not exist" in stderr:
            return None  # baseline is new in this change: nothing to ratchet
        raise SystemExit(
            f"lint-baseline: git show {ref}:{path} failed: "
            f"{proc.stderr.strip()}"
        )
    return proc.stdout


def main(argv: list[str]) -> int:
    path = ".detlint-baseline.json"
    ref = "HEAD"
    args = list(argv)
    while args:
        arg = args.pop(0)
        if arg == "--against":
            if not args:
                raise SystemExit("lint-baseline: --against needs a ref")
            ref = args.pop(0)
        elif arg in ("-h", "--help"):
            print(__doc__)
            return 0
        else:
            path = arg

    current_file = Path(path)
    if not current_file.is_file():
        # No baseline at all is the ideal end state: nothing grandfathered.
        print(f"lint-baseline: OK ({path} absent; no grandfathered debt)")
        return 0
    current = _entries(
        current_file.read_text(encoding="utf-8"), f"working tree {path}"
    )

    committed_text = _committed(path, ref)
    if committed_text is None:
        print(f"lint-baseline: OK ({path} not in {ref}; first introduction)")
        return 0
    committed = _entries(committed_text, f"{ref}:{path}")

    grown = []
    for key in sorted(current):
        before = committed.get(key, 0)
        if current[key] > before:
            grown.append((key, before, current[key]))
    if grown:
        print(
            f"lint-baseline: REJECTED — baseline grew vs {ref} "
            f"({len(grown)} entr{'y' if len(grown) == 1 else 'ies'}):"
        )
        for key, before, after in grown:
            print(f"  {key}: {before} -> {after}")
        print(
            "lint-baseline: the baseline only ratchets down; fix the "
            "finding or add a justified site pragma instead"
        )
        return 1

    shrunk = sum(
        1 for k, v in committed.items() if current.get(k, 0) < v
    )
    total = sum(current.values())
    print(
        f"lint-baseline: OK ({total} grandfathered finding(s), "
        f"{shrunk} entr{'y' if shrunk == 1 else 'ies'} paid down vs {ref})"
    )
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
