#!/usr/bin/env python
"""Gate the always-on telemetry's self-measured overhead.

Usage::

    python scripts/check_obs_overhead.py \
        benchmarks/results/BENCH_latency.json [max_fraction]

Reads the ``overhead`` section that ``benchmarks/bench_latency.py``
writes — interleaved best-of-N throughput of plain vs
LatencyTracker-instrumented uncached lookups on the runner itself — and
fails when the measured overhead fraction exceeds the budget (default
5%).

Exit codes: ``0`` — within budget; ``1`` — overhead above budget (the
"always-on" claim is broken, the PR must fix the hot path or stop
claiming always-on); ``2`` — operational error (missing or unreadable
artifact, malformed numbers: no verdict).
"""

from __future__ import annotations

import json
import sys

DEFAULT_MAX_FRACTION = 0.05


def main(argv):
    if len(argv) not in (2, 3):
        print(__doc__, file=sys.stderr)
        return 2
    try:
        payload = json.loads(open(argv[1]).read())
        budget = float(argv[2]) if len(argv) == 3 else DEFAULT_MAX_FRACTION
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    overhead = payload.get("overhead")
    if not isinstance(overhead, dict):
        print(f"error: no 'overhead' section in {argv[1]}", file=sys.stderr)
        return 2
    try:
        fraction = float(overhead["overhead_fraction"])
        plain = float(overhead["plain_ops_per_sec"])
        inst = float(overhead["instrumented_ops_per_sec"])
        ops = int(overhead["operations"])
    except (KeyError, TypeError, ValueError) as exc:
        print(f"error: malformed overhead section: {exc}", file=sys.stderr)
        return 2
    if plain <= 0 or inst <= 0 or ops <= 0:
        print(
            f"error: degenerate measurement (plain={plain}, "
            f"instrumented={inst}, operations={ops})",
            file=sys.stderr,
        )
        return 2

    print("instrumentation overhead gate")
    print(
        f"  plain: {plain:,.0f} ops/sec  instrumented: {inst:,.0f} ops/sec "
        f"({ops} ops x {overhead.get('repeats', '?')} interleaved passes)"
    )
    verdict = "FAIL" if fraction > budget else "ok"
    print(
        f"  [{verdict}] overhead_fraction: {fraction:.2%} "
        f"(budget <= {budget:.2%})"
    )
    if fraction > budget:
        print(
            "OVERHEAD: the always-on latency tracker costs more than "
            f"{budget:.0%} of uncached-lookup throughput"
        )
        return 1
    print("always-on telemetry within budget")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
