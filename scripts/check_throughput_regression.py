#!/usr/bin/env python
"""Gate the throughput benchmark against its checked-in baseline.

Usage::

    python scripts/check_throughput_regression.py \
        benchmarks/results/BENCH_throughput.json \
        benchmarks/baselines/throughput.json

Compares the current ``BENCH_throughput.json`` (written by
``benchmarks/bench_throughput.py``) against the committed baseline and
exits 1 when any tracked metric regressed beyond its tolerance.

Two classes of metric, two tolerances:

* **Deterministic** PDM metrics — charged rounds per request, cache hit
  rate, round reduction.  These are seeded and hardware-independent, so
  they reproduce exactly; the 20% band only absorbs intentional small
  re-tunings (raise the baseline in the same PR as the change).
* **Wall-clock ratios** — batched-vs-sequential and cached-vs-uncached
  ops/sec.  Absolute ops/sec depend on the runner, and even same-machine
  ratios jitter by tens of percent on shared CI hardware, so these get a
  wide 50% band: the gate catches "the fast path fell off a cliff", not
  scheduler noise.  Absolute ops/sec values are reported, never gated.

The ``batched`` kernel section additionally carries two **absolute**
acceptance gates that hold regardless of the baseline: the vectorized
path must stay >= 3x the in-run sequential baseline, and its charged
rounds must equal the scalar batched path's exactly.
"""

from __future__ import annotations

import json
import sys

#: (json path, higher_is_worse, tolerance) for per-scenario metrics
SCENARIO_GATES = (
    (("uncached", "rounds_per_op"), True, 0.20),
    (("cached", "rounds_per_op"), True, 0.20),
    (("cached", "hit_rate"), False, 0.20),
    (("round_reduction",), False, 0.20),
)

#: (ratio name, higher_is_worse, tolerance) — wall-clock derived
RATIO_GATES = (
    ("batched_vs_sequential_ops", False, 0.50),
    ("cached_vs_uncached_ops_zipf11", False, 0.50),
    ("cached_round_reduction_zipf11", False, 0.20),
)

#: the ``batched`` kernel section: baseline-relative gates plus two
#: absolute ones checked in ``_check_batched`` (the >=3x speedup floor
#: and exact charged-round equality are acceptance criteria, not
#: regressions — they hold regardless of what the baseline recorded)
BATCHED_GATES = (
    (("rounds_per_op",), True, 0.20),
    (("speedup_vs_sequential",), False, 0.50),
    (("speedup_vs_scalar_batched",), False, 0.50),
)
BATCHED_SPEEDUP_FLOOR = 3.0


def _dig(obj, path):
    for key in path:
        if obj is None:
            return None
        obj = obj.get(key)
    return obj


def _check(label, current, baseline, higher_is_worse, tolerance, failures):
    if current is None or baseline is None or not baseline:
        return
    if higher_is_worse:
        limit = baseline * (1.0 + tolerance)
        bad = current > limit
        direction = ">"
    else:
        limit = baseline * (1.0 - tolerance)
        bad = current < limit
        direction = "<"
    verdict = "FAIL" if bad else "ok"
    print(
        f"  [{verdict}] {label}: {current:g} vs baseline {baseline:g} "
        f"(limit {direction} {limit:g})"
    )
    if bad:
        failures.append(label)


def _check_batched(current, baseline, failures):
    batched = current.get("batched")
    if batched is None:
        print("  [warn] no 'batched' section in current report")
        return
    # Absolute acceptance gates — independent of the baseline.
    speedup = batched.get("speedup_vs_sequential")
    if speedup is not None:
        ok = speedup >= BATCHED_SPEEDUP_FLOOR
        print(
            f"  [{'ok' if ok else 'FAIL'}] batched/speedup_vs_sequential "
            f"floor: {speedup:g} (require >= {BATCHED_SPEEDUP_FLOOR:g}x)"
        )
        if not ok:
            failures.append("batched/speedup_floor")
    equal = batched.get("charged_rounds_equal")
    ok = equal is True
    print(
        f"  [{'ok' if ok else 'FAIL'}] batched/charged_rounds_equal: {equal}"
        " (vectorized must charge exactly the scalar rounds)"
    )
    if not ok:
        failures.append("batched/charged_rounds_equal")
    # Baseline-relative regression gates.
    base = baseline.get("batched")
    if base is None:
        print("  [warn] no 'batched' baseline yet (gating floors only)")
        return
    for path, worse_up, tol in BATCHED_GATES:
        _check(
            f"batched/{'.'.join(path)}",
            _dig(batched, path), _dig(base, path), worse_up, tol, failures,
        )


def main(argv):
    if len(argv) != 3:
        print(__doc__, file=sys.stderr)
        return 2
    try:
        current = json.loads(open(argv[1]).read())
        baseline = json.loads(open(argv[2]).read())
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    failures = []
    base_by_skew = {s["skew"]: s for s in baseline.get("scenarios", ())}
    print("throughput regression gate "
          f"({argv[1]} vs {argv[2]})")
    for sc in current.get("scenarios", ()):
        base = base_by_skew.get(sc["skew"])
        if base is None:
            print(f"  [warn] no baseline for scenario {sc['skew']!r}")
            continue
        for path, worse_up, tol in SCENARIO_GATES:
            _check(
                f"{sc['skew']}/{'.'.join(path)}",
                _dig(sc, path), _dig(base, path), worse_up, tol, failures,
            )
    for name, worse_up, tol in RATIO_GATES:
        _check(
            f"ratios/{name}",
            current.get("ratios", {}).get(name),
            baseline.get("ratios", {}).get(name),
            worse_up, tol, failures,
        )
    _check_batched(current, baseline, failures)
    seq = current.get("sequential", {}).get("ops_per_sec")
    if seq is not None:
        print(f"  [info] sequential uncached ops/sec: {seq:g} (not gated)")

    if failures:
        print(f"REGRESSION: {len(failures)} metric(s) beyond tolerance: "
              + ", ".join(failures))
        return 1
    print("all tracked metrics within tolerance")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv))
