#!/usr/bin/env python
"""Merge this run's ``BENCH_*.json`` artifacts into the bench trajectory.

Thin wrapper over ``python -m repro.obs.history`` for environments that
invoke scripts rather than modules (CI, Makefile)::

    python scripts/bench_history.py --label pr7 \
        [--results benchmarks/results] \
        [--out benchmarks/results/trajectory.json] \
        [--seed-baseline benchmarks/baselines/throughput.json]

Everything — artifact extractors, the entry/attribution schema, exit
codes (0 wrote, 2 operational error) — lives in
``src/repro/obs/history.py``; this file only fixes up ``sys.path`` so the
module resolves from a source checkout.
"""

from __future__ import annotations

import pathlib
import sys

sys.path.insert(0, str(pathlib.Path(__file__).resolve().parent.parent / "src"))

from repro.obs.history import main  # noqa: E402

if __name__ == "__main__":
    raise SystemExit(main())
