"""ARCH rules: import layering.

The determinism story has a dependency direction: the paper's
deterministic structures (``repro.core``, ``repro.expanders``) must never
import the *randomized* baselines (``repro.hashing``) or the workload
generators — a stray import would let randomized machinery leak into the
deterministic path, and historically did (the pointer store once pulled
its storage layout out of ``repro.hashing``).  The allowed edges live in
``[tool.detlint.layers]``; base packages (``arch-base``) are importable
from anywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Tuple

from repro.lint.finding import Finding
from repro.lint.rules.base import ModuleContext, Rule, register


def _package_of(module: str) -> str:
    """The layering unit: the first two dotted components."""
    return ".".join(module.split(".")[:2])


def _imported_modules(tree: ast.Module, current: Optional[str]) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level and current:
                base = current.split(".")
                # a module's level-1 relative import is its own package
                base = base[: len(base) - node.level]
                resolved = ".".join(base + ([node.module] if node.module else []))
                if resolved:
                    yield node, resolved
            elif node.module:
                yield node, node.module


@register
class LayeringRule(Rule):
    code = "ARCH201"
    name = "layering"
    summary = "import violates the configured package layering"
    rationale = (
        "repro.core and repro.expanders are the deterministic contribution; "
        "repro.hashing and repro.workloads are the randomized baselines and "
        "drivers they are measured against.  An upward or cross import "
        "(core -> hashing, core -> analysis, pdm -> anything) entangles the "
        "layers, invites cycles, and lets randomized code into the "
        "deterministic path.  Allowed edges are declared in "
        "[tool.detlint.layers]."
    )
    scope = "strict"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module is None:
            return
        pkg = _package_of(ctx.module)
        allowed: Optional[List[str]] = ctx.config.layers.get(pkg)
        if allowed is None or "*" in allowed:
            return
        permitted = set(allowed) | set(ctx.config.arch_base) | {pkg}
        for node, target in _imported_modules(ctx.tree, ctx.module):
            if not (target == "repro" or target.startswith("repro.")):
                continue
            dep = _package_of(target)
            if dep == "repro":
                # "from repro import x" — the root façade re-imports heavy
                # subpackages; inside the library that is a cycle risk.
                yield ctx.finding(
                    node,
                    self.code,
                    f"{pkg} imports the root repro façade; import the "
                    f"specific submodule instead",
                )
                continue
            if dep not in permitted:
                yield ctx.finding(
                    node,
                    self.code,
                    f"{pkg} may not import {dep} "
                    f"(allowed: {', '.join(sorted(permitted - {pkg})) or 'nothing'}); "
                    f"see [tool.detlint.layers]",
                )
