"""ARCH rules: import layering.

The determinism story has a dependency direction: the paper's
deterministic structures (``repro.core``, ``repro.expanders``) must never
import the *randomized* baselines (``repro.hashing``) or the workload
generators — a stray import would let randomized machinery leak into the
deterministic path, and historically did (the pointer store once pulled
its storage layout out of ``repro.hashing``).  The allowed edges live in
``[tool.detlint.layers]``; base packages (``arch-base``) are importable
from anywhere.
"""

from __future__ import annotations

import ast
from typing import Iterator, Mapping, Optional, Tuple

from repro.lint.finding import Finding
from repro.lint.rules.base import ModuleContext, Rule, register


def _package_of(module: str) -> str:
    """The default layering unit: the first two dotted components."""
    return ".".join(module.split(".")[:2])


def _layer_of(module: str, layers: Mapping[str, object]) -> str:
    """The layering unit of ``module``: the *longest* configured layer key
    that is a dotted prefix of it, falling back to the first two
    components.  This lets ``[tool.detlint.layers]`` name sub-module
    layers like ``repro.pdm.cache`` with their own edge sets."""
    best = None
    for key in layers:
        if module == key or module.startswith(key + "."):
            if best is None or len(key) > len(best):
                best = key
    return best if best is not None else _package_of(module)


def _subtree(dep: str, pkg: str) -> bool:
    """True when one layer is nested inside the other (a package and its
    registered sub-layers always may import each other)."""
    return (
        dep == pkg
        or dep.startswith(pkg + ".")
        or pkg.startswith(dep + ".")
    )


def _imported_modules(tree: ast.Module, current: Optional[str]) -> Iterator[Tuple[ast.AST, str]]:
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                yield node, alias.name
        elif isinstance(node, ast.ImportFrom):
            if node.level and current:
                base = current.split(".")
                # a module's level-1 relative import is its own package
                base = base[: len(base) - node.level]
                resolved = ".".join(base + ([node.module] if node.module else []))
                if resolved:
                    yield node, resolved
            elif node.module:
                yield node, node.module


@register
class LayeringRule(Rule):
    code = "ARCH201"
    name = "layering"
    summary = "import violates the configured package layering"
    rationale = (
        "repro.core and repro.expanders are the deterministic contribution; "
        "repro.hashing and repro.workloads are the randomized baselines and "
        "drivers they are measured against.  An upward or cross import "
        "(core -> hashing, core -> analysis, pdm -> anything) entangles the "
        "layers, invites cycles, and lets randomized code into the "
        "deterministic path.  Allowed edges are declared in "
        "[tool.detlint.layers]."
    )
    scope = "strict"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if ctx.module is None:
            return
        layers = ctx.config.layers
        pkg = _layer_of(ctx.module, layers)
        allowed = layers.get(pkg)
        if allowed is None or "*" in allowed:
            return
        permitted = set(allowed) | set(ctx.config.arch_base)
        for node, target in _imported_modules(ctx.tree, ctx.module):
            if not (target == "repro" or target.startswith("repro.")):
                continue
            dep = _layer_of(target, layers)
            if dep == "repro":
                # "from repro import x" — the root façade re-imports heavy
                # subpackages; inside the library that is a cycle risk.
                yield ctx.finding(
                    node,
                    self.code,
                    f"{pkg} imports the root repro façade; import the "
                    f"specific submodule instead",
                )
                continue
            if _subtree(dep, pkg):
                continue
            # an allowed layer also permits its registered sub-layers
            if any(dep == p or dep.startswith(p + ".") for p in permitted):
                continue
            yield ctx.finding(
                node,
                self.code,
                f"{pkg} may not import {dep} "
                f"(allowed: {', '.join(sorted(permitted)) or 'nothing'}); "
                f"see [tool.detlint.layers]",
            )
