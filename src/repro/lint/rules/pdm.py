"""PDM rules: every disk access must be charged.

The repository's headline numbers are parallel I/O counts measured by
:class:`repro.pdm.iostats.IOStats`.  They are only honest if *all* block
traffic flows through the machine's ``read_blocks`` / ``write_blocks``
(which charge the model's round cost) — code that touches ``Disk`` /
``Block`` objects directly, or uses the uncharged ``block_at`` escape
hatch, bypasses the meter.  Outside ``repro.pdm`` itself that is either a
bug or an audit, and audits must say so with a pragma.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.lint.finding import Finding
from repro.lint.rules.base import ModuleContext, Rule, register

_INTERNAL_MODULES = {
    "repro.pdm.block",
    "repro.pdm.disk",
    "repro.pdm.memory",
}
_INTERNAL_NAMES = {"Block", "Disk", "FaultyDisk"}


def _inside_pdm(ctx: ModuleContext) -> bool:
    return ctx.module is not None and (
        ctx.module == "repro.pdm" or ctx.module.startswith("repro.pdm.")
    )


@register
class PdmInternalsImportRule(Rule):
    code = "PDM101"
    name = "pdm-internals-import"
    summary = "imports PDM internals instead of the repro.pdm façade"
    rationale = (
        "Disk and Block are simulator internals: holding one lets code "
        "move data without charging I/O.  Everything public — machines, "
        "IOStats, InternalMemory, the striped layouts — is exported by the "
        "repro.pdm package itself; import it from there so the boundary "
        "stays visible and greppable."
    )
    scope = "strict"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _inside_pdm(ctx):
            return
        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    if alias.name in _INTERNAL_MODULES:
                        yield ctx.finding(
                            node,
                            self.code,
                            f"import of PDM internal module {alias.name}; "
                            f"import the public name from repro.pdm instead",
                        )
            elif isinstance(node, ast.ImportFrom) and node.module:
                if node.module in _INTERNAL_MODULES:
                    yield ctx.finding(
                        node,
                        self.code,
                        f"import from PDM internal module {node.module}; "
                        f"import the public name from repro.pdm instead",
                    )
                elif node.module == "repro.pdm" or node.module.startswith(
                    "repro.pdm."
                ):
                    for alias in node.names:
                        if alias.name in _INTERNAL_NAMES:
                            yield ctx.finding(
                                node,
                                self.code,
                                f"import of simulator internal "
                                f"{alias.name!r} outside repro.pdm; all "
                                f"I/O must flow through the machine "
                                f"read/write APIs",
                            )


@register
class UnchargedIoRule(Rule):
    code = "PDM102"
    name = "uncharged-io"
    summary = "uncharged physical block access outside repro.pdm"
    rationale = (
        "machine.block_at(...) and machine.disks[...] read blocks without "
        "charging parallel I/Os, so any algorithmic use silently deflates "
        "the measured costs the repository reports.  Route data movement "
        "through read_blocks/write_blocks; genuine audits (space checks, "
        "stored_keys iterators) must carry a "
        "'# detlint: ignore[PDM102]' pragma with a justification."
    )
    scope = "strict"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if _inside_pdm(ctx):
            return
        for node in ast.walk(ctx.tree):
            hit = None
            if isinstance(node, ast.Attribute) and node.attr in (
                "block_at",
                "peek_at",
            ):
                hit = (node, f"{node.attr}() bypasses I/O accounting")
            elif isinstance(node, ast.Subscript) and self._is_disks(node.value):
                # machine.disks[i] — reaching for a Disk object directly
                hit = (node, "indexing .disks bypasses I/O accounting")
            elif isinstance(node, (ast.For, ast.AsyncFor)) and self._is_disks(
                node.iter
            ):
                hit = (node.iter, "iterating .disks bypasses I/O accounting")
            elif isinstance(
                node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)
            ):
                for gen in node.generators:
                    if self._is_disks(gen.iter):
                        hit = (gen.iter, "iterating .disks bypasses I/O accounting")
                        break
            if hit is not None:
                where, kind = hit
                yield ctx.finding(
                    where,
                    self.code,
                    f"{kind}; use read_blocks/write_blocks, or pragma an "
                    f"audit with a justification",
                )

    @staticmethod
    def _is_disks(node: ast.AST) -> bool:
        return isinstance(node, ast.Attribute) and node.attr == "disks"
