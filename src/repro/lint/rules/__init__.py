"""Rule registry.  Importing this package registers every rule family."""

from repro.lint.rules import arch, det, pdm  # noqa: F401  (registration side effect)
from repro.lint.flow import cost, race, taint  # noqa: F401  (flow rule registration)
from repro.lint.rules.base import (
    ImportMap,
    ModuleContext,
    Rule,
    all_rules,
    register,
    rule_by_code,
)

__all__ = [
    "ImportMap",
    "ModuleContext",
    "Rule",
    "all_rules",
    "register",
    "rule_by_code",
]
