"""Rule plumbing: the base class, the registry, and shared AST helpers."""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Type

from repro.lint.config import Config
from repro.lint.finding import Finding


@dataclass
class ModuleContext:
    """Everything a rule may inspect about one file."""

    path: Path  # absolute
    rel_path: str  # POSIX, relative to project root
    module: Optional[str]  # dotted name when under a src root, else None
    tree: ast.Module
    source: str
    strict: bool  # inside the configured deterministic-module patterns
    config: Config
    _imports: "Optional[ImportMap]" = None

    @property
    def imports(self) -> "ImportMap":
        if self._imports is None:
            self._imports = ImportMap.collect(self.tree)
        return self._imports

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        return Finding(
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )


class Rule:
    """One checkable discipline.  Subclasses set the class attributes and
    implement :meth:`check`."""

    code: str = ""
    name: str = ""
    summary: str = ""
    rationale: str = ""
    #: "strict" rules run only on deterministic modules; "all" rules run on
    #: every linted file (tests and benchmarks included).
    scope: str = "strict"
    #: project-scope rules need the cross-module index (symbol table + call
    #: graph) of :mod:`repro.lint.flow`; the per-file engine skips them and
    #: the flow driver calls :meth:`check_project` instead of :meth:`check`.
    project_scope: bool = False

    def applies(self, ctx: ModuleContext) -> bool:
        return ctx.strict or self.scope == "all"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        raise NotImplementedError

    def check_project(self, project) -> Iterator[Finding]:
        """Project-wide check (``project_scope`` rules only); ``project`` is
        a :class:`repro.lint.flow.project.Project`."""
        raise NotImplementedError


_REGISTRY: Dict[str, Type[Rule]] = {}  # detlint: guarded(import-time) -- written only while rule modules import, sealed before any lint run


def register(cls: Type[Rule]) -> Type[Rule]:
    if not cls.code:
        raise ValueError(f"rule {cls.__name__} has no code")
    if cls.code in _REGISTRY:
        raise ValueError(f"duplicate rule code {cls.code}")
    _REGISTRY[cls.code] = cls
    return cls


def all_rules() -> List[Rule]:
    """Fresh instances of every registered rule, in code order."""
    return [_REGISTRY[code]() for code in sorted(_REGISTRY)]


def rule_by_code(code: str) -> Optional[Type[Rule]]:
    return _REGISTRY.get(code.upper())


# -- import resolution ------------------------------------------------------


@dataclass
class ImportMap:
    """Module aliases and from-imports of one file, for resolving dotted
    call chains like ``np.random.default_rng`` back to real module paths."""

    #: local name -> dotted module ("np" -> "numpy")
    module_aliases: Dict[str, str] = field(default_factory=dict)
    #: local name -> (source module, original name)
    from_imports: Dict[str, Tuple[str, str]] = field(default_factory=dict)

    @classmethod
    def collect(cls, tree: ast.Module) -> "ImportMap":
        out = cls()
        for node in ast.walk(tree):
            if isinstance(node, ast.Import):
                for alias in node.names:
                    local = alias.asname or alias.name.split(".")[0]
                    # "import a.b" binds "a"; "import a.b as c" binds a.b
                    target = alias.name if alias.asname else alias.name.split(".")[0]
                    out.module_aliases[local] = target
            elif isinstance(node, ast.ImportFrom) and node.module and node.level == 0:
                for alias in node.names:
                    local = alias.asname or alias.name
                    out.from_imports[local] = (node.module, alias.name)
        return out

    def resolve_chain(self, node: ast.AST) -> Optional[str]:
        """Dotted path of an attribute chain with the root resolved through
        the imports: ``np.random.rand`` -> ``numpy.random.rand``.  Returns
        None for chains not rooted at a plain name."""
        parts: List[str] = []
        while isinstance(node, ast.Attribute):
            parts.append(node.attr)
            node = node.value
        if not isinstance(node, ast.Name):
            return None
        parts.append(node.id)
        parts.reverse()
        root = parts[0]
        if root in self.module_aliases:
            return ".".join([self.module_aliases[root]] + parts[1:])
        if root in self.from_imports:
            mod, orig = self.from_imports[root]
            return ".".join([mod, orig] + parts[1:])
        return ".".join(parts)


def call_args_count(node: ast.Call) -> int:
    return len(node.args) + len(node.keywords)
