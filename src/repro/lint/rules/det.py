"""DET rules: sources of run-to-run nondeterminism.

The reproduction's claim is that every structure is *deterministic* — the
same inputs give the same layout, the same I/O trace, the same counts, in
every process on every machine.  These rules mechanically exclude the ways
Python lets entropy leak in.
"""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Set

from repro.lint.finding import Finding
from repro.lint.rules.base import ModuleContext, Rule, call_args_count, register

# Constructors that are fine *if* given an explicit seed argument.
_RANDOM_FACTORIES = {"Random"}
_NUMPY_FACTORIES = {
    "default_rng",
    "RandomState",
    "Generator",
    "SeedSequence",
    "MT19937",
    "PCG64",
    "PCG64DXSM",
    "Philox",
    "SFC64",
}


def _is_factory(fn: str, factories: Set[str]) -> bool:
    return fn in factories


@register
class UnseededRandomRule(Rule):
    code = "DET001"
    name = "unseeded-global-rng"
    summary = (
        "call uses the process-global (or unseeded) RNG instead of an "
        "explicitly seeded generator"
    )
    rationale = (
        "Module-level random.* functions and unseeded generator "
        "constructors draw from interpreter-global state seeded from OS "
        "entropy, so layouts and traces differ between runs — invalidating "
        "every determinism claim and every reported I/O count.  Construct "
        "random.Random(seed) / numpy.random.default_rng(seed) and thread "
        "the seed through explicitly."
    )
    scope = "all"  # unseeded randomness makes tests flaky too

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = ctx.imports.resolve_chain(node.func)
            if chain is None:
                continue
            hit = self._classify(ctx, node, chain)
            if hit is not None:
                yield ctx.finding(node, self.code, hit)

    def _classify(
        self, ctx: ModuleContext, node: ast.Call, chain: str
    ) -> Optional[str]:
        nargs = call_args_count(node)
        if chain.startswith("random."):
            fn = chain[len("random.") :]
            if "." in fn or fn == "SystemRandom":  # method call / DET005's job
                return None
            if _is_factory(fn, _RANDOM_FACTORIES):
                if nargs == 0:
                    return (
                        f"random.{fn}() without a seed argument falls back "
                        f"to OS entropy; pass an explicit seed"
                    )
                return None
            return (
                f"random.{fn}() uses the process-global RNG; construct "
                f"random.Random(seed) and use it explicitly"
            )
        if chain.startswith("numpy.random."):
            fn = chain[len("numpy.random.") :]
            if "." in fn:
                return None
            if _is_factory(fn, _NUMPY_FACTORIES):
                if nargs == 0:
                    return (
                        f"numpy.random.{fn}() without a seed argument falls "
                        f"back to OS entropy; pass an explicit seed"
                    )
                return None
            return (
                f"numpy.random.{fn}() uses numpy's global RNG; construct "
                f"numpy.random.default_rng(seed) and use it explicitly"
            )
        return None


@register
class BuiltinHashRule(Rule):
    code = "DET002"
    name = "builtin-hash"
    summary = "builtin hash() is salted per process for str/bytes"
    rationale = (
        "CPython salts str/bytes hashing with PYTHONHASHSEED, so any table "
        "layout, ordering or derived value involving builtin hash() "
        "silently changes between processes.  Use "
        "repro.bits.mix.stable_hash (or an explicit hash family) instead; "
        "for provably int-only arguments, suppress with a pragma."
    )
    scope = "all"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        if self._shadowed(ctx.tree):
            return
        for node in ast.walk(ctx.tree):
            if (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id == "hash"
            ):
                yield ctx.finding(
                    node,
                    self.code,
                    "builtin hash() is salted per process on str/bytes; use "
                    "repro.bits.mix.stable_hash or suppress if the argument "
                    "is provably int-only",
                )

    @staticmethod
    def _shadowed(tree: ast.Module) -> bool:
        for node in ast.walk(tree):
            if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
                if node.name == "hash":
                    return True
                args = node.args
                names = [
                    a.arg
                    for a in (
                        *args.posonlyargs,
                        *args.args,
                        *args.kwonlyargs,
                    )
                ]
                if "hash" in names:
                    return True
            elif isinstance(node, ast.Assign):
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name) and tgt.id == "hash":
                        return True
        return False


def _is_set_producing(node: ast.AST) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in {"set", "frozenset"}
    ):
        return True
    if isinstance(node, ast.BinOp) and isinstance(
        node.op, (ast.BitOr, ast.BitAnd, ast.Sub, ast.BitXor)
    ):
        # set algebra: flag only when a side is itself visibly a set
        return _is_set_producing(node.left) or _is_set_producing(node.right)
    return False


@register
class SetIterationOrderRule(Rule):
    code = "DET003"
    name = "set-iteration-order"
    summary = "iteration over a set depends on hash order"
    rationale = (
        "Set iteration order follows element hashes — salted for strings, "
        "and an implementation detail everywhere — so any sequence, file or "
        "I/O schedule built by iterating a set can differ between runs.  "
        "Wrap the set in sorted(...), or dedup with dict.fromkeys(...) "
        "which preserves first-seen order."
    )
    scope = "strict"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            iters = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Name)
                and node.func.id in {"list", "tuple", "enumerate"}
                and node.args
            ):
                iters.append(node.args[0])
            for it in iters:
                if _is_set_producing(it):
                    yield ctx.finding(
                        it,
                        self.code,
                        "iterating a set leaks hash order into the result; "
                        "wrap in sorted(...) or dedup with dict.fromkeys(...)",
                    )


_WALL_CLOCK = {
    "time.time",
    "time.time_ns",
    "time.monotonic",
    "time.monotonic_ns",
    "time.perf_counter",
    "time.perf_counter_ns",
    "time.process_time",
    "time.process_time_ns",
    "time.localtime",
    "time.gmtime",
    "datetime.datetime.now",
    "datetime.datetime.utcnow",
    "datetime.datetime.today",
    "datetime.date.today",
}


@register
class WallClockRule(Rule):
    code = "DET004"
    name = "wall-clock"
    summary = "deterministic module reads the wall clock"
    rationale = (
        "Timing belongs in benchmarks and the replay driver, not in the "
        "data structures: a code path that branches on (or stores) the "
        "clock is not a function of its inputs, and the PDM cost model "
        "already provides the performance measure (parallel I/Os)."
    )
    scope = "strict"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = ctx.imports.resolve_chain(node.func)
            if chain in _WALL_CLOCK:
                yield ctx.finding(
                    node,
                    self.code,
                    f"{chain}() reads the wall clock inside a deterministic "
                    f"module; measure time only in benchmarks, count "
                    f"parallel I/Os here",
                )


_ENTROPY = {
    "os.urandom",
    "os.getrandom",
    "uuid.uuid1",
    "uuid.uuid4",
    "random.SystemRandom",
}


@register
class OsEntropyRule(Rule):
    code = "DET005"
    name = "os-entropy"
    summary = "direct OS entropy source"
    rationale = (
        "os.urandom, uuid4, secrets.* and SystemRandom are nondeterministic "
        "by construction — no seed can reproduce them.  Nothing in a "
        "deterministic reproduction (tests included) should consume raw "
        "entropy."
    )
    scope = "all"

    def check(self, ctx: ModuleContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            chain = ctx.imports.resolve_chain(node.func)
            if chain is None:
                continue
            if chain in _ENTROPY or chain.startswith("secrets."):
                yield ctx.finding(
                    node,
                    self.code,
                    f"{chain}() draws raw OS entropy; no seed can reproduce "
                    f"it — derive values from repro.bits.mix instead",
                )
