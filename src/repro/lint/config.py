"""``detlint`` configuration, driven by ``[tool.detlint]`` in pyproject.toml.

The shipped defaults below mirror the repository's own pyproject so the
linter behaves identically on interpreters without a TOML parser
(``tomllib`` is 3.11+; on 3.10 install ``tomli`` or rely on the defaults).

Keys (all optional):

``paths``
    Directories/files linted when the CLI is given none.
``src-roots``
    Roots stripped to derive dotted module names (``src/repro/pdm/disk.py``
    under root ``src`` is module ``repro.pdm.disk``).  Only files under a
    src root carry a module name; ARCH rules need one.
``strict``
    Path patterns (``prefix/**`` or fnmatch) for *deterministic modules*:
    the code whose behaviour must be a pure function of its inputs.  All
    rule families apply here.  Everywhere else (tests, benchmarks,
    examples) only rules with ``scope = "all"`` apply — a benchmark may
    read the clock; the §4 dictionaries may not.
``exclude``
    Path patterns never linted.
``ignore``
    Rule codes disabled globally.
``baseline``
    Baseline file path, relative to the project root.
``arch-base``
    Packages importable from anywhere (the bottom layer).
``race-scope``
    Dotted package prefixes whose classes face the pluggable executors
    (thread-per-disk / process-pool): the RACE2xx shared-state rules apply
    to state defined here.  Module-level state (RACE201) is checked in
    every deterministic module regardless.
``span-scope``
    Dotted package prefixes whose :class:`repro.core.interface.Dictionary`
    subclasses must open cost spans on every public operation (COST102).
    Defaults to ``repro.core`` — the randomized baselines are measured
    externally via ``measure()``.
``[tool.detlint.layers]``
    Map of package -> list of packages it may import (``"*"`` = any).
    Packages absent from the map are unconstrained.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Set

try:  # Python 3.11+
    import tomllib as _toml
except ImportError:  # pragma: no cover - 3.10 fallback
    try:
        import tomli as _toml  # type: ignore[import-not-found]
    except ImportError:
        _toml = None

DEFAULT_PATHS = ["src", "tests", "benchmarks"]
DEFAULT_SRC_ROOTS = ["src"]
DEFAULT_STRICT = ["src/repro/**"]
DEFAULT_EXCLUDE = [
    "**/__pycache__/**",
    "**/.*/**",
    "**/*.egg-info/**",
]
DEFAULT_BASELINE = ".detlint-baseline.json"
DEFAULT_ARCH_BASE = ["repro.bits", "repro.bounds"]
DEFAULT_RACE_SCOPE = [
    "repro.pdm",
    "repro.core",
    "repro.expanders",
    "repro.extsort",
    "repro.batch",
    "repro.hashing",
    "repro.btree",
    "repro.recovery",
]
DEFAULT_SPAN_SCOPE = ["repro.core"]
DEFAULT_LAYERS: Dict[str, List[str]] = {
    "repro.pdm": [],
    "repro.expanders": ["repro.pdm"],
    "repro.extsort": ["repro.pdm"],
    "repro.hashing": ["repro.pdm", "repro.core"],
    "repro.btree": ["repro.pdm", "repro.core"],
    "repro.core": ["repro.pdm", "repro.expanders", "repro.extsort"],
    "repro.workloads": ["repro.core"],
    "repro.fs": ["repro.pdm", "repro.core", "repro.workloads"],
    "repro.recovery": ["repro.pdm", "repro.core"],
    "repro.analysis": ["*"],
    "repro.lint": [],
}


def match_path(rel_path: str, pattern: str) -> bool:
    """``prefix/**`` matches the whole subtree; otherwise fnmatch.

    ``rel_path`` is POSIX-style relative to the project root.
    """
    import fnmatch

    if pattern.endswith("/**"):
        prefix = pattern[:-3]
        return rel_path == prefix or rel_path.startswith(prefix + "/")
    if pattern.endswith("/"):
        return rel_path.startswith(pattern)
    # fnmatch's "*" crosses "/" which is what we want for **/x patterns
    return fnmatch.fnmatch(rel_path, pattern)


@dataclass
class Config:
    root: Path
    paths: List[str] = field(default_factory=lambda: list(DEFAULT_PATHS))
    src_roots: List[str] = field(default_factory=lambda: list(DEFAULT_SRC_ROOTS))
    strict: List[str] = field(default_factory=lambda: list(DEFAULT_STRICT))
    exclude: List[str] = field(default_factory=lambda: list(DEFAULT_EXCLUDE))
    ignore: Set[str] = field(default_factory=set)
    select: Optional[Set[str]] = None  # None = all registered rules
    baseline: Optional[str] = DEFAULT_BASELINE
    arch_base: List[str] = field(default_factory=lambda: list(DEFAULT_ARCH_BASE))
    race_scope: List[str] = field(default_factory=lambda: list(DEFAULT_RACE_SCOPE))
    span_scope: List[str] = field(default_factory=lambda: list(DEFAULT_SPAN_SCOPE))
    layers: Dict[str, List[str]] = field(
        default_factory=lambda: {k: list(v) for k, v in DEFAULT_LAYERS.items()}
    )

    # -- path classification ------------------------------------------------

    def is_excluded(self, rel_path: str) -> bool:
        return any(match_path(rel_path, p) for p in self.exclude)

    def is_strict(self, rel_path: str) -> bool:
        return any(match_path(rel_path, p) for p in self.strict)

    def module_name(self, rel_path: str) -> Optional[str]:
        """Dotted module name if ``rel_path`` lies under a src root."""
        if not rel_path.endswith(".py"):
            return None
        for root in self.src_roots:
            prefix = root.rstrip("/") + "/"
            if rel_path.startswith(prefix):
                parts = rel_path[len(prefix) : -3].split("/")
                if parts and parts[-1] == "__init__":
                    parts = parts[:-1]
                return ".".join(parts) if parts else None
        return None

    def rule_enabled(self, code: str) -> bool:
        if code in self.ignore:
            return False
        return self.select is None or code in self.select

    @property
    def baseline_path(self) -> Optional[Path]:
        return self.root / self.baseline if self.baseline else None


def find_project_root(start: Path) -> Path:
    """Nearest ancestor (inclusive) holding a pyproject.toml, else ``start``."""
    start = start.resolve()
    for candidate in (start, *start.parents):
        if (candidate / "pyproject.toml").is_file():
            return candidate
    return start


def load_config(root: Optional[Path] = None) -> Config:
    """Read ``[tool.detlint]`` from the project root's pyproject.toml,
    falling back to the shipped defaults (also when no TOML parser is
    available on this interpreter)."""
    root = find_project_root(root or Path.cwd())
    cfg = Config(root=root)
    pyproject = root / "pyproject.toml"
    if _toml is None or not pyproject.is_file():
        return cfg
    with pyproject.open("rb") as fh:
        data = _toml.load(fh)
    table = data.get("tool", {}).get("detlint", {})
    if not isinstance(table, dict):
        return cfg

    def _strlist(key: str, default: Sequence[str]) -> List[str]:
        raw = table.get(key, None)
        if raw is None:
            return list(default)
        if not isinstance(raw, list) or not all(isinstance(x, str) for x in raw):
            raise ValueError(f"[tool.detlint] {key} must be a list of strings")
        return list(raw)

    cfg.paths = _strlist("paths", cfg.paths)
    cfg.src_roots = _strlist("src-roots", cfg.src_roots)
    cfg.strict = _strlist("strict", cfg.strict)
    cfg.exclude = _strlist("exclude", cfg.exclude)
    cfg.ignore = {c.upper() for c in _strlist("ignore", [])}
    cfg.arch_base = _strlist("arch-base", cfg.arch_base)
    cfg.race_scope = _strlist("race-scope", cfg.race_scope)
    cfg.span_scope = _strlist("span-scope", cfg.span_scope)
    if "baseline" in table:
        raw_baseline = table["baseline"]
        if raw_baseline is not None and not isinstance(raw_baseline, str):
            raise ValueError("[tool.detlint] baseline must be a string")
        cfg.baseline = raw_baseline
    layers = table.get("layers", None)
    if layers is not None:
        if not isinstance(layers, dict):
            raise ValueError("[tool.detlint.layers] must be a table")
        cfg.layers = {
            str(pkg): [str(dep) for dep in deps] for pkg, deps in layers.items()
        }
    return cfg
