"""The linting engine: walk files, parse, run rules, apply suppressions.

Stdlib-only by design (``ast`` + ``tokenize``): the linter must never be
broken by the code it polices, so ``repro.lint`` sits outside every other
layer and imports nothing from them (ARCH201 applies to the linter too —
its allowed dependency list is empty).
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterable, List, Optional, Sequence

from repro.lint import pragmas
from repro.lint.config import Config
from repro.lint.finding import Finding
from repro.lint.rules import ModuleContext, Rule, all_rules

#: engine-level pseudo-rule: the file could not be parsed at all
SYNTAX_ERROR_CODE = "LINT001"


@dataclass
class Report:
    findings: List[Finding] = field(default_factory=list)
    files_checked: int = 0
    pragma_suppressed: int = 0


def collect_files(config: Config, paths: Sequence[str]) -> List[Path]:
    """Resolve CLI path arguments to a sorted, deduplicated list of .py
    files under the project root, honouring the exclude patterns."""
    out = []
    seen = set()
    for raw in paths:
        p = Path(raw)
        if not p.is_absolute():
            p = config.root / p
        if p.is_file():
            candidates: Iterable[Path] = [p]
        elif p.is_dir():
            candidates = sorted(p.rglob("*.py"))
        else:
            raise FileNotFoundError(f"no such file or directory: {raw}")
        for c in candidates:
            if c.suffix != ".py":
                continue
            try:
                rel = c.resolve().relative_to(config.root).as_posix()
            except ValueError:
                rel = c.as_posix()
            if config.is_excluded(rel) or rel in seen:
                continue
            seen.add(rel)
            out.append(c.resolve())
    return sorted(out)


def lint_source(
    source: str,
    *,
    rel_path: str,
    config: Config,
    rules: Optional[Sequence[Rule]] = None,
    path: Optional[Path] = None,
) -> tuple[List[Finding], int]:
    """Lint one in-memory source.  Returns (findings, pragma_suppressed)."""
    sup = pragmas.scan(source)
    if sup.skip_file:
        return [], 0
    try:
        tree = ast.parse(source, filename=rel_path)
    except (SyntaxError, ValueError) as exc:
        line = getattr(exc, "lineno", 1) or 1
        col = getattr(exc, "offset", 0) or 0
        return (
            [
                Finding(
                    path=rel_path,
                    line=line,
                    col=col,
                    code=SYNTAX_ERROR_CODE,
                    message=f"file does not parse: {exc.msg if isinstance(exc, SyntaxError) else exc}",
                )
            ],
            0,
        )
    ctx = ModuleContext(
        path=path or (config.root / rel_path),
        rel_path=rel_path,
        module=config.module_name(rel_path),
        tree=tree,
        source=source,
        strict=config.is_strict(rel_path),
        config=config,
    )
    findings: List[Finding] = []
    suppressed = 0
    for rule in rules if rules is not None else all_rules():
        if rule.project_scope:
            continue  # needs the cross-module index; repro.lint.flow runs it
        if not config.rule_enabled(rule.code) or not rule.applies(ctx):
            continue
        for f in rule.check(ctx):
            if sup.is_suppressed(f.line, f.code):
                suppressed += 1
            else:
                findings.append(f)
    findings.sort()
    return findings, suppressed


def run(
    config: Config,
    paths: Optional[Sequence[str]] = None,
    *,
    rules: Optional[Sequence[Rule]] = None,
) -> Report:
    """Lint ``paths`` (default: the configured ones).  Baseline application
    is the caller's concern — this returns every live finding."""
    report = Report()
    files = collect_files(config, paths or config.paths)
    for f in files:
        rel = f.relative_to(config.root).as_posix() if f.is_relative_to(config.root) else f.as_posix()
        source = f.read_text(encoding="utf-8")
        findings, suppressed = lint_source(
            source, rel_path=rel, config=config, rules=rules, path=f
        )
        report.findings.extend(findings)
        report.pragma_suppressed += suppressed
        report.files_checked += 1
    report.findings.sort()
    return report
