"""The unit of ``detlint`` output: one finding at one source location."""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation.

    Ordered by location so reports are stable regardless of rule execution
    order — the linter's own output must be deterministic.
    """

    path: str  # POSIX-style path relative to the project root
    line: int  # 1-based
    col: int  # 0-based, as in the ast module
    code: str  # e.g. "DET001"
    message: str

    def format(self) -> str:
        return f"{self.path}:{self.line}:{self.col}: {self.code} {self.message}"

    @property
    def baseline_key(self) -> str:
        """Baseline bucket: line numbers drift, so grandfathered findings
        are counted per ``(file, rule)``, not pinned to lines."""
        return f"{self.path}::{self.code}"

    def to_json(self) -> dict:
        return {
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "code": self.code,
            "message": self.message,
        }
