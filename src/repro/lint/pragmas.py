"""Suppression pragmas.

Three forms, all as comments:

* ``# detlint: ignore[CODE1,CODE2]`` — suppress those codes on this line;
  ``# detlint: ignore`` with no bracket suppresses every code on the line.
  Anything after ``--`` inside the comment is free-form justification.
* ``# detlint: skip-file`` — anywhere in the file: skip the whole file.
* ``# detlint: guarded(<lock>)`` — declares that the shared mutable state
  defined on this line is protected by the named lock (or discipline, e.g.
  ``guarded(import-time)`` for registries only written while modules load).
  Suppresses the RACE2xx family on the line *and* records the intended
  synchronisation vocabulary for the executor split.

Comments are found with :mod:`tokenize`, so pragma-looking text inside
string literals is never honoured (a plain regex over lines would be
fooled by docstrings — including this one).
"""

from __future__ import annotations

import io
import re
import tokenize
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Optional

_PRAGMA_RE = re.compile(
    r"#\s*detlint:\s*(?P<kind>skip-file|ignore|guarded)"
    r"(?:\[(?P<codes>[A-Za-z0-9_,\s]*)\])?"
    r"(?:\((?P<lock>[^)]*)\))?"
)


@dataclass
class Suppressions:
    """Parsed pragmas for one file."""

    skip_file: bool = False
    #: line -> frozenset of codes, or None meaning "all codes"
    by_line: Dict[int, Optional[FrozenSet[str]]] = field(default_factory=dict)
    #: line -> declared lock name from ``guarded(<lock>)``
    guarded: Dict[int, str] = field(default_factory=dict)

    def is_suppressed(self, line: int, code: str) -> bool:
        if self.skip_file:
            return True
        if code.startswith("RACE") and line in self.guarded:
            return True
        if line not in self.by_line:
            return False
        codes = self.by_line[line]
        return codes is None or code in codes

    def guard_of(self, line: int) -> Optional[str]:
        """The declared lock for shared state defined on ``line``."""
        return self.guarded.get(line)


def scan(source: str) -> Suppressions:
    """Collect pragmas from ``source``.  Tolerates tokenize errors (the
    engine reports a syntax error separately via the LINT001 finding)."""
    out = Suppressions()
    try:
        tokens = list(tokenize.generate_tokens(io.StringIO(source).readline))
    except (tokenize.TokenError, SyntaxError, IndentationError):
        return out
    for tok in tokens:
        if tok.type != tokenize.COMMENT:
            continue
        m = _PRAGMA_RE.search(tok.string)
        if m is None:
            continue
        if m.group("kind") == "skip-file":
            out.skip_file = True
            continue
        if m.group("kind") == "guarded":
            lock = (m.group("lock") or "").strip()
            out.guarded[tok.start[0]] = lock or "unnamed"
            continue
        raw = m.group("codes")
        line = tok.start[0]
        if raw is None:
            out.by_line[line] = None  # bare ignore: all codes
            continue
        codes = frozenset(c.strip().upper() for c in raw.split(",") if c.strip())
        if not codes:
            out.by_line[line] = None
        elif line in out.by_line and out.by_line[line] is not None:
            out.by_line[line] = out.by_line[line] | codes
        elif line not in out.by_line:
            out.by_line[line] = codes
    return out
