"""COST rules: the charged-I/O discipline, checked across modules.

The PDM cost model only means something if every byte that reaches a disk
travels through the charged interface (``machine.read_blocks`` /
``write_blocks`` / ``flush_writes`` and the striping layers above them).
The per-file PDM rules catch *syntactic* escapes (``.disks``,
``block_at``); these rules catch what syntax alone cannot:

* COST101 — a write that reaches storage internals through an alias
  (``blocks = machine.disks[0]._blocks`` … ``blocks[addr] = b``) or a
  mutator call on a storage-derived object (``machine.block_at(a).store``),
  bypassing the charge entirely;
* COST102 — a public dictionary operation with no cost span anywhere in
  its call closure, making its I/O invisible to attribution;
* COST103 — a batch operation that stages writes without the rollback
  contract (``try/except DiskFailure``), so one bad disk fails the whole
  batch instead of degrading per-key.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.finding import Finding
from repro.lint.flow import exprs
from repro.lint.flow.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    in_packages,
)
from repro.lint.rules.base import Rule, register

#: packages that ARE the charged implementation — escapes are their job
_CHARGED_IMPL = ["repro.pdm", "repro.lint"]

#: attribute reads that reach raw storage
_STORAGE_ATTRS = {"disks", "_blocks"}
#: uncharged audit calls that return live storage objects
_STORAGE_CALLS = {"block_at", "peek_at"}

_DICTIONARY_ROOT = "repro.core.interface.Dictionary"
_SPAN_FUNCTIONS = {"repro.pdm.spans.span"}
_PUBLIC_OPS = ("lookup", "insert", "delete",
               "batch_lookup", "batch_insert", "batch_delete")
_CORE_OPS = ("lookup", "insert", "delete")

#: staged-write surfaces a batch op must protect (syntactic, by attr name —
#: receiver types vary but these names are unique to the write path)
_STAGED_WRITE_ATTRS = {"write_buckets", "write_fields", "write_blocks"}
#: exception names that satisfy the rollback contract when caught
_FAULT_HANDLERS = {"DiskFailure", "IOFault", "Exception", "BaseException"}


def _touches_storage(node: ast.AST, tainted: Set[str]) -> bool:
    """True when the *spine* of ``node`` passes through raw storage or a
    storage-tainted local (see :func:`repro.lint.flow.exprs.spine`)."""
    for step in exprs.spine(node):
        if isinstance(step, ast.Attribute) and step.attr in _STORAGE_ATTRS:
            return True
        if (
            isinstance(step, ast.Call)
            and isinstance(step.func, ast.Attribute)
            and step.func.attr in _STORAGE_CALLS
        ):
            return True
        if isinstance(step, ast.Name) and step.id in tainted:
            return True
    return False


def _storage_tainted_locals(fn_node: ast.AST) -> Set[str]:
    """Names bound (directly on the spine) to storage-derived objects.

    ``blocks = machine.disks[0]._blocks`` taints ``blocks``;
    ``n = len(machine.disks)`` does not — ``len`` returns a fresh object.
    Iterated to a fixpoint so aliases of aliases are found.
    """
    tainted: Set[str] = set()
    for _ in range(10):
        before = len(tainted)
        for node in ast.walk(fn_node):
            targets: List[ast.AST] = []
            value: Optional[ast.AST] = None
            if isinstance(node, ast.Assign):
                targets, value = node.targets, node.value
            elif isinstance(node, ast.AnnAssign) and node.value is not None:
                targets, value = [node.target], node.value
            elif isinstance(node, (ast.For, ast.comprehension)):
                # for blk in machine.disks[0]._blocks.values(): ...
                targets, value = [node.target], node.iter
            if value is None or not _touches_storage(value, tainted):
                continue
            for tgt in targets:
                if isinstance(tgt, ast.Name):
                    tainted.add(tgt.id)
        if len(tainted) == before:
            break
    return tainted


@register
class UnchargedStorageEscapeRule(Rule):
    code = "COST101"
    name = "uncharged-storage-escape"
    summary = (
        "storage internals are mutated without going through the charged "
        "I/O interface"
    )
    rationale = (
        "Every reported I/O count assumes writes travel through "
        "machine.write_blocks / flush_writes (or the striping layers over "
        "them).  A write through an alias of .disks/._blocks or a "
        "store()/seal() on a block_at() result changes disk state with "
        "zero charged cost, silently falsifying theorem-level guarantees.  "
        "Route the write through the machine, or move the code into "
        "repro.pdm where it is the implementation."
    )
    project_scope = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        for info in project.strict_modules():
            if in_packages(info.module, _CHARGED_IMPL):
                continue
            for fn in info.functions.values():
                yield from self._check_function(info, fn)

    def _check_function(
        self, info: ModuleInfo, fn: FunctionInfo
    ) -> Iterator[Finding]:
        tainted = _storage_tainted_locals(fn.node)
        seen: Set[int] = set()
        for node in ast.walk(fn.node):
            receiver = None
            kind = ""
            if isinstance(node, (ast.Assign, ast.AugAssign)):
                targets = (
                    node.targets if isinstance(node, ast.Assign) else [node.target]
                )
                for tgt in targets:
                    if isinstance(tgt, (ast.Subscript, ast.Attribute)):
                        if _touches_storage(tgt.value, tainted):
                            receiver, kind = tgt, "write"
                            break
            elif isinstance(node, ast.Delete):
                for tgt in node.targets:
                    if isinstance(tgt, (ast.Subscript, ast.Attribute)):
                        if _touches_storage(tgt.value, tainted):
                            receiver, kind = tgt, "delete"
                            break
            elif (
                isinstance(node, ast.Call)
                and isinstance(node.func, ast.Attribute)
                and node.func.attr in exprs.MUTATOR_METHODS
                and _touches_storage(node.func.value, tainted)
            ):
                receiver, kind = node, f".{node.func.attr}()"
            if receiver is None or receiver.lineno in seen:
                continue
            seen.add(receiver.lineno)
            yield info.finding(
                receiver,
                self.code,
                f"uncharged {kind or 'mutation'} reaches storage internals "
                f"(via .disks/._blocks/block_at alias) in {fn.qualname}; "
                f"route it through machine.write_blocks so the I/O is "
                f"charged",
            )


def _opens_span(project: Project, fn: FunctionInfo) -> bool:
    info = project.modules[fn.module]
    var_types = None
    for node in ast.walk(fn.node):
        if not isinstance(node, (ast.With, ast.AsyncWith)):
            continue
        for item in node.items:
            expr = item.context_expr
            if not isinstance(expr, ast.Call):
                continue
            if var_types is None:
                var_types = project._local_var_types(fn)
            callee = project.resolve_call(fn, expr, var_types)
            if callee in _SPAN_FUNCTIONS:
                return True
            # unresolved but literally named span(...): accept — the
            # import may be aliased through a package __init__
            chain = info.imports.resolve_chain(expr.func)
            if chain is not None and chain.split(".")[-1] == "span":
                return True
    return False


def _concrete_dict_classes(
    project: Project, packages
) -> Iterator[Tuple[ModuleInfo, ClassInfo]]:
    root = project.resolve_export(_DICTIONARY_ROOT)
    if root is None:
        return
    for ci in project.classes.values():
        if ci.qualname == root or not project.is_subclass(ci.qualname, root):
            continue
        if not in_packages(ci.module, packages):
            continue
        concrete = True
        for op in _CORE_OPS:
            m = project.lookup_method(ci.qualname, op)
            if m is None or exprs.is_abstract(m.node):
                concrete = False
                break
        if concrete:
            yield project.modules[ci.module], ci


@register
class MissingCostSpanRule(Rule):
    code = "COST102"
    name = "missing-cost-span"
    summary = (
        "public dictionary operation opens no cost span anywhere in its "
        "call closure"
    )
    rationale = (
        "Spans are how a measured I/O count is attributed to the paper's "
        "phases; an uninstrumented operation contributes anonymous I/O "
        "that cannot be audited against the claimed bounds.  Every public "
        "op of a concrete Dictionary in span-scope must open "
        "repro.pdm.spans.span itself, reach a callee that does, or "
        "delegate through the Dictionary interface (whose concrete target "
        "is checked in its own class)."
    )
    project_scope = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        root = project.resolve_export(_DICTIONARY_ROOT)
        for info, ci in _concrete_dict_classes(
            project, project.config.span_scope
        ):
            for op in _PUBLIC_OPS:
                method = ci.methods.get(op)
                if method is None or exprs.is_abstract(method.node):
                    continue
                closure = project.reachable_from(method.qualname)
                satisfied = False
                for qual in closure:
                    target = project.functions.get(qual)
                    if target is None:
                        continue
                    if (
                        target.cls == root
                        and target.name in _PUBLIC_OPS
                        and exprs.is_abstract(target.node)
                    ):
                        satisfied = True  # polymorphic delegation: the
                        break  # concrete target is checked in its class
                    if _opens_span(project, target):
                        satisfied = True
                        break
                if not satisfied:
                    yield info.finding(
                        method.node,
                        self.code,
                        f"{ci.name}.{op}() opens no cost span in its call "
                        f"closure; wrap the operation in "
                        f"`with span(self.machine, \"{ci.name}.{op}\", "
                        f"op=\"{op}\")` so its I/O is attributable",
                    )


def _protected_calls(method_node: ast.AST) -> Set[int]:
    """Line numbers of calls lexically inside a ``try`` whose handlers
    catch a disk-fault type (the rollback contract)."""
    out: Set[int] = set()
    for node in ast.walk(method_node):
        if not isinstance(node, ast.Try):
            continue
        if not any(_handler_catches_faults(h) for h in node.handlers):
            continue
        for stmt in node.body:
            for sub in ast.walk(stmt):
                if isinstance(sub, ast.Call):
                    out.add(sub.lineno)
    return out


def _handler_catches_faults(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:
        return True  # bare except
    types = (
        handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    )
    for t in types:
        name = t.attr if isinstance(t, ast.Attribute) else getattr(t, "id", None)
        if name in _FAULT_HANDLERS:
            return True
    return False


@register
class UnprotectedStagedWriteRule(Rule):
    code = "COST103"
    name = "unprotected-staged-write"
    summary = (
        "batch operation stages writes without the DiskFailure rollback "
        "contract"
    )
    rationale = (
        "Batch operations stage per-key mutations and commit them with one "
        "write_buckets/write_blocks call.  Without try/except DiskFailure "
        "around the commit, a single failed disk aborts the whole batch "
        "mid-flight — violating the per-key outcome contract (successes "
        "become DegradedModeError, never a wholesale exception) and "
        "leaving callers unable to tell what was applied."
    )
    project_scope = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        for info, ci in _concrete_dict_classes(project, ["repro"]):
            for name, method in ci.methods.items():
                if not name.startswith("batch_"):
                    continue
                protected = _protected_calls(method.node)
                for node in ast.walk(method.node):
                    if (
                        isinstance(node, ast.Call)
                        and isinstance(node.func, ast.Attribute)
                        and node.func.attr in _STAGED_WRITE_ATTRS
                        and node.lineno not in protected
                    ):
                        yield info.finding(
                            node,
                            self.code,
                            f"{ci.name}.{name}() commits staged writes via "
                            f".{node.func.attr}() outside try/except "
                            f"DiskFailure; wrap the commit and convert "
                            f"per-key successes to DegradedModeError (the "
                            f"PR 4 rollback contract)",
                        )
