"""Expression-level helpers shared by the flow rules.

The flow rules reason about *object derivation*: whether an expression
denotes (a view of) the same underlying object as some root of interest —
a disk's block table, a module-level registry, a per-instance cache.  The
``spine`` of an expression is the chain of ``.attr`` / ``[index]`` /
``(...)`` steps down to its root name: mutating anything on the spine of
``machine.disks[0]._blocks`` mutates storage, while ``len(machine.disks)``
merely *mentions* storage — ``len``'s result is a fresh object.  Keeping
to the spine is what lets these rules flag real escapes without drowning
in false positives.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set

#: method names that mutate their receiver in place (containers + Block)
MUTATOR_METHODS: Set[str] = {
    "store",
    "seal",
    "append",
    "appendleft",
    "extend",
    "extendleft",
    "insert",
    "remove",
    "pop",
    "popleft",
    "popitem",
    "clear",
    "update",
    "setdefault",
    "add",
    "discard",
    "sort",
    "reverse",
    "move_to_end",
    "frombytes",
    "fromlist",
    "write",
    "writelines",
}

#: constructors producing plain mutable containers (shared-state hazards)
_MUTABLE_CTOR_SUFFIXES = (
    "dict",
    "list",
    "set",
    "collections.defaultdict",
    "collections.OrderedDict",
    "collections.Counter",
    "collections.deque",
    "collections.ChainMap",
    "bytearray",
    "array.array",
)


def spine(node: ast.AST) -> Iterator[ast.AST]:
    """The derivation chain of an expression, outermost first, ending at
    its root: ``a.b[0].c()`` yields Call, Attribute(c), Subscript,
    Attribute(b), Name(a).  Arguments and subscript indices are *not* on
    the spine — they denote different objects."""
    while True:
        yield node
        if isinstance(node, ast.Attribute):
            node = node.value
        elif isinstance(node, ast.Subscript):
            node = node.value
        elif isinstance(node, ast.Call):
            node = node.func
        elif isinstance(node, ast.Starred):
            node = node.value
        else:
            return


def spine_root(node: ast.AST) -> ast.AST:
    for n in spine(node):
        pass
    return n


def chain_str(node: ast.AST) -> Optional[str]:
    """Stable text for a pure attribute chain (``self._tuples``,
    ``_REGISTRY``); None when the chain goes through a call or subscript —
    those denote elements, not the container itself."""
    parts: List[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def mutated_containers(stmt: ast.AST) -> Iterator[ast.AST]:
    """Expressions denoting containers mutated by ``stmt`` (and its
    children): the ``X`` of ``X[k] = v``, ``X.attr = v``, ``X += ...`` on
    a subscript/attribute, ``del X[k]``, and ``X.append(...)``-style
    mutator calls.  Yields the receiver expression; the caller decides
    whether its spine is interesting."""
    for node in ast.walk(stmt):
        if isinstance(node, (ast.Assign, ast.AugAssign)):
            targets = node.targets if isinstance(node, ast.Assign) else [node.target]
            for tgt in targets:
                for t in _flatten_targets(tgt):
                    if isinstance(t, (ast.Subscript, ast.Attribute)):
                        yield t.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, (ast.Subscript, ast.Attribute)):
                yield node.target.value
        elif isinstance(node, ast.Delete):
            for tgt in node.targets:
                if isinstance(tgt, (ast.Subscript, ast.Attribute)):
                    yield tgt.value
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr in MUTATOR_METHODS
        ):
            yield node.func.value


def _flatten_targets(tgt: ast.AST) -> Iterator[ast.AST]:
    if isinstance(tgt, (ast.Tuple, ast.List)):
        for elt in tgt.elts:
            yield from _flatten_targets(elt)
    else:
        yield tgt


def is_mutable_container_expr(imports, node: ast.AST) -> bool:
    """True when ``node`` evaluates to a plain mutable container: a
    dict/list/set literal or comprehension, or a call to a known container
    constructor (``imports`` is the module's ImportMap, for resolving
    aliased constructors like ``OrderedDict``)."""
    if isinstance(
        node, (ast.Dict, ast.List, ast.Set, ast.ListComp, ast.SetComp, ast.DictComp)
    ):
        return True
    if isinstance(node, ast.Call):
        chain = imports.resolve_chain(node.func)
        if chain is None:
            return False
        return chain in _MUTABLE_CTOR_SUFFIXES or any(
            chain.endswith("." + s) or chain == s for s in _MUTABLE_CTOR_SUFFIXES
        )
    return False


def parent_map(root: ast.AST) -> dict:
    """Child node -> parent node, for walking enclosing expressions."""
    out = {}
    for node in ast.walk(root):
        for child in ast.iter_child_nodes(node):
            out[child] = node
    return out


def body_statements(fn_node: ast.AST) -> List[ast.stmt]:
    """Function body minus the docstring expression."""
    body = list(fn_node.body)
    if (
        body
        and isinstance(body[0], ast.Expr)
        and isinstance(body[0].value, ast.Constant)
        and isinstance(body[0].value.value, str)
    ):
        body = body[1:]
    return body


def is_abstract(fn_node: ast.AST) -> bool:
    """A body that is only ``raise NotImplementedError`` / ``...`` /
    ``pass`` (after the docstring) — the method is a protocol slot, not an
    implementation."""
    body = body_statements(fn_node)
    if not body:
        return True
    if len(body) != 1:
        return False
    stmt = body[0]
    if isinstance(stmt, ast.Pass):
        return True
    if isinstance(stmt, ast.Expr) and isinstance(stmt.value, ast.Constant):
        return stmt.value.value is Ellipsis
    if isinstance(stmt, ast.Raise):
        exc = stmt.exc
        if isinstance(exc, ast.Call):
            exc = exc.func
        return isinstance(exc, ast.Name) and exc.id == "NotImplementedError"
    return False
