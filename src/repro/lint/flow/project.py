"""Project-wide symbol table and call graph.

The per-file rules of :mod:`repro.lint.rules` see one module at a time;
the flow rules (COST1xx, RACE2xx, DET101) need to know what a dotted name
*is* across module boundaries: which class a ``self._neighborhoods``
attribute holds, which project function a call lands in, whether a class
is a :class:`repro.core.interface.Dictionary`.  This module builds that
index once per lint run, stdlib-only like the rest of the linter.

Resolution is deliberately conservative: anything that cannot be resolved
stays unresolved (``None``) and the rules treat it as unknown rather than
guessing — a linter that speculates produces false positives, and the
baseline ratchet makes false positives expensive.

What is resolved:

* imports (via :class:`repro.lint.rules.base.ImportMap`), chased through
  package re-exports (``from repro.pdm import InternalMemory`` finds the
  class defined in ``repro.pdm.memory``);
* module-level functions and classes, methods, class bases (giving a
  project-local MRO and ``is_subclass``);
* ``self.<attr>`` types, inferred from ``self.attr = ClassName(...)``
  constructor assignments anywhere in the class;
* local variable types from constructor calls and parameter annotations;
* call edges: ``caller qualname -> callee qualname`` for every call the
  above machinery can resolve, plus the reverse map.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from repro.lint import pragmas
from repro.lint.config import Config
from repro.lint.finding import Finding
from repro.lint.rules.base import ImportMap

_MAX_EXPORT_CHASE = 8


def in_packages(module: Optional[str], prefixes: Sequence[str]) -> bool:
    """True when ``module`` lies inside any of the dotted ``prefixes``."""
    if module is None:
        return False
    return any(module == p or module.startswith(p + ".") for p in prefixes)


@dataclass
class FunctionInfo:
    """One function or method definition."""

    qualname: str  # e.g. "repro.core.basic_dict.BasicDictionary.lookup"
    module: str
    name: str
    node: ast.AST  # FunctionDef | AsyncFunctionDef
    cls: Optional[str] = None  # owning class qualname, if a method

    @property
    def lineno(self) -> int:
        return self.node.lineno


@dataclass
class ClassInfo:
    """One class definition with its resolved base names."""

    qualname: str
    module: str
    name: str
    node: ast.ClassDef
    bases: List[str] = field(default_factory=list)  # dotted, best-effort
    methods: Dict[str, FunctionInfo] = field(default_factory=dict)
    #: class-level ``NAME = <expr>`` statements (shared across instances)
    class_assigns: List[Tuple[str, ast.stmt, ast.expr]] = field(
        default_factory=list
    )
    #: attr name -> class qualname, from ``self.attr = ClassName(...)``
    #: constructor calls and ``self.attr: ClassName`` annotations
    attr_types: Dict[str, str] = field(default_factory=dict)
    #: attr name -> element class qualname, from ``self.attr: List[C]``
    attr_elem_types: Dict[str, str] = field(default_factory=dict)


@dataclass
class ModuleInfo:
    """Everything the flow rules may inspect about one module."""

    module: str
    rel_path: str
    tree: ast.Module
    source: str
    strict: bool
    imports: ImportMap
    suppressions: pragmas.Suppressions
    functions: Dict[str, FunctionInfo] = field(default_factory=dict)
    classes: Dict[str, ClassInfo] = field(default_factory=dict)
    #: module-level ``NAME = <expr>`` statements
    global_assigns: List[Tuple[str, ast.stmt, ast.expr]] = field(
        default_factory=list
    )

    def finding(self, node: ast.AST, code: str, message: str) -> Finding:
        return Finding(
            path=self.rel_path,
            line=getattr(node, "lineno", 1),
            col=getattr(node, "col_offset", 0),
            code=code,
            message=message,
        )


def _assign_names(stmt: ast.stmt) -> List[Tuple[str, ast.expr]]:
    """``NAME = value`` pairs of a simple (Ann)Assign statement."""
    out: List[Tuple[str, ast.expr]] = []
    if isinstance(stmt, ast.Assign):
        for tgt in stmt.targets:
            if isinstance(tgt, ast.Name):
                out.append((tgt.id, stmt.value))
    elif isinstance(stmt, ast.AnnAssign) and stmt.value is not None:
        if isinstance(stmt.target, ast.Name):
            out.append((stmt.target.id, stmt.value))
    return out


class Project:
    """The cross-module index the flow rules run against."""

    def __init__(self, config: Config):
        self.config = config
        self.modules: Dict[str, ModuleInfo] = {}
        self.functions: Dict[str, FunctionInfo] = {}
        self.classes: Dict[str, ClassInfo] = {}
        #: caller qualname -> set of callee qualnames (resolved calls only)
        self.calls: Dict[str, Set[str]] = {}
        self.callers: Dict[str, Set[str]] = {}

    # -- construction -------------------------------------------------------

    @classmethod
    def build(
        cls,
        config: Config,
        sources: Iterable[Tuple[str, str]],
    ) -> "Project":
        """Index ``sources`` — ``(rel_path, source)`` pairs.  Files that do
        not parse, or lie outside a src root, are skipped (the per-file
        engine reports LINT001 for the former)."""
        project = cls(config)
        for rel_path, source in sources:
            module = config.module_name(rel_path)
            if module is None:
                continue
            sup = pragmas.scan(source)
            if sup.skip_file:
                continue
            try:
                tree = ast.parse(source, filename=rel_path)
            except (SyntaxError, ValueError):
                continue
            info = ModuleInfo(
                module=module,
                rel_path=rel_path,
                tree=tree,
                source=source,
                strict=config.is_strict(rel_path),
                imports=ImportMap.collect(tree),
                suppressions=sup,
            )
            project.modules[module] = info
            project._index_module(info)
        project._resolve_bases()
        project._infer_attr_types()
        project._link_calls()
        return project

    def _index_module(self, info: ModuleInfo) -> None:
        for stmt in info.tree.body:
            if isinstance(stmt, (ast.FunctionDef, ast.AsyncFunctionDef)):
                fn = FunctionInfo(
                    qualname=f"{info.module}.{stmt.name}",
                    module=info.module,
                    name=stmt.name,
                    node=stmt,
                )
                info.functions[fn.qualname] = fn
                self.functions[fn.qualname] = fn
            elif isinstance(stmt, ast.ClassDef):
                ci = ClassInfo(
                    qualname=f"{info.module}.{stmt.name}",
                    module=info.module,
                    name=stmt.name,
                    node=stmt,
                )
                for sub in stmt.body:
                    if isinstance(sub, (ast.FunctionDef, ast.AsyncFunctionDef)):
                        fn = FunctionInfo(
                            qualname=f"{ci.qualname}.{sub.name}",
                            module=info.module,
                            name=sub.name,
                            node=sub,
                            cls=ci.qualname,
                        )
                        ci.methods[sub.name] = fn
                        info.functions[fn.qualname] = fn
                        self.functions[fn.qualname] = fn
                    else:
                        for name, value in _assign_names(sub):
                            ci.class_assigns.append((name, sub, value))
                info.classes[ci.qualname] = ci
                self.classes[ci.qualname] = ci
            else:
                for name, value in _assign_names(stmt):
                    info.global_assigns.append((name, stmt, value))

    # -- name resolution ----------------------------------------------------

    def resolve_export(self, dotted: str) -> Optional[str]:
        """Canonical qualname of ``dotted``, chasing package re-exports.

        ``repro.pdm.InternalMemory`` -> ``repro.pdm.memory.InternalMemory``
        when the ``repro.pdm`` package ``__init__`` re-imports it.  Returns
        the input unchanged when it already names a project entity, and
        ``None`` when nothing in the project matches.
        """
        seen: Set[str] = set()
        for _ in range(_MAX_EXPORT_CHASE):
            if dotted in seen:
                return None
            seen.add(dotted)
            if dotted in self.functions or dotted in self.classes:
                return dotted
            # method of a project class?
            head, _, leaf = dotted.rpartition(".")
            if head in self.classes:
                method = self.lookup_method(head, leaf)
                if method is not None:
                    return method.qualname
                return None
            # find the longest module prefix
            parts = dotted.split(".")
            mod = None
            for i in range(len(parts) - 1, 0, -1):
                candidate = ".".join(parts[:i])
                if candidate in self.modules:
                    mod = candidate
                    rest = parts[i:]
                    break
            if mod is None:
                return None
            info = self.modules[mod]
            name = rest[0]
            local = f"{mod}.{name}"
            if local in info.functions or local in info.classes:
                return self.resolve_export(".".join([local] + rest[1:]))
            if name in info.imports.from_imports:
                src, orig = info.imports.from_imports[name]
                dotted = ".".join([src, orig] + rest[1:])
                continue
            if name in info.imports.module_aliases:
                dotted = ".".join(
                    [info.imports.module_aliases[name]] + rest[1:]
                )
                continue
            return None
        return None

    def resolve_chain(
        self, info: ModuleInfo, node: ast.AST
    ) -> Optional[str]:
        """Dotted path of an attribute/name chain seen from ``info``, with
        the root resolved through its imports *and* module-local
        definitions, then chased through re-exports."""
        chain = info.imports.resolve_chain(node)
        if chain is None:
            return None
        root = chain.split(".", 1)[0]
        if (
            root not in info.imports.module_aliases
            and root not in info.imports.from_imports
        ):
            local = f"{info.module}.{root}"
            if local in info.functions or local in info.classes:
                chain = f"{info.module}.{chain}"
        return self.resolve_export(chain)

    # -- class machinery ----------------------------------------------------

    def _resolve_bases(self) -> None:
        for ci in self.classes.values():
            info = self.modules[ci.module]
            for base in ci.node.bases:
                chain = info.imports.resolve_chain(base)
                if chain is None:
                    continue
                root = chain.split(".", 1)[0]
                if (
                    root not in info.imports.module_aliases
                    and root not in info.imports.from_imports
                ):
                    local_chain = f"{ci.module}.{chain}"
                    resolved = self.resolve_export(local_chain)
                else:
                    resolved = self.resolve_export(chain)
                ci.bases.append(resolved if resolved is not None else chain)

    def mro(self, cls_qualname: str) -> List[str]:
        """Project-local linearisation: the class, then its bases depth-
        first (good enough for method lookup — the repo has no diamonds)."""
        out: List[str] = []
        stack = [cls_qualname]
        while stack:
            cur = stack.pop(0)
            if cur in out or cur not in self.classes:
                continue
            out.append(cur)
            stack.extend(self.classes[cur].bases)
        return out

    def is_subclass(self, cls_qualname: str, base_qualname: str) -> bool:
        return base_qualname in self.mro(cls_qualname)

    def lookup_method(
        self, cls_qualname: str, name: str
    ) -> Optional[FunctionInfo]:
        for cur in self.mro(cls_qualname):
            method = self.classes[cur].methods.get(name)
            if method is not None:
                return method
        return None

    def _resolve_annotation(
        self, info: ModuleInfo, ann: ast.AST
    ) -> Tuple[Optional[str], Optional[str]]:
        """``(direct, element)`` class qualnames of a type annotation.

        ``C`` -> (C, None); ``Optional[C]`` -> (C, None);
        ``List[C]`` / ``Sequence[C]`` / ``Tuple[C, ...]`` -> (None, C).
        Strings (forward refs) are parsed; anything unresolvable is None.
        """
        if isinstance(ann, ast.Constant) and isinstance(ann.value, str):
            try:
                ann = ast.parse(ann.value, mode="eval").body
            except SyntaxError:
                return None, None
        if isinstance(ann, (ast.Name, ast.Attribute)):
            direct = self.resolve_chain(info, ann)
            return (direct, None) if direct in self.classes else (None, None)
        if isinstance(ann, ast.Subscript):
            outer = ann.value
            outer_name = (
                outer.id if isinstance(outer, ast.Name) else getattr(outer, "attr", "")
            )
            inner = ann.slice
            if isinstance(inner, ast.Tuple) and inner.elts:
                inner = inner.elts[0]
            if outer_name == "Optional" or outer_name == "Union":
                return self._resolve_annotation(info, inner)[0], None
            if outer_name in {"List", "Sequence", "Iterable", "Iterator",
                              "Tuple", "Set", "FrozenSet", "Collection",
                              "list", "tuple", "set", "frozenset"}:
                return None, self._resolve_annotation(info, inner)[0]
        return None, None

    def _infer_attr_types(self) -> None:
        """Fix ``self.attr`` types for receiver resolution, from (in
        priority order) ``self.attr: C`` annotations, ``self.attr =
        ClassName(...)`` constructor calls, and ``self.attr = param`` where
        the parameter is annotated."""
        for ci in self.classes.values():
            info = self.modules[ci.module]
            for method in ci.methods.values():
                param_types: Dict[str, str] = {}
                margs = method.node.args
                for a in (*margs.posonlyargs, *margs.args, *margs.kwonlyargs):
                    if a.annotation is not None:
                        direct, _elem = self._resolve_annotation(info, a.annotation)
                        if direct is not None:
                            param_types[a.arg] = direct
                for node in ast.walk(method.node):
                    attr: Optional[str] = None
                    direct: Optional[str] = None
                    elem: Optional[str] = None
                    annotated = False
                    if isinstance(node, ast.AnnAssign):
                        tgt = node.target
                        if self._is_self_attr(tgt):
                            attr = tgt.attr  # type: ignore[union-attr]
                            direct, elem = self._resolve_annotation(
                                info, node.annotation
                            )
                            annotated = True
                    elif isinstance(node, ast.Assign):
                        for tgt in node.targets:
                            if self._is_self_attr(tgt):
                                attr = tgt.attr  # type: ignore[union-attr]
                                break
                        if attr is not None:
                            if isinstance(node.value, ast.Call):
                                cls = self.resolve_chain(info, node.value.func)
                                if cls in self.classes:
                                    direct = cls
                            elif isinstance(node.value, ast.Name):
                                direct = param_types.get(node.value.id)
                    if attr is None:
                        continue
                    # annotations are the declared contract: let them win
                    if direct is not None and (
                        annotated or attr not in ci.attr_types
                    ):
                        ci.attr_types[attr] = direct
                    if elem is not None and (
                        annotated or attr not in ci.attr_elem_types
                    ):
                        ci.attr_elem_types[attr] = elem

    @staticmethod
    def _is_self_attr(node: ast.AST) -> bool:
        return (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
        )

    # -- call graph ---------------------------------------------------------

    def _local_var_types(self, fn: FunctionInfo) -> Dict[str, str]:
        """Variable name -> class qualname, from parameter annotations and
        constructor-call assignments (first binding wins)."""
        info = self.modules[fn.module]
        out: Dict[str, str] = {}
        node = fn.node
        args = node.args
        for a in (*args.posonlyargs, *args.args, *args.kwonlyargs):
            if a.annotation is not None:
                direct, _elem = self._resolve_annotation(info, a.annotation)
                if direct is not None:
                    out[a.arg] = direct
        cls_info = self.classes.get(fn.cls) if fn.cls is not None else None
        for sub in ast.walk(node):
            if isinstance(sub, ast.Assign) and isinstance(sub.value, ast.Call):
                cls = self.resolve_chain(info, sub.value.func)
                if cls in self.classes:
                    for tgt in sub.targets:
                        if isinstance(tgt, ast.Name) and tgt.id not in out:
                            out[tgt.id] = cls
            elif isinstance(sub, (ast.For, ast.comprehension)):
                # ``for x in self.attr`` types x from the attr's element type
                tgt, it = sub.target, sub.iter
                if (
                    cls_info is not None
                    and isinstance(tgt, ast.Name)
                    and Project._is_self_attr(it)
                    and tgt.id not in out
                ):
                    elem = cls_info.attr_elem_types.get(it.attr)  # type: ignore[union-attr]
                    if elem is not None:
                        out[tgt.id] = elem
        return out

    def resolve_call(
        self, fn: FunctionInfo, call: ast.Call, var_types: Optional[Dict[str, str]] = None
    ) -> Optional[str]:
        """Callee qualname of ``call`` as seen from inside ``fn``.

        Resolves module-level names, imported names, ``self.method``,
        ``self.attr.method`` via inferred attribute types, and
        ``var.method`` via constructor/annotation types.  A resolved class
        name means "constructor of that class"."""
        info = self.modules[fn.module]
        func = call.func
        if isinstance(func, ast.Name):
            return self.resolve_chain(info, func)
        if not isinstance(func, ast.Attribute):
            return None
        # receiver-based resolution: self.m, self.attr.m, var.m
        recv = func.value
        method = func.attr
        cls: Optional[str] = None
        if isinstance(recv, ast.Name):
            if recv.id == "self" and fn.cls is not None:
                cls = fn.cls
            elif var_types is not None and recv.id in var_types:
                cls = var_types[recv.id]
        elif (
            isinstance(recv, ast.Attribute)
            and isinstance(recv.value, ast.Name)
            and recv.value.id == "self"
            and fn.cls is not None
        ):
            cls = self.classes[fn.cls].attr_types.get(recv.attr)
        if cls is not None:
            target = self.lookup_method(cls, method)
            if target is not None:
                return target.qualname
            return None
        # plain dotted chain (module.func, Class.method, import alias)
        return self.resolve_chain(info, func)

    def _link_calls(self) -> None:
        for fn in self.functions.values():
            var_types = self._local_var_types(fn)
            edges = self.calls.setdefault(fn.qualname, set())
            for node in ast.walk(fn.node):
                if not isinstance(node, ast.Call):
                    continue
                callee = self.resolve_call(fn, node, var_types)
                if callee is None:
                    continue
                if callee in self.classes:
                    init = self.lookup_method(callee, "__init__")
                    callee = init.qualname if init is not None else callee
                edges.add(callee)
                self.callers.setdefault(callee, set()).add(fn.qualname)

    def reachable_from(self, qualname: str, *, limit: int = 10000) -> Set[str]:
        """Transitive callee closure of one function (itself included)."""
        out: Set[str] = set()
        stack = [qualname]
        while stack and len(out) < limit:
            cur = stack.pop()
            if cur in out:
                continue
            out.add(cur)
            stack.extend(self.calls.get(cur, ()))
        return out

    # -- findings plumbing --------------------------------------------------

    def strict_modules(self) -> List[ModuleInfo]:
        return [
            m for m in sorted(self.modules.values(), key=lambda m: m.module)
            if m.strict
        ]
