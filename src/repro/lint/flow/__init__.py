"""``repro.lint.flow``: cross-module analysis over the whole project.

The per-file engine (:mod:`repro.lint.engine`) sees one module at a time;
the rules here (COST1xx, RACE2xx, DET101) need a project-wide symbol
table and call graph — built by :class:`repro.lint.flow.project.Project`
— to follow values through aliases, helper calls, and delegation.

:func:`run_flow` is the driver the CLI calls after the per-file pass.  It
indexes *every* strict file under the configured src roots (the analysis
is only sound over the whole project: a caller outside the requested
paths may reach state inside them), runs each registered
``project_scope`` rule, applies the same pragma machinery as the engine,
and — when the caller restricted the paths — filters the findings to the
requested files so CLI invocations on a subdirectory stay scoped.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Tuple

from repro.lint import pragmas
from repro.lint.config import Config
from repro.lint.finding import Finding
from repro.lint.flow.project import Project

__all__ = ["Project", "run_flow", "check_sources"]


def _project_rules(config: Config, select: Optional[Sequence[str]] = None):
    # imported lazily: repro.lint.rules imports the flow rule modules,
    # which import this package — a top-level import would see the rules
    # package half-initialised.
    from repro.lint.rules import all_rules

    out = []
    for rule in all_rules():
        if not rule.project_scope:
            continue
        if select is not None and rule.code not in select:
            continue
        if not config.rule_enabled(rule.code):
            continue
        out.append(rule)
    return out


def check_sources(
    config: Config,
    sources: Iterable[Tuple[str, str]],
    select: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], int]:
    """Run the flow rules over in-memory ``(rel_path, source)`` pairs.

    Returns ``(findings, pragma_suppressed)``.  This is the testable core:
    :func:`run_flow` feeds it files, the golden-fixture tests feed it
    strings.
    """
    project = Project.build(config, sources)
    findings: List[Finding] = []
    suppressed = 0
    for rule in _project_rules(config, select):
        for f in rule.check_project(project):
            info = project.modules.get(config.module_name(f.path) or "")
            sup = info.suppressions if info is not None else pragmas.Suppressions()
            if sup.is_suppressed(f.line, f.code):
                suppressed += 1
            else:
                findings.append(f)
    findings.sort()
    return findings, suppressed


def run_flow(
    config: Config,
    paths: Optional[Sequence[str]] = None,
) -> Tuple[List[Finding], int, int]:
    """Run the flow pass.  Returns (findings, files_indexed, suppressed).

    The project index always covers every non-excluded module under the
    configured src roots; ``paths`` only filters which files' findings are
    *reported*.
    """
    from repro.lint.engine import collect_files  # lazy: see _project_rules

    universe = collect_files(config, config.src_roots)
    sources: List[Tuple[str, str]] = []
    for f in universe:
        rel = (
            f.relative_to(config.root).as_posix()
            if f.is_relative_to(config.root)
            else f.as_posix()
        )
        if config.module_name(rel) is None:
            continue
        sources.append((rel, f.read_text(encoding="utf-8")))

    findings, suppressed = check_sources(config, sources)

    if paths is not None:
        requested = set()
        for f in collect_files(config, paths):
            rel = (
                f.relative_to(config.root).as_posix()
                if f.is_relative_to(config.root)
                else f.as_posix()
            )
            requested.add(rel)
        findings = [f for f in findings if f.path in requested]
    return findings, len(sources), suppressed
