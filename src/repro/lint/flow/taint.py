"""DET101: flow-sensitive taint from entropy sources to deterministic code.

The per-file DET rules flag *direct* calls to nondeterministic sources;
this rule follows the value.  Three leaks they cannot see:

* a source call hidden behind an alias (``now = time.monotonic`` …
  ``now()`` resolves to nothing the per-file rules recognise);
* a helper whose internal source call was pragma-excused ("timing is fine
  *here*") being called from code where the excuse does not hold — the
  taint survives the pragma and must be re-justified at every call site;
* ``id()`` and iteration over a variable *bound* to a set, both of which
  vary across processes without any call the per-file rules match.

Sanitizers: the ``repro.bits.mix`` derivations (``splitmix64``,
``derive``, ``stable_hash``).  Mixing entropy still yields entropy, so
these are not magic cleansers — they sanitize in the sense this rule
cares about: a value that flows through a mix call is *declared* as a
seed derivation at a single auditable point, which is the repository's
convention for every intentional entropy intake.  The rule therefore
reports only the flows that bypass that convention.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.lint.finding import Finding
from repro.lint.flow import exprs
from repro.lint.flow.project import FunctionInfo, ModuleInfo, Project
from repro.lint.rules.base import Rule, register
from repro.lint.rules.det import _ENTROPY, _WALL_CLOCK, _is_set_producing

_SANITIZERS = {
    "repro.bits.mix.splitmix64",
    "repro.bits.mix.derive",
    "repro.bits.mix.stable_hash",
}

#: chains whose call result is nondeterministic across runs/processes
_SOURCE_CHAINS = frozenset(_WALL_CLOCK) | frozenset(_ENTROPY) | {
    "uuid.uuid1",
    "uuid.uuid4",
}


def _is_source_chain(chain: Optional[str]) -> bool:
    if chain is None:
        return False
    if chain in _SOURCE_CHAINS:
        return True
    if chain.startswith("secrets."):
        return True
    if chain.startswith("random.") and "." not in chain[len("random.") :]:
        # random.Random is DET001's business: seeded it is deterministic,
        # unseeded the per-file rule flags the construction itself.
        return chain != "random.Random"
    return chain == "id"


def _source_aliases(info: ModuleInfo, fn_node: Optional[ast.AST]) -> Set[str]:
    """Names bound to a source *function object* (``now = time.monotonic``)
    at module level and, when ``fn_node`` is given, function-locally."""
    out: Set[str] = set()
    for name, _stmt, value in info.global_assigns:
        if isinstance(value, (ast.Name, ast.Attribute)):
            if _is_source_chain(info.imports.resolve_chain(value)):
                out.add(name)
    if fn_node is not None:
        for node in ast.walk(fn_node):
            if isinstance(node, ast.Assign) and isinstance(
                node.value, (ast.Name, ast.Attribute)
            ):
                chain = info.imports.resolve_chain(node.value)
                is_src = _is_source_chain(chain)
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        if is_src:
                            out.add(tgt.id)
                        else:
                            out.discard(tgt.id)  # rebound to something clean
    return out


class _TaintScan:
    """One pass over a function: find tainted expressions and whether the
    function's return value is tainted."""

    def __init__(
        self,
        project: Project,
        info: ModuleInfo,
        fn: FunctionInfo,
        tainted_functions: Dict[str, str],
    ):
        self.project = project
        self.info = info
        self.fn = fn
        self.tainted_functions = tainted_functions  # qualname -> source desc
        self.aliases = _source_aliases(info, fn.node)
        self.var_types = project._local_var_types(fn)
        self.parents = exprs.parent_map(fn.node)
        self.tainted_locals: Dict[str, str] = {}
        self.returns_tainted: Optional[str] = None
        #: (node, description) pairs of taint introductions in this fn
        self.taints: List = []
        self._run()

    # -- classification ------------------------------------------------

    def _call_taint(self, node: ast.Call) -> Optional[str]:
        """Why this call's result is tainted, or None."""
        func = node.func
        if isinstance(func, ast.Name) and func.id in self.aliases:
            return f"alias of a nondeterministic source ({func.id})"
        chain = self.info.imports.resolve_chain(func)
        if _is_source_chain(chain):
            return f"{chain}()"
        callee = self.project.resolve_call(self.fn, node, self.var_types)
        if callee in self.tainted_functions:
            return (
                f"{callee.rsplit('.', 1)[-1]}() returns a value derived "
                f"from {self.tainted_functions[callee]}"
            )
        return None

    def _expr_taint(self, node: ast.AST) -> Optional[str]:
        """Why the object this expression evaluates to is tainted."""
        for step in exprs.spine(node):
            if isinstance(step, ast.Call):
                why = self._call_taint(step)
                if why is not None:
                    return why
            elif isinstance(step, ast.Name):
                if step.id in self.tainted_locals:
                    return self.tainted_locals[step.id]
        return None

    def _is_sanitized(self, node: ast.AST) -> bool:
        """The value flows directly into a repro.bits.mix derivation."""
        cur = node
        while cur in self.parents:
            parent = self.parents[cur]
            if isinstance(parent, ast.Call) and cur is not parent.func:
                chain = self.info.imports.resolve_chain(parent.func)
                if chain is not None and (
                    chain in _SANITIZERS
                    or self.project.resolve_export(chain) in _SANITIZERS
                ):
                    return True
            if isinstance(parent, (ast.stmt, ast.FunctionDef, ast.Lambda)):
                return False
            cur = parent
        return False

    # -- the pass ------------------------------------------------------

    def _run(self) -> None:
        for node in ast.walk(self.fn.node):
            if isinstance(node, ast.Assign):
                why = self._expr_taint(node.value)
                for tgt in node.targets:
                    if isinstance(tgt, ast.Name):
                        if why is not None and not self._is_sanitized(node.value):
                            self.tainted_locals[tgt.id] = why
                        else:
                            self.tainted_locals.pop(tgt.id, None)
            elif isinstance(node, ast.Call):
                why = self._call_taint(node)
                if why is not None and not self._is_sanitized(node):
                    self.taints.append((node, why))
            elif isinstance(node, ast.Return) and node.value is not None:
                why = self._expr_taint(node.value)
                if why is not None and not self._is_sanitized(node.value):
                    self.returns_tainted = why


def _set_typed_locals(fn_node: ast.AST) -> Set[str]:
    """Names every binding of which is visibly set-producing."""
    set_bound: Set[str] = set()
    other_bound: Set[str] = set()
    for node in ast.walk(fn_node):
        if isinstance(node, ast.Assign):
            for tgt in node.targets:
                if isinstance(tgt, ast.Name):
                    if _is_set_producing(node.value):
                        set_bound.add(tgt.id)
                    else:
                        other_bound.add(tgt.id)
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            if isinstance(node.target, ast.Name):
                if _is_set_producing(node.value):
                    set_bound.add(node.target.id)
                else:
                    other_bound.add(node.target.id)
        elif isinstance(node, ast.AugAssign):
            if isinstance(node.target, ast.Name):
                other_bound.add(node.target.id)  # conservative
    return set_bound - other_bound


@register
class TaintedValueFlowRule(Rule):
    code = "DET101"
    name = "tainted-value-flow"
    summary = (
        "a nondeterministic value flows into deterministic code (via "
        "alias, excused helper, id(), or set-order iteration)"
    )
    rationale = (
        "A pragma on a source call excuses the *call site*, not the "
        "value: code that consumes the helper's result is still "
        "nondeterministic, and aliases/id()/set iteration produce entropy "
        "with no syntactic source at all.  Every flow must end in a "
        "repro.bits.mix derivation (making the dependence explicit and "
        "auditable) or carry its own justification pragma."
    )
    project_scope = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        tainted_functions = self._tainted_functions(project)
        for info in project.strict_modules():
            for fn in info.functions.values():
                scan = _TaintScan(project, info, fn, tainted_functions)
                for node, why in scan.taints:
                    # direct source calls are the per-file rules' findings
                    # (DET004/005...); report only the flows they miss
                    if self._is_per_file_territory(info, node):
                        continue
                    yield info.finding(
                        node,
                        self.code,
                        f"value derived from {why} flows into "
                        f"{fn.qualname} unsanitized; pass it through "
                        f"repro.bits.mix (splitmix64/derive/stable_hash) "
                        f"or justify with a pragma",
                    )
                yield from self._check_set_iteration(info, fn)

    def _tainted_functions(self, project: Project) -> Dict[str, str]:
        """qualname -> source description, for project functions whose
        return value derives from a source, to a fixpoint so taint crosses
        helper chains."""
        out: Dict[str, str] = {}
        for _ in range(6):
            changed = False
            for info in project.modules.values():
                for fn in info.functions.values():
                    if fn.qualname in out:
                        continue
                    scan = _TaintScan(project, info, fn, out)
                    if scan.returns_tainted is not None:
                        out[fn.qualname] = scan.returns_tainted
                        changed = True
            if not changed:
                break
        return out

    def _is_per_file_territory(
        self, info: ModuleInfo, node: ast.Call
    ) -> bool:
        """True when a per-file DET rule already covers this exact call —
        an un-aliased direct source call.  If it was pragma-suppressed
        there, the *flow* consequences surface at call sites of the
        enclosing function instead, not as a duplicate here."""
        chain = info.imports.resolve_chain(node.func)
        if chain is None or chain == "id":
            return False  # aliases and id() are this rule's territory
        return _is_source_chain(chain)

    #: reducers whose result cannot depend on iteration order
    _ORDER_FREE = {"any", "all", "sum", "min", "max", "len",
                   "sorted", "set", "frozenset"}

    def _check_set_iteration(
        self, info: ModuleInfo, fn: FunctionInfo
    ) -> Iterator[Finding]:
        set_locals = _set_typed_locals(fn.node)
        if not set_locals:
            return
        parents = exprs.parent_map(fn.node)
        for node in ast.walk(fn.node):
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, ast.comprehension):
                owner = parents.get(node)
                reducer = parents.get(owner) if owner is not None else None
                if (
                    isinstance(owner, (ast.GeneratorExp, ast.SetComp))
                    and isinstance(reducer, ast.Call)
                    and isinstance(reducer.func, ast.Name)
                    and reducer.func.id in self._ORDER_FREE
                ):
                    continue  # e.g. any(x in s for ...): order-free
                iters.append(node.iter)
            for it in iters:
                if isinstance(it, ast.Name) and it.id in set_locals:
                    yield info.finding(
                        it,
                        self.code,
                        f"`{it.id}` holds a set; iterating it in "
                        f"{fn.qualname} leaks hash order into the result "
                        f"— iterate sorted({it.id}) or dedup with "
                        f"dict.fromkeys",
                    )
