"""RACE rules: shared mutable state ahead of the pluggable-executor split.

The roadmap's next step runs dictionary operations on thread-per-disk and
process-pool executors.  The analysis layer proves the *algorithms* are
conflict-free (disjoint footprints); these rules police the *Python
objects*: any mutable state reachable from two executor lanes must either
be confined, redesigned, or carry an explicit synchronisation declaration
— the ``# detlint: guarded(<lock>)`` pragma on its definition line, which
doubles as the inventory the executor work will implement against.

* RACE201 — module- or class-level mutable containers mutated at runtime
  (interpreter-wide state: every thread in the process shares it);
* RACE202 — a per-instance cache with a check-then-act access pattern
  (read miss → compute → write) and no declared guard;
* RACE203 — mutating a container while iterating it (corrupts under
  concurrency, RuntimeError at best without it).
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set, Tuple

from repro.lint.finding import Finding
from repro.lint.flow import exprs
from repro.lint.flow.project import (
    ClassInfo,
    FunctionInfo,
    ModuleInfo,
    Project,
    in_packages,
)
from repro.lint.rules.base import Rule, register

#: read accessors that, followed by a write in the same closure, form the
#: check-then-act shape RACE202 looks for
_READ_METHODS = {"get", "keys", "values", "items", "setdefault"}


def _function_mutates_name(fn_node: ast.AST, name: str) -> Optional[ast.AST]:
    """A node in ``fn_node`` that mutates global ``name`` at runtime, or
    None.  Functions that bind ``name`` locally (param / bare assignment
    without ``global``) are skipped — they shadow the global."""
    has_global = any(
        isinstance(n, ast.Global) and name in n.names
        for n in ast.walk(fn_node)
    )
    if not has_global:
        args = fn_node.args
        params = {
            a.arg
            for a in (
                *args.posonlyargs, *args.args, *args.kwonlyargs,
                *( [args.vararg] if args.vararg else [] ),
                *( [args.kwarg] if args.kwarg else [] ),
            )
        }
        if name in params:
            return None
        for n in ast.walk(fn_node):
            if isinstance(n, (ast.Assign, ast.AnnAssign, ast.AugAssign)):
                targets = (
                    n.targets if isinstance(n, ast.Assign) else [n.target]
                )
                for tgt in targets:
                    if isinstance(tgt, ast.Name) and tgt.id == name:
                        return None  # local rebind: shadows the global
    for stmt in exprs.body_statements(fn_node):
        for container in exprs.mutated_containers(stmt):
            if exprs.chain_str(container) == name:
                return container
    if has_global:
        for n in ast.walk(fn_node):
            if isinstance(n, (ast.Assign, ast.AugAssign)):
                targets = (
                    n.targets if isinstance(n, ast.Assign) else [n.target]
                )
                for tgt in targets:
                    if isinstance(tgt, ast.Name) and tgt.id == name:
                        return tgt
    return None


@register
class UnguardedModuleStateRule(Rule):
    code = "RACE201"
    name = "unguarded-module-state"
    summary = (
        "module/class-level mutable container is mutated at runtime "
        "without a declared guard"
    )
    rationale = (
        "A module-level dict/list/set (or a mutable class attribute) is "
        "one object per interpreter: under the planned executors every "
        "worker thread mutates the same instance, and the determinism "
        "argument — same inputs, same layout — dies with the first lost "
        "update.  Make the state per-instance, or declare its discipline "
        "with `# detlint: guarded(<lock>)` on the definition line (e.g. "
        "guarded(import-time) for registries sealed before workers start)."
    )
    project_scope = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        for info in project.strict_modules():
            yield from self._check_module_globals(info)
            yield from self._check_class_attrs(info)

    def _check_module_globals(self, info: ModuleInfo) -> Iterator[Finding]:
        for name, stmt, value in info.global_assigns:
            if not exprs.is_mutable_container_expr(info.imports, value):
                continue
            mutators = [
                fn.name
                for fn in info.functions.values()
                if _function_mutates_name(fn.node, name) is not None
            ]
            if not mutators:
                continue
            yield info.finding(
                stmt,
                self.code,
                f"module-level mutable `{name}` is mutated at runtime by "
                f"{', '.join(sorted(set(mutators))[:3])}(); every executor "
                f"lane shares this object — confine it or annotate the "
                f"definition with `# detlint: guarded(<lock>)`",
            )

    def _check_class_attrs(self, info: ModuleInfo) -> Iterator[Finding]:
        for ci in info.classes.values():
            for name, stmt, value in ci.class_assigns:
                if not exprs.is_mutable_container_expr(info.imports, value):
                    continue
                chains = {f"self.{name}", f"cls.{name}", f"{ci.name}.{name}"}
                mutators: List[str] = []
                for method in ci.methods.values():
                    if self._method_mutates(method, name, chains):
                        mutators.append(method.name)
                if not mutators:
                    continue
                yield info.finding(
                    stmt,
                    self.code,
                    f"class attribute `{ci.name}.{name}` is a mutable "
                    f"container shared by every instance and mutated by "
                    f"{', '.join(sorted(set(mutators))[:3])}(); make it "
                    f"per-instance in __init__ or annotate with "
                    f"`# detlint: guarded(<lock>)`",
                )

    @staticmethod
    def _method_mutates(
        method: FunctionInfo, name: str, chains: Set[str]
    ) -> bool:
        # ``self.name = ...`` rebinding creates an *instance* attribute —
        # only in-place mutation (subscript/mutator-call) hits the shared
        # class object, and only while no instance rebind exists.
        for n in ast.walk(method.node):
            if isinstance(n, ast.Assign):
                for tgt in n.targets:
                    if (
                        isinstance(tgt, ast.Attribute)
                        and tgt.attr == name
                        and isinstance(tgt.value, ast.Name)
                        and tgt.value.id == "self"
                    ):
                        return False
        for stmt in exprs.body_statements(method.node):
            for container in exprs.mutated_containers(stmt):
                if exprs.chain_str(container) in chains:
                    return True
        return False


def _init_container_attrs(
    info: ModuleInfo, ci: ClassInfo
) -> Dict[str, ast.stmt]:
    """Attrs assigned a plain mutable container in ``__init__`` -> the
    assignment statement (the finding anchor and pragma site)."""
    init = ci.methods.get("__init__")
    if init is None:
        return {}
    out: Dict[str, ast.stmt] = {}
    for node in ast.walk(init.node):
        targets: List[ast.AST] = []
        value: Optional[ast.AST] = None
        if isinstance(node, ast.Assign):
            targets, value = node.targets, node.value
        elif isinstance(node, ast.AnnAssign) and node.value is not None:
            targets, value = [node.target], node.value
        if value is None:
            continue
        if not exprs.is_mutable_container_expr(info.imports, value):
            continue
        for tgt in targets:
            if (
                isinstance(tgt, ast.Attribute)
                and isinstance(tgt.value, ast.Name)
                and tgt.value.id == "self"
                and tgt.attr not in out
            ):
                out[tgt.attr] = node
    return out


def _attr_accesses(fn_node: ast.AST, attrs: Set[str]) -> Tuple[Set[str], Set[str]]:
    """(read attrs, written attrs) among ``attrs`` touched by this
    function.  Reads are .get/`in`/subscript-load/iteration; writes are
    subscript stores, dels, and mutator calls."""
    reads: Set[str] = set()
    writes: Set[str] = set()

    def self_attr(node: ast.AST) -> Optional[str]:
        if (
            isinstance(node, ast.Attribute)
            and isinstance(node.value, ast.Name)
            and node.value.id == "self"
            and node.attr in attrs
        ):
            return node.attr
        return None

    for stmt in exprs.body_statements(fn_node):
        for container in exprs.mutated_containers(stmt):
            a = self_attr(container)
            if a is not None:
                writes.add(a)
        for node in ast.walk(stmt):
            if isinstance(node, ast.Subscript):
                a = self_attr(node.value)
                if a is not None and isinstance(node.ctx, ast.Load):
                    reads.add(a)
            elif isinstance(node, ast.Compare) and any(
                isinstance(op, (ast.In, ast.NotIn)) for op in node.ops
            ):
                for cmp in node.comparators:
                    target = cmp
                    if (
                        isinstance(cmp, ast.Call)
                        and isinstance(cmp.func, ast.Attribute)
                    ):
                        target = cmp.func.value
                    a = self_attr(target)
                    if a is not None:
                        reads.add(a)
            elif isinstance(node, ast.Call) and isinstance(
                node.func, ast.Attribute
            ):
                if node.func.attr in _READ_METHODS:
                    a = self_attr(node.func.value)
                    if a is not None:
                        reads.add(a)
            elif isinstance(node, (ast.For, ast.comprehension)):
                it = node.iter
                if isinstance(it, ast.Call) and isinstance(
                    it.func, ast.Attribute
                ):
                    it = it.func.value
                a = self_attr(it)
                if a is not None:
                    reads.add(a)
    return reads, writes


def _same_class_closure(
    project: Project, ci: ClassInfo, method: FunctionInfo
) -> List[FunctionInfo]:
    """The method plus same-class methods it transitively calls."""
    out: List[FunctionInfo] = []
    for qual in project.reachable_from(method.qualname):
        fn = project.functions.get(qual)
        if fn is not None and fn.cls == ci.qualname:
            out.append(fn)
    return out


@register
class UnguardedSharedCacheRule(Rule):
    code = "RACE202"
    name = "unguarded-shared-cache"
    summary = (
        "per-instance cache has a check-then-act access path and no "
        "declared guard"
    )
    rationale = (
        "`miss → compute → store` on a plain dict is correct alone and a "
        "lost-update race the moment two executor lanes share the "
        "instance: both miss, both compute, one result (and its charged "
        "memory accounting) is silently dropped.  Confine the object per "
        "lane, or declare the protecting lock/discipline with "
        "`# detlint: guarded(<lock>)` on the attribute's definition line "
        "— the annotation is the contract the executor split implements."
    )
    project_scope = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        for info in project.strict_modules():
            if not in_packages(info.module, project.config.race_scope):
                continue
            for ci in info.classes.values():
                yield from self._check_class(project, info, ci)

    def _check_class(
        self, project: Project, info: ModuleInfo, ci: ClassInfo
    ) -> Iterator[Finding]:
        containers = _init_container_attrs(info, ci)
        if not containers:
            return
        attrs = set(containers)
        per_fn: Dict[str, Tuple[Set[str], Set[str]]] = {
            m.qualname: _attr_accesses(m.node, attrs)
            for m in ci.methods.values()
        }
        flagged: Dict[str, List[str]] = {}
        for method in ci.methods.values():
            if method.name == "__init__":
                continue
            closure = _same_class_closure(project, ci, method)
            reads: Set[str] = set()
            writes: Set[str] = set()
            for fn in closure:
                r, w = per_fn.get(fn.qualname, (set(), set()))
                reads |= r
                writes |= w
            for attr in reads & writes:
                flagged.setdefault(attr, []).append(method.name)
        for attr, methods in flagged.items():
            yield info.finding(
                containers[attr],
                self.code,
                f"`{ci.name}.{attr}` is read and written on the same call "
                f"path ({', '.join(sorted(set(methods))[:4])}) — a "
                f"check-then-act race under shared executors; confine per "
                f"lane or annotate this line with "
                f"`# detlint: guarded(<lock>)`",
            )


@register
class MutationDuringIterationRule(Rule):
    code = "RACE203"
    name = "mutation-during-iteration"
    summary = "container is mutated inside a loop iterating over it"
    rationale = (
        "Mutating a dict/set during iteration raises RuntimeError on size "
        "change and silently skips or repeats elements otherwise; under "
        "concurrent executors the iteration order itself becomes "
        "load-dependent, so even 'safe' in-place value updates break "
        "run-to-run determinism.  Snapshot first (`list(x)`, "
        "`tuple(x.items())`) or collect mutations and apply after the "
        "loop."
    )
    project_scope = True

    def check_project(self, project: Project) -> Iterator[Finding]:
        for info in project.strict_modules():
            for fn in info.functions.values():
                yield from self._check_function(info, fn)

    def _check_function(
        self, info: ModuleInfo, fn: FunctionInfo
    ) -> Iterator[Finding]:
        for node in ast.walk(fn.node):
            if not isinstance(node, (ast.For, ast.AsyncFor)):
                continue
            it = node.iter
            # unwrap .items()/.keys()/.values()/enumerate(...)
            if (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Name)
                and it.func.id == "enumerate"
                and it.args
            ):
                it = it.args[0]
            if (
                isinstance(it, ast.Call)
                and isinstance(it.func, ast.Attribute)
                and it.func.attr in {"items", "keys", "values"}
            ):
                it = it.func.value
            container = exprs.chain_str(it)
            if container is None:
                continue  # list(...) / sorted(...) snapshots are fine
            for stmt in node.body:
                hit = self._mutation_of(stmt, container)
                if hit is not None:
                    yield info.finding(
                        hit,
                        self.code,
                        f"`{container}` is mutated while being iterated in "
                        f"{fn.qualname}; snapshot the container "
                        f"(list/tuple) before the loop or defer the "
                        f"mutation",
                    )
                    break

    @staticmethod
    def _mutation_of(stmt: ast.stmt, container: str) -> Optional[ast.AST]:
        for mutated in exprs.mutated_containers(stmt):
            if exprs.chain_str(mutated) == container:
                return mutated
        return None
