"""The ``detlint`` command line: ``python -m repro.lint [paths ...]``.

Exit codes: 0 clean (after baseline + pragmas), 1 findings remain,
2 usage or configuration error.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import List, Optional

from repro.lint import engine
from repro.lint.baseline import Baseline
from repro.lint.config import Config, load_config
from repro.lint.rules import all_rules, rule_by_code


def _build_parser() -> argparse.ArgumentParser:
    p = argparse.ArgumentParser(
        prog="python -m repro.lint",
        description=(
            "detlint — determinism & PDM-discipline linter for the "
            "SPAA 2006 reproduction"
        ),
    )
    p.add_argument(
        "paths",
        nargs="*",
        help="files/directories to lint (default: [tool.detlint] paths)",
    )
    p.add_argument(
        "--root",
        type=Path,
        default=None,
        help="project root (default: nearest ancestor with pyproject.toml)",
    )
    p.add_argument("--select", help="comma-separated rule codes to run exclusively")
    p.add_argument("--ignore", help="comma-separated rule codes to disable")
    p.add_argument(
        "--baseline", type=Path, default=None, help="override the baseline file"
    )
    p.add_argument(
        "--no-baseline",
        action="store_true",
        help="report grandfathered findings too",
    )
    p.add_argument(
        "--update-baseline",
        action="store_true",
        help="rewrite the baseline from the current findings and exit 0",
    )
    p.add_argument(
        "--no-flow",
        action="store_true",
        help="skip the cross-module flow pass (COST/RACE/DET101)",
    )
    p.add_argument(
        "--format", choices=("text", "json"), default="text", dest="fmt"
    )
    p.add_argument(
        "--list-rules", action="store_true", help="list rule codes and exit"
    )
    p.add_argument(
        "--explain", metavar="CODE", help="print one rule's rationale and exit"
    )
    return p


def _list_rules() -> str:
    lines = []
    for rule in all_rules():
        if rule.project_scope:
            scope = "project-wide (flow)"
        elif rule.scope == "all":
            scope = "everywhere"
        else:
            scope = "deterministic modules"
        lines.append(f"{rule.code}  {rule.name:<24} [{scope}] {rule.summary}")
    lines.append(
        f"{engine.SYNTAX_ERROR_CODE}  {'syntax-error':<24} [everywhere] "
        f"file does not parse"
    )
    return "\n".join(lines)


def _explain(code: str) -> Optional[str]:
    cls = rule_by_code(code)
    if cls is None:
        if code.upper() == engine.SYNTAX_ERROR_CODE:
            return (
                f"{engine.SYNTAX_ERROR_CODE} syntax-error: the file failed "
                f"to parse; nothing else can be checked."
            )
        return None
    return f"{cls.code} {cls.name}: {cls.summary}\n\n{cls.rationale}"


def main(argv: Optional[List[str]] = None) -> int:
    args = _build_parser().parse_args(argv)

    if args.list_rules:
        print(_list_rules())
        return 0
    if args.explain:
        text = _explain(args.explain)
        if text is None:
            print(f"unknown rule code: {args.explain}", file=sys.stderr)
            return 2
        print(text)
        return 0

    try:
        config: Config = load_config(args.root)
    except ValueError as exc:
        print(f"detlint: configuration error: {exc}", file=sys.stderr)
        return 2
    known = {r.code for r in all_rules()} | {engine.SYNTAX_ERROR_CODE}
    if args.select:
        config.select = {c.strip().upper() for c in args.select.split(",") if c.strip()}
    if args.ignore:
        config.ignore |= {
            c.strip().upper() for c in args.ignore.split(",") if c.strip()
        }
    unknown = ((config.select or set()) | config.ignore) - known
    if unknown:
        print(
            f"detlint: unknown rule code(s): {', '.join(sorted(unknown))} "
            f"(see --list-rules)",
            file=sys.stderr,
        )
        return 2

    try:
        report = engine.run(config, args.paths or None)
    except (FileNotFoundError, OSError, UnicodeDecodeError) as exc:
        print(f"detlint: {exc}", file=sys.stderr)
        return 2

    flow_files = 0
    if not args.no_flow:
        from repro.lint import flow

        try:
            flow_findings, flow_files, flow_suppressed = flow.run_flow(
                config, args.paths or None
            )
        except (FileNotFoundError, OSError, UnicodeDecodeError) as exc:
            print(f"detlint: flow pass failed: {exc}", file=sys.stderr)
            return 2
        report.findings.extend(flow_findings)
        report.findings.sort()
        report.pragma_suppressed += flow_suppressed

    baseline_path = args.baseline or config.baseline_path
    if args.update_baseline:
        if baseline_path is None:
            print("detlint: no baseline path configured", file=sys.stderr)
            return 2
        Baseline.from_findings(report.findings).save(baseline_path)
        print(
            f"detlint: baseline updated with {len(report.findings)} "
            f"finding(s) -> {baseline_path}"
        )
        return 0

    suppressed = 0
    stale: List[str] = []
    findings = report.findings
    if baseline_path is not None and not args.no_baseline:
        try:
            baseline = Baseline.load(baseline_path)
        except ValueError as exc:
            print(f"detlint: {exc}", file=sys.stderr)
            return 2
        findings, suppressed, stale = baseline.apply(findings)

    if args.fmt == "json":
        print(
            json.dumps(
                {
                    "findings": [f.to_json() for f in findings],
                    "files_checked": report.files_checked,
                    "flow_files_indexed": flow_files,
                    "baseline_suppressed": suppressed,
                    "pragma_suppressed": report.pragma_suppressed,
                    "stale_baseline_keys": stale,
                },
                indent=2,
            )
        )
        return 1 if findings else 0

    for f in findings:
        print(f.format())
    tail = (
        f"detlint: {len(findings)} finding(s) in {report.files_checked} "
        f"file(s) ({suppressed} baselined, "
        f"{report.pragma_suppressed} pragma-suppressed)"
    )
    print(tail)
    if stale:
        print(
            f"detlint: note: {len(stale)} stale baseline entr"
            f"{'y' if len(stale) == 1 else 'ies'} (debt shrank — run "
            f"--update-baseline to ratchet): {', '.join(stale[:5])}"
            + (" ..." if len(stale) > 5 else "")
        )
    return 1 if findings else 0
