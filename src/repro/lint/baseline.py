"""Grandfathered findings.

A baseline lets the linter be introduced (or a rule tightened) without a
flag day: existing findings are recorded as ``(file, rule) -> count`` and
suppressed, while *new* findings — a higher count, a new file, a new rule —
still fail.  Line numbers are deliberately not stored: they drift with
every edit, and a per-(file, rule) count ratchets just as well.

The file is JSON with sorted keys, so regeneration is deterministic and
diffs are reviewable.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterable, List, Tuple

from repro.lint.finding import Finding

FORMAT_VERSION = 1


@dataclass
class Baseline:
    entries: Dict[str, int] = field(default_factory=dict)

    @classmethod
    def load(cls, path: Path) -> "Baseline":
        if not path.is_file():
            return cls()
        data = json.loads(path.read_text(encoding="utf-8"))
        if data.get("version") != FORMAT_VERSION:
            raise ValueError(
                f"unsupported baseline version {data.get('version')!r} "
                f"in {path} (expected {FORMAT_VERSION})"
            )
        entries = data.get("entries", {})
        if not isinstance(entries, dict) or not all(
            isinstance(v, int) and v > 0 for v in entries.values()
        ):
            raise ValueError(f"malformed baseline entries in {path}")
        return cls(entries=dict(entries))

    @classmethod
    def from_findings(cls, findings: Iterable[Finding]) -> "Baseline":
        entries: Dict[str, int] = {}
        for f in findings:
            entries[f.baseline_key] = entries.get(f.baseline_key, 0) + 1
        return cls(entries=entries)

    def save(self, path: Path) -> None:
        payload = {
            "version": FORMAT_VERSION,
            "entries": {k: self.entries[k] for k in sorted(self.entries)},
        }
        path.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    def apply(
        self, findings: List[Finding]
    ) -> Tuple[List[Finding], int, List[str]]:
        """Split ``findings`` against the baseline.

        Returns ``(kept, suppressed_count, stale_keys)``: per key the first
        ``count`` findings (in location order) are suppressed; ``stale_keys``
        are baseline entries whose budget was not fully used — the debt
        shrank, and the baseline should be regenerated to ratchet down.
        """
        remaining = dict(self.entries)
        kept: List[Finding] = []
        suppressed = 0
        for f in sorted(findings):
            budget = remaining.get(f.baseline_key, 0)
            if budget > 0:
                remaining[f.baseline_key] = budget - 1
                suppressed += 1
            else:
                kept.append(f)
        stale = sorted(k for k, v in remaining.items() if v > 0)
        return kept, suppressed, stale
