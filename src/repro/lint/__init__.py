"""``detlint`` — the determinism & PDM-discipline linter.

The SPAA 2006 reproduction's value is a *deterministic* dictionary whose
I/O counts are honest.  Both properties are invisible at runtime: an
unseeded ``random`` call, a ``PYTHONHASHSEED``-salted ``hash()``, a
set-order-dependent loop, or a block read that bypasses the I/O meter all
pass the test suite while silently invalidating the claims.  ``detlint``
checks the discipline statically, over the AST:

========  =====================================================
DET001    unseeded / process-global RNG use
DET002    builtin ``hash()`` (salted per process on str/bytes)
DET003    iteration over a set (hash-order dependent)
DET004    wall-clock reads inside deterministic modules
DET005    raw OS entropy (``urandom``, ``uuid4``, ``secrets``)
PDM101    importing PDM simulator internals (``Disk``/``Block``)
PDM102    uncharged physical block access (``block_at``/``.disks``)
ARCH201   package-layering violations (core must not import the
          randomized baselines; see ``[tool.detlint.layers]``)
LINT001   file does not parse
========  =====================================================

Usage::

    python -m repro.lint src tests benchmarks
    python -m repro.lint --list-rules
    python -m repro.lint --explain PDM102
    python -m repro.lint --update-baseline

Suppress a single line with ``# detlint: ignore[CODE] -- why``, a whole
file with ``# detlint: skip-file``; grandfather existing findings in the
baseline file (``.detlint-baseline.json``).  Configuration lives in
``[tool.detlint]`` in pyproject.toml.

The package is deliberately stdlib-only and imports nothing from the rest
of ``repro``, so the linter can never be broken by the code it lints.
"""

from repro.lint.baseline import Baseline
from repro.lint.config import Config, load_config
from repro.lint.engine import Report, lint_source, run
from repro.lint.finding import Finding
from repro.lint.rules import Rule, all_rules, register, rule_by_code

__all__ = [
    "Baseline",
    "Config",
    "Finding",
    "Report",
    "Rule",
    "all_rules",
    "lint_source",
    "load_config",
    "register",
    "rule_by_code",
    "run",
]
