"""Deterministic fault plans: seeded chaos schedules for the PDM.

A :class:`FaultPlan` is a reproducible list of
:mod:`repro.pdm.faults` events — disk outages, transient I/O windows,
silent block corruptions and straggler windows — generated purely from a
seed via :func:`repro.bits.mix.derive`.  No wall clock, no process
entropy: ``FaultPlan.generate(seed, ...)`` is bit-identical across runs,
processes and platforms, so a chaos run that finds a bug *is* its own
reproducer.

Time is the machine's logical clock (``machine.stats.total_ios``); the
plan divides its ``horizon`` into epochs and draws at most a bounded
number of concurrent outages per epoch so the schedule degrades the
structure without trivially exceeding every tolerance threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.bits.mix import derive
from repro.pdm.faults import (
    DiskOutage,
    FaultEvent,
    SilentCorruption,
    StragglerWindow,
    TransientWindow,
)

#: Sentinel end for "down for the rest of the run" windows.
FOREVER = 1 << 62

# Domain-separation tags (arbitrary distinct constants).
_TAG_OUTAGE = 0x0F01
_TAG_TRANSIENT = 0x0F02
_TAG_STRAGGLER = 0x0F03
_TAG_CORRUPT = 0x0F04
_TAG_ROLLING = 0x0F06


def _unit(x: int) -> float:
    """Map a 64-bit mixer output to [0, 1)."""
    return (x & ((1 << 53) - 1)) / float(1 << 53)


@dataclass(frozen=True)
class FaultPlan:
    """A named, seeded, immutable fault schedule."""

    seed: int
    num_disks: int
    horizon: int
    events: Tuple[FaultEvent, ...]

    @classmethod
    def generate(
        cls,
        seed: int,
        *,
        num_disks: int,
        horizon: int,
        epochs: int = 8,
        outage_rate: float = 0.08,
        transient_rate: float = 0.15,
        corruption_rate: float = 0.02,
        straggler_rate: float = 0.10,
        max_down_per_epoch: int = 1,
        blocks_per_disk: int = 64,
    ) -> "FaultPlan":
        """Draw a schedule over ``horizon`` logical I/O rounds.

        Each of ``epochs`` equal windows rolls, per disk and per fault
        kind, an independent value from ``derive(seed, tag, disk, epoch)``;
        a roll below the kind's rate schedules a window inside that epoch.
        At most ``max_down_per_epoch`` outages start per epoch (disks in
        index order), so the adversary stays below the blanket-failure
        regime unless the caller raises the cap.  ``corruption_rate`` is
        interpreted per logical round: ``int(rate * horizon)`` corruption
        events land on derived (disk, round, block) coordinates.
        """
        if num_disks <= 0:
            raise ValueError(f"need at least one disk, got {num_disks}")
        if horizon <= 0:
            raise ValueError(f"horizon must be positive, got {horizon}")
        if epochs <= 0:
            raise ValueError(f"epochs must be positive, got {epochs}")
        epoch_len = max(1, horizon // epochs)
        events: List[FaultEvent] = []
        for e in range(epochs):
            start0 = e * epoch_len
            down_this_epoch = 0
            for disk in range(num_disks):
                r_out = derive(seed, _TAG_OUTAGE, disk, e)
                if (
                    _unit(r_out) < outage_rate
                    and down_this_epoch < max_down_per_epoch
                ):
                    down_this_epoch += 1
                    off = derive(seed, _TAG_OUTAGE, disk, e, 1) % epoch_len
                    dur = 1 + derive(seed, _TAG_OUTAGE, disk, e, 2) % max(
                        1, epoch_len // 2
                    )
                    events.append(
                        DiskOutage(disk, start0 + off, start0 + off + dur)
                    )
                r_tr = derive(seed, _TAG_TRANSIENT, disk, e)
                if _unit(r_tr) < transient_rate:
                    off = derive(seed, _TAG_TRANSIENT, disk, e, 1) % epoch_len
                    dur = 1 + derive(seed, _TAG_TRANSIENT, disk, e, 2) % max(
                        1, epoch_len // 2
                    )
                    events.append(
                        TransientWindow(disk, start0 + off, start0 + off + dur)
                    )
                r_st = derive(seed, _TAG_STRAGGLER, disk, e)
                if _unit(r_st) < straggler_rate:
                    off = derive(seed, _TAG_STRAGGLER, disk, e, 1) % epoch_len
                    dur = 1 + derive(seed, _TAG_STRAGGLER, disk, e, 2) % max(
                        1, epoch_len // 2
                    )
                    extra = 1 + derive(seed, _TAG_STRAGGLER, disk, e, 3) % 2
                    events.append(
                        StragglerWindow(
                            disk, start0 + off, start0 + off + dur, extra
                        )
                    )
        for i in range(int(corruption_rate * horizon)):
            disk = derive(seed, _TAG_CORRUPT, i, 0) % num_disks
            rnd = derive(seed, _TAG_CORRUPT, i, 1) % horizon
            block = derive(seed, _TAG_CORRUPT, i, 2) % blocks_per_disk
            salt = derive(seed, _TAG_CORRUPT, i, 3)
            events.append(SilentCorruption(disk, rnd, block, salt))
        return cls(
            seed=seed,
            num_disks=num_disks,
            horizon=horizon,
            events=tuple(events),
        )

    @classmethod
    def kill_disks(
        cls,
        disks: Sequence[int],
        *,
        num_disks: int,
        start: int = 0,
        end: int = FOREVER,
    ) -> "FaultPlan":
        """The targeted adversary: the listed disks are down on
        ``[start, end)``.  This is the plan the threshold tests use —
        failing exactly the stripes that hold a key's fields."""
        events = tuple(DiskOutage(d, start, end) for d in disks)
        return cls(seed=0, num_disks=num_disks, horizon=end, events=events)

    @classmethod
    def rolling(
        cls,
        seed: int,
        *,
        num_disks: int,
        failures: int,
        every: int,
        start: int = 0,
        outage_len: int = 8,
        kind: str = "transient",
    ) -> "FaultPlan":
        """Rolling failures: one disk fails every ``every`` rounds.

        The victim order is a seeded permutation of the disks, so no disk
        is hit twice before every other disk has had its turn — the
        schedule a self-healing run must survive: each failure lands while
        the previous one's rebuild may still be in flight.

        ``kind`` selects the failure mode: ``"transient"`` windows of
        ``outage_len`` rounds (heal in place once the window passes),
        ``"outage"`` hard down-windows of ``outage_len`` rounds, or
        ``"kill"`` — permanent loss (:data:`FOREVER`), the spare-rebuild
        scenario.
        """
        if failures < 0:
            raise ValueError(f"failures must be non-negative, got {failures}")
        if every <= 0:
            raise ValueError(f"every must be positive, got {every}")
        if kind not in ("transient", "outage", "kill"):
            raise ValueError(f"unknown rolling failure kind {kind!r}")
        # Seeded Fisher-Yates permutation of the disk indices.
        perm = list(range(num_disks))
        for i in range(num_disks - 1, 0, -1):
            j = derive(seed, _TAG_ROLLING, i) % (i + 1)
            perm[i], perm[j] = perm[j], perm[i]
        events: List[FaultEvent] = []
        horizon = start + 1
        for i in range(failures):
            disk = perm[i % num_disks]
            t = start + i * every
            if kind == "kill":
                events.append(DiskOutage(disk, t, FOREVER))
                horizon = max(horizon, t + every)
            elif kind == "outage":
                events.append(DiskOutage(disk, t, t + outage_len))
                horizon = max(horizon, t + outage_len)
            else:
                events.append(TransientWindow(disk, t, t + outage_len))
                horizon = max(horizon, t + outage_len)
        return cls(
            seed=seed,
            num_disks=num_disks,
            horizon=horizon,
            events=tuple(events),
        )

    @classmethod
    def repair_race(
        cls,
        seed: int,
        *,
        num_disks: int,
        repeats: int = 3,
        every: int = 24,
        outage_len: int = 8,
        start: int = 0,
        disk: "int | None" = None,
    ) -> "FaultPlan":
        """The repair-race adversary: one disk fails *again* while its
        rebuild is still in flight, ``repeats`` times over.

        Finite down-windows of ``outage_len`` rounds recur every ``every``
        rounds on the same disk; a recovery manager that restarts from
        scratch each time can be starved forever, while journal-backed
        resume converges — exactly the property the crash-consistency
        tests pin down.
        """
        if repeats <= 0:
            raise ValueError(f"repeats must be positive, got {repeats}")
        if every <= outage_len:
            raise ValueError(
                f"every ({every}) must exceed outage_len ({outage_len}) or "
                f"the windows merge into one long outage"
            )
        if disk is None:
            disk = derive(seed, _TAG_ROLLING, 0, 1) % num_disks
        events = tuple(
            DiskOutage(disk, start + i * every, start + i * every + outage_len)
            for i in range(repeats)
        )
        return cls(
            seed=seed,
            num_disks=num_disks,
            horizon=start + (repeats - 1) * every + outage_len,
            events=events,
        )

    def shifted(self, offset: int) -> "FaultPlan":
        """The same schedule, translated ``offset`` logical rounds later.

        Fault windows are expressed on the machine's absolute clock
        (``stats.total_ios``); a plan generated over ``[0, horizon)`` must
        be shifted past any build-phase I/O before being attached, or its
        early windows land in the (already elapsed) past.
        """
        if offset == 0:
            return self
        out: List[FaultEvent] = []
        for e in self.events:
            if isinstance(e, SilentCorruption):
                out.append(
                    SilentCorruption(e.disk, e.round + offset, e.block, e.salt)
                )
            elif isinstance(e, DiskOutage):
                out.append(DiskOutage(e.disk, e.start + offset, e.end + offset))
            elif isinstance(e, TransientWindow):
                out.append(
                    TransientWindow(e.disk, e.start + offset, e.end + offset)
                )
            else:
                out.append(
                    StragglerWindow(
                        e.disk,
                        e.start + offset,
                        e.end + offset,
                        e.extra_rounds,
                    )
                )
        return FaultPlan(
            seed=self.seed,
            num_disks=self.num_disks,
            horizon=self.horizon + offset,
            events=tuple(out),
        )

    def merged(self, other: "FaultPlan") -> "FaultPlan":
        """Union of two schedules over the wider of the two horizons."""
        return FaultPlan(
            seed=self.seed,
            num_disks=max(self.num_disks, other.num_disks),
            horizon=max(self.horizon, other.horizon),
            events=self.events + other.events,
        )

    def counts(self) -> Dict[str, int]:
        """Events by kind, for reports."""
        out: Dict[str, int] = {
            "outages": 0,
            "transients": 0,
            "stragglers": 0,
            "corruptions": 0,
        }
        for event in self.events:
            if isinstance(event, DiskOutage):
                out["outages"] += 1
            elif isinstance(event, TransientWindow):
                out["transients"] += 1
            elif isinstance(event, StragglerWindow):
                out["stragglers"] += 1
            else:
                out["corruptions"] += 1
        return out

    def to_dict(self) -> Dict[str, object]:
        return {
            "seed": self.seed,
            "num_disks": self.num_disks,
            "horizon": self.horizon,
            "counts": self.counts(),
            "events": [
                {"kind": type(e).__name__, **vars(e)} for e in self.events
            ],
        }

    def __len__(self) -> int:
        return len(self.events)
