"""``python -m repro.faults`` — deterministic chaos runs.

Replays seeded workloads against the dictionaries with a generated
:class:`~repro.faults.plan.FaultPlan` attached, and reports survived vs
loudly-failed operations, degraded-mode I/O overhead, and — the point —
whether any lookup returned a silently wrong answer.

Exit codes:

* ``0`` — every run survived-or-failed-loudly; no wrong answers.
* ``1`` — at least one silent wrong answer (the chaos contract broke).
* ``2`` — operational error (bad arguments, unwritable output, crash).

Examples::

    python -m repro.faults --structure static --operations 256
    python -m repro.faults --structure all --json \
        benchmarks/results/BENCH_chaos.json
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys
from typing import List, Optional

from repro.faults.chaos import STRUCTURES, run_chaos


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="python -m repro.faults",
        description="replay workloads under deterministic fault injection",
    )
    parser.add_argument(
        "--structure",
        choices=STRUCTURES + ("all",),
        default="static",
        help="dictionary to torture (default: static)",
    )
    parser.add_argument("--disks", type=int, default=16, help="number of disks D")
    parser.add_argument("--block", type=int, default=32, help="items per block B")
    parser.add_argument(
        "--universe", type=int, default=1 << 20, help="key universe size"
    )
    parser.add_argument(
        "--capacity", type=int, default=128, help="dictionary capacity n"
    )
    parser.add_argument(
        "--operations", type=int, default=256, help="workload length"
    )
    parser.add_argument(
        "--sigma", type=int, default=32, help="satellite value bits"
    )
    parser.add_argument("--seed", type=int, default=0, help="workload seed")
    parser.add_argument(
        "--fault-seed", type=int, default=1, help="fault plan seed"
    )
    parser.add_argument(
        "--retry-budget",
        type=int,
        default=3,
        help="transient-read retries before TransientIOError",
    )
    parser.add_argument(
        "--rolling",
        type=int,
        default=0,
        metavar="N",
        help="replace the generated plan with N rolling failures, one "
        "disk at a time (permanent kills when --spares > 0, transient "
        "windows otherwise)",
    )
    parser.add_argument(
        "--rolling-every",
        type=int,
        default=0,
        metavar="R",
        help="rounds between rolling failures (default: spread over the "
        "healthy run)",
    )
    parser.add_argument(
        "--rolling-kind",
        choices=("transient", "outage", "kill"),
        default=None,
        help="failure kind for --rolling (default: kill when --spares "
        "> 0, transient otherwise)",
    )
    parser.add_argument(
        "--repair-budget",
        type=int,
        default=0,
        metavar="K",
        help="attach the self-healing stack, metering rebuilds at K "
        "repair rounds per step (0: no recovery manager)",
    )
    parser.add_argument(
        "--spares",
        type=int,
        default=0,
        help="replacement disks available to the recovery manager",
    )
    parser.add_argument(
        "--scrub-rate",
        type=int,
        default=0,
        help="blocks scrubbed between operations (0: no scrubber)",
    )
    parser.add_argument(
        "--no-checksums",
        action="store_true",
        help="disable verify-on-read (silent corruption stays silent; "
        "expect a nonzero wrong-answer count)",
    )
    parser.add_argument(
        "--outage-rate", type=float, default=0.08, help="per disk-epoch"
    )
    parser.add_argument(
        "--transient-rate", type=float, default=0.15, help="per disk-epoch"
    )
    parser.add_argument(
        "--corruption-rate", type=float, default=0.02, help="per logical round"
    )
    parser.add_argument(
        "--straggler-rate", type=float, default=0.10, help="per disk-epoch"
    )
    parser.add_argument(
        "--json",
        type=pathlib.Path,
        default=None,
        help="write the machine-readable report (BENCH_chaos.json shape)",
    )
    parser.add_argument(
        "--quiet", action="store_true", help="suppress the text report"
    )
    return parser


def _run(args: argparse.Namespace) -> int:
    structures = (
        list(STRUCTURES) if args.structure == "all" else [args.structure]
    )
    reports = []
    for structure in structures:
        report = run_chaos(
            structure,
            num_disks=args.disks,
            block_items=args.block,
            universe_size=args.universe,
            capacity=args.capacity,
            operations=args.operations,
            sigma=args.sigma,
            seed=args.seed,
            fault_seed=args.fault_seed,
            checksums=not args.no_checksums,
            retry_budget=args.retry_budget,
            outage_rate=args.outage_rate,
            transient_rate=args.transient_rate,
            corruption_rate=args.corruption_rate,
            straggler_rate=args.straggler_rate,
            rolling=args.rolling,
            rolling_every=args.rolling_every,
            rolling_kind=args.rolling_kind,
            repair_budget=args.repair_budget,
            spares=args.spares,
            scrub_rate=args.scrub_rate,
        )
        reports.append(report)
        if not args.quiet:
            print(report.render_text())
            print()

    if args.json is not None:
        payload = {
            "tool": "repro.faults",
            "runs": [r.to_dict() for r in reports],
            "ok": all(r.ok for r in reports),
        }
        args.json.parent.mkdir(parents=True, exist_ok=True)
        args.json.write_text(
            json.dumps(payload, sort_keys=True, indent=1) + "\n"
        )
        print(f"wrote report to {args.json}", file=sys.stderr)

    return 0 if all(r.ok for r in reports) else 1


def main(argv: Optional[List[str]] = None) -> int:
    try:
        args = build_parser().parse_args(argv)
        return _run(args)
    except SystemExit:
        raise
    except (OSError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    raise SystemExit(main())
