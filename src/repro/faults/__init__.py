"""Deterministic chaos: fault plans and degraded-mode survival runs.

The *mechanism* — fault events, the wrapped :class:`FaultyDisk`, the
injector the machine consults on its hot path — lives in
:mod:`repro.pdm.faults`, below the dictionaries.  This package is the
*policy* layer on top:

* :mod:`repro.faults.plan` — :class:`FaultPlan`: seeded, bit-identical
  schedules of outages, transients, corruptions and stragglers over the
  machine's logical clock;
* :mod:`repro.faults.chaos` — :func:`run_chaos`: replay a workload
  healthy and then faulted, verify every answer against a model, and
  report survived / loudly-failed / silently-wrong operations plus the
  I/O cost of recovery;
* ``python -m repro.faults`` — the CLI over both (exit 1 on any silent
  wrong answer).
"""

from repro.faults.chaos import ChaosReport, chaos_replay, run_chaos
from repro.faults.plan import FOREVER, FaultPlan

__all__ = [
    "ChaosReport",
    "FaultPlan",
    "FOREVER",
    "chaos_replay",
    "run_chaos",
]
