"""Chaos runs: replay workloads under deterministic fault injection.

:func:`run_chaos` executes the same seeded workload twice — once on a
healthy machine (the baseline), once with a :class:`~repro.faults.plan.
FaultPlan` attached — and reports what survived, what failed *loudly*
(typed :class:`~repro.pdm.errors.IOFault` /
:class:`~repro.core.interface.DegradedModeError`), and, crucially,
whether anything failed *silently*: every lookup is checked against a
Python-dict model, and a wrong answer is the one unforgivable outcome
(``ChaosReport.ok`` is false, the CLI exits 1).

Both passes are functions of ``(seed, fault_seed)`` only, so a chaos run
that finds a bug is its own reproducer.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Tuple

from repro.bits.mix import derive
from repro.core.interface import CapacityExceeded, DegradedModeError
from repro.core.static_dict import StaticDictionary, fault_tolerance
from repro.obs.harness import build_structure
from repro.obs.metrics import (
    MetricsRegistry,
    collect_faults,
    collect_machine,
    collect_spans,
)
from repro.pdm.errors import IOFault
from repro.pdm.faults import attach_faults
from repro.pdm.health import attach_health
from repro.pdm.machine import ParallelDiskMachine
from repro.pdm.spans import attach_spans
from repro.recovery import RecoveryManager, Scrubber, SparePool
from repro.workloads.replay import Workload, replay

from repro.faults.plan import FaultPlan

STRUCTURES = ("static", "basic", "dynamic")

Op = Tuple[str, int, Optional[int]]

# Domain-separation tags for the static workload's key streams.
_TAG_KEY = 0xC4A05_01
_TAG_VALUE = 0xC4A05_02
_TAG_ABSENT = 0xC4A05_03


@dataclass
class ChaosReport:
    """Outcome of one chaos run."""

    structure: str
    params: Dict[str, Any]
    plan_counts: Dict[str, int]
    operations: int
    survived: int
    wrong_answers: int
    failed: Dict[str, int] = field(default_factory=dict)
    healthy_ios: int = 0
    chaos_ios: int = 0
    retry_ios: int = 0
    repair_ios: int = 0
    degraded_spans: int = 0
    injected: Dict[str, int] = field(default_factory=dict)
    registry: Optional[MetricsRegistry] = None
    #: The faulted pass's span recorder — lets callers audit e.g. the
    #: ``recovery.rebuild`` summary spans with the monitor panel.  Like
    #: ``registry`` it stays out of :meth:`to_dict`.
    recorder: Optional[Any] = None
    #: None when no recovery manager ran; else whether every disk returned
    #: to healthy with no rebuild left in flight.
    healed: Optional[bool] = None
    #: Logical rounds from the start of the faulted pass to full health.
    heal_rounds: int = 0
    recovery: Dict[str, Any] = field(default_factory=dict)

    @property
    def failed_total(self) -> int:
        return sum(self.failed.values())

    @property
    def ok(self) -> bool:
        """Loud failures are acceptable chaos outcomes; silence is not.
        A recovery run that failed to heal is equally a broken contract."""
        return self.wrong_answers == 0 and self.healed is not False

    @property
    def overhead(self) -> float:
        """Relative I/O cost of surviving the faults (chaos vs healthy)."""
        if self.healthy_ios <= 0:
            return 0.0
        return self.chaos_ios / self.healthy_ios - 1.0

    def to_dict(self) -> Dict[str, Any]:
        return {
            "structure": self.structure,
            "params": self.params,
            "plan": self.plan_counts,
            "operations": self.operations,
            "survived": self.survived,
            "failed": dict(self.failed),
            "wrong_answers": self.wrong_answers,
            "healthy_ios": self.healthy_ios,
            "chaos_ios": self.chaos_ios,
            "retry_ios": self.retry_ios,
            "repair_ios": self.repair_ios,
            "degraded_spans": self.degraded_spans,
            "overhead": self.overhead,
            "injected": dict(self.injected),
            "metrics": self.registry.as_dict() if self.registry else {},
            "healed": self.healed,
            "heal_rounds": self.heal_rounds,
            "recovery": dict(self.recovery),
            "ok": self.ok,
        }

    def render_text(self) -> str:
        lines = [
            f"== chaos run: {self.structure} ==",
            "params: "
            + " ".join(f"{k}={v}" for k, v in sorted(self.params.items())),
            "plan: "
            + " ".join(f"{k}={v}" for k, v in sorted(self.plan_counts.items())),
            f"operations: {self.operations}  survived: {self.survived}  "
            f"failed-loud: {self.failed_total}  wrong: {self.wrong_answers}",
        ]
        if self.failed:
            lines.append(
                "  " + " ".join(f"{k}={v}" for k, v in sorted(self.failed.items()))
            )
        lines.append(
            f"io: healthy={self.healthy_ios} chaos={self.chaos_ios} "
            f"(+{self.overhead:.1%})  retry={self.retry_ios} "
            f"repair={self.repair_ios}  degraded-spans={self.degraded_spans}"
        )
        lines.append(
            "injected: "
            + " ".join(f"{k}={v}" for k, v in sorted(self.injected.items()))
        )
        if self.healed is not None:
            stats = self.recovery.get("stats", {})
            lines.append(
                f"recovery: healed={self.healed} heal-rounds={self.heal_rounds} "
                f"rebuilds={stats.get('rebuilds_completed', 0)}"
                f"/{stats.get('rebuilds_started', 0)} "
                f"blocks={stats.get('blocks_rebuilt', 0)}"
            )
        verdict = "OK"
        if self.wrong_answers:
            verdict = "SILENT WRONG ANSWER"
        elif self.healed is False:
            verdict = "FAILED TO HEAL"
        lines.append("verdict: " + verdict)
        return "\n".join(lines)


# -- workload construction ----------------------------------------------------


def _static_items(
    *, universe_size: int, capacity: int, sigma: int, seed: int
) -> Dict[int, int]:
    items: Dict[int, int] = {}
    i = 0
    while len(items) < capacity:
        key = derive(seed, _TAG_KEY, i) % universe_size
        if key not in items:
            items[key] = derive(seed, _TAG_VALUE, i) % (1 << sigma)
        i += 1
    return items


def _static_ops(
    items: Dict[int, int],
    *,
    universe_size: int,
    operations: int,
    seed: int,
) -> Tuple[Op, ...]:
    """Alternating present/absent lookups (the static dict is immutable)."""
    present = sorted(items)
    ops: list = []
    hit_i = 0
    probe_j = 0
    while len(ops) < operations:
        if len(ops) % 2 == 0:
            key = present[hit_i % len(present)]
            hit_i += 1
        else:
            while True:
                key = derive(seed, _TAG_ABSENT, probe_j) % universe_size
                probe_j += 1
                if key not in items:
                    break
        ops.append(("lookup", key, None))
    return tuple(ops)


def _build_static(
    machine: ParallelDiskMachine,
    *,
    universe_size: int,
    capacity: int,
    sigma: int,
    seed: int,
) -> Tuple[StaticDictionary, Dict[int, int]]:
    items = _static_items(
        universe_size=universe_size, capacity=capacity, sigma=sigma, seed=seed
    )
    dictionary = StaticDictionary.build(
        machine,
        items,
        universe_size=universe_size,
        sigma=sigma,
        case="b",
        redundancy="replicate",
        seed=seed,
    )
    return dictionary, items


# -- the fault-aware replay loop ----------------------------------------------


def chaos_replay(
    dictionary,
    ops: Tuple[Op, ...],
    *,
    model: Optional[Dict[int, int]] = None,
    verify: bool = True,
    on_op: Optional[Callable[[], None]] = None,
) -> Tuple[int, int, Dict[str, int]]:
    """Drive ``dictionary`` through ``ops``, absorbing typed failures.

    Returns ``(survived, wrong_answers, failed_by_kind)``.  A typed
    exception (:class:`IOFault`, :class:`DegradedModeError`,
    :class:`CapacityExceeded`) counts as a *loud* failure and leaves the
    model untouched — every dictionary mutation either completes or
    refuses before changing visible state, so later verified lookups stay
    meaningful.  A lookup that *returns* but disagrees with the model is a
    silent wrong answer, the outcome chaos runs exist to rule out.

    ``on_op``, when given, runs between operations (and before the
    first) — the hook the self-healing harness uses to interleave
    recovery-manager and scrubber steps with live traffic.
    """
    if model is None:
        model = {}
    survived = 0
    wrong = 0
    failed: Dict[str, int] = {}
    for kind, key, value in ops:
        if on_op is not None:
            on_op()
        try:
            if kind == "insert":
                dictionary.insert(key, value)
                model[key] = value
            elif kind == "delete":
                dictionary.delete(key)
                model.pop(key, None)
            else:
                result = dictionary.lookup(key)
                if verify:
                    expected = key in model
                    if result.found != expected or (
                        expected
                        and result.value is not None
                        and result.value != model[key]
                    ):
                        wrong += 1
                        continue
            survived += 1
        except (DegradedModeError, IOFault, CapacityExceeded) as exc:
            name = type(exc).__name__
            failed[name] = failed.get(name, 0) + 1
    return survived, wrong, failed


# -- the harness --------------------------------------------------------------


def run_chaos(
    structure: str = "static",
    *,
    num_disks: int = 16,
    block_items: int = 32,
    universe_size: int = 1 << 20,
    capacity: int = 128,
    operations: int = 256,
    sigma: int = 32,
    seed: int = 0,
    fault_seed: int = 1,
    plan: Optional[FaultPlan] = None,
    checksums: bool = True,
    retry_budget: int = 3,
    outage_rate: float = 0.08,
    transient_rate: float = 0.15,
    corruption_rate: float = 0.02,
    straggler_rate: float = 0.10,
    rolling: int = 0,
    rolling_every: int = 0,
    rolling_kind: Optional[str] = None,
    repair_budget: int = 0,
    spares: int = 0,
    scrub_rate: int = 0,
) -> ChaosReport:
    """One healthy pass, one faulted pass, one verdict.

    The healthy pass measures the baseline I/O of the exact workload the
    faulted pass replays; its round count also sizes the fault plan's
    horizon, so the schedule spreads over the whole run regardless of
    workload length.  A caller-supplied ``plan`` overrides the generated
    one (e.g. :meth:`FaultPlan.kill_disks` for targeted adversaries) and
    is *not* shifted — targeted plans use :data:`~repro.faults.plan.
    FOREVER` windows that cover any clock.

    ``rolling=N`` replaces the generated plan with
    :meth:`FaultPlan.rolling`: ``N`` failures, one every ``rolling_every``
    rounds (default: the healthy run spread over ``N+1`` slots).  The
    failure mode defaults to permanent kills when a ``spares`` pool is
    available and transient windows otherwise.

    ``repair_budget=K`` attaches the self-healing stack: a health tracker,
    a :class:`~repro.recovery.manager.RecoveryManager` metered at ``K``
    repair rounds per step (plus a scrubber when ``scrub_rate > 0``),
    stepped between every two workload operations and drained after the
    last.  The report then carries ``healed`` / ``heal_rounds`` /
    ``recovery`` and ``ok`` additionally requires full healing.
    """
    if structure not in STRUCTURES:
        raise ValueError(
            f"unknown structure {structure!r}; choose from {STRUCTURES}"
        )
    if rolling < 0:
        raise ValueError(f"rolling must be non-negative, got {rolling}")
    if repair_budget < 0:
        raise ValueError(
            f"repair-budget must be non-negative, got {repair_budget}"
        )

    def fresh(machine):
        if structure == "static":
            return _build_static(
                machine,
                universe_size=universe_size,
                capacity=capacity,
                sigma=sigma,
                seed=seed,
            )
        dictionary = build_structure(
            structure,
            machine,
            universe_size=universe_size,
            capacity=capacity,
            sigma=sigma,
            seed=seed,
        )
        return dictionary, None

    if structure == "static":
        ops: Tuple[Op, ...] = ()
    else:
        workload = Workload.generate(
            name=f"chaos-{structure}",
            universe_size=universe_size,
            operations=operations,
            capacity=capacity,
            value_bits=sigma,
            seed=seed,
        )
        ops = workload.ops

    # Healthy baseline: same build, same operations, no faults.
    machine_h = ParallelDiskMachine(num_disks, block_items)
    dict_h, items_h = fresh(machine_h)
    if structure == "static":
        ops = _static_ops(
            items_h,
            universe_size=universe_size,
            operations=operations,
            seed=seed,
        )
        before = machine_h.stats.total_ios
        for _, key, _ in ops:
            result = dict_h.lookup(key)
            assert result.found == (key in items_h)
        healthy_ios = machine_h.stats.total_ios - before
    else:
        before = machine_h.stats.total_ios
        replay(dict_h, Workload(
            name="healthy", universe_size=universe_size, ops=ops
        ))
        healthy_ios = machine_h.stats.total_ios - before

    # Faulted pass: identical build, then the plan goes live.
    machine = ParallelDiskMachine(num_disks, block_items)
    recorder = attach_spans(machine)
    dictionary, items = fresh(machine)
    model: Dict[int, int] = dict(items) if items is not None else {}
    if plan is None:
        if rolling > 0:
            kind = rolling_kind or ("kill" if spares > 0 else "transient")
            every = rolling_every or max(8, healthy_ios // (rolling + 1))
            plan = FaultPlan.rolling(
                fault_seed,
                num_disks=num_disks,
                failures=rolling,
                every=every,
                kind=kind,
            ).shifted(machine.stats.total_ios)
        else:
            plan = FaultPlan.generate(
                fault_seed,
                num_disks=num_disks,
                horizon=max(16, healthy_ios),
                outage_rate=outage_rate,
                transient_rate=transient_rate,
                corruption_rate=corruption_rate,
                straggler_rate=straggler_rate,
            ).shifted(machine.stats.total_ios)
    injector = attach_faults(
        machine, plan.events, checksums=checksums, retry_budget=retry_budget
    )

    manager: Optional[RecoveryManager] = None
    scrubber: Optional[Scrubber] = None
    on_op: Optional[Callable[[], None]] = None
    if repair_budget > 0:
        tracker = attach_health(machine)
        manager = RecoveryManager(
            machine,
            tracker,
            repair_budget=repair_budget,
            spares=SparePool(spares) if spares > 0 else None,
        )
        manager.register(dictionary)
        if scrub_rate > 0:
            scrubber = Scrubber(machine, rate=scrub_rate)
            scrubber.register(dictionary)

        def on_op() -> None:
            manager.step()
            if scrubber is not None:
                scrubber.step()

    chaos_before = machine.stats.total_ios
    survived, wrong, failed = chaos_replay(
        dictionary, ops, model=model, verify=True, on_op=on_op
    )
    healed: Optional[bool] = None
    heal_rounds = 0
    recovery: Dict[str, Any] = {}
    if manager is not None:
        manager.run_until_idle()
        healed = manager.all_healed
        end_clock = manager.heal_clock
        if end_clock is None or not healed:
            end_clock = machine.stats.total_ios
        heal_rounds = end_clock - chaos_before
        recovery = {
            "stats": dict(manager.stats),
            "health": manager.tracker.counts(),
            "transitions": manager.tracker.transitions,
            "heal_clock": manager.heal_clock,
            "journal_entries": len(manager.journal),
        }
        if scrubber is not None:
            recovery["scrub"] = dict(scrubber.stats)
    chaos_ios = machine.stats.total_ios - chaos_before

    registry = MetricsRegistry()
    collect_machine(registry, machine)
    collect_spans(registry, recorder)
    collect_faults(registry, machine, recorder)
    degraded_spans = sum(
        1 for s in recorder.iter_spans() if s.attrs.get("degraded")
    )

    params = {
        "num_disks": num_disks,
        "block_items": block_items,
        "universe_size": universe_size,
        "capacity": capacity,
        "operations": operations,
        "sigma": sigma,
        "seed": seed,
        "fault_seed": fault_seed,
        "checksums": checksums,
        "retry_budget": retry_budget,
    }
    if rolling > 0:
        params["rolling"] = rolling
    if repair_budget > 0:
        params["repair_budget"] = repair_budget
        params["spares"] = spares
        params["scrub_rate"] = scrub_rate
    if structure == "static":
        params["fault_tolerance"] = fault_tolerance(dictionary.degree)
    return ChaosReport(
        structure=structure,
        params=params,
        plan_counts=plan.counts(),
        operations=len(ops),
        survived=survived,
        wrong_answers=wrong,
        failed=failed,
        healthy_ios=healthy_ios,
        chaos_ios=chaos_ios,
        retry_ios=machine.stats.retry_ios,
        repair_ios=machine.stats.repair_ios,
        degraded_spans=degraded_spans,
        injected=dict(injector.injected),
        registry=registry,
        recorder=recorder,
        healed=healed,
        heal_rounds=heal_rounds,
        recovery=recovery,
    )
