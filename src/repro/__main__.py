"""Command-line entry point: regenerate the paper's Figure 1.

    python -m repro [--n N] [--degree D] [--block B] [--lookups L] [--seed S]

Prints the comparison table of linear-space constant-time dictionaries —
paper bounds next to I/O counts measured on the simulator.
"""

from __future__ import annotations

import argparse

from repro.analysis.figure1 import figure1_text, run_figure1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description=(
            "Regenerate Figure 1 of 'Deterministic load balancing and "
            "dictionaries in the parallel disk model' (SPAA 2006)."
        ),
    )
    parser.add_argument("--n", type=int, default=512, help="keys stored")
    parser.add_argument(
        "--degree", type=int, default=20, help="expander degree d (= disks)"
    )
    parser.add_argument(
        "--block", type=int, default=32, help="block capacity B in items"
    )
    parser.add_argument(
        "--lookups", type=int, default=1000, help="lookup mix size"
    )
    parser.add_argument("--sigma", type=int, default=48, help="record bits")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--no-btree", action="store_true", help="omit the B-tree context row"
    )
    args = parser.parse_args(argv)

    rows = run_figure1(
        n=args.n,
        degree=args.degree,
        block_items=args.block,
        lookups=args.lookups,
        sigma=args.sigma,
        seed=args.seed,
        include_btree=not args.no_btree,
    )
    print(figure1_text(rows))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
