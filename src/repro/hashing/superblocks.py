"""Deprecated location of :class:`~repro.pdm.superblocks.SuperblockArray`.

Superblocks are pure PDM storage layout ("the disks considered as a single
disk with block size BD", Section 1.1) and are used well outside the
hashing baselines (e.g. the pointer store and the B-tree), so the class
moved to :mod:`repro.pdm.superblocks`.  This shim keeps old imports
working; new code should import from ``repro.pdm``.
"""

from repro.pdm.superblocks import SuperblockArray

__all__ = ["SuperblockArray"]
