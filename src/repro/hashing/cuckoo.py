"""Cuckoo hashing [13] on the parallel disk model (Figure 1 row "[13]").

Two tables, each striped over half the disks, so a key's two nests are read
in **one** parallel I/O and each nest spans ``BD/2`` items — the paper's
"bandwidth ``BD/2``, using a single parallel I/O".  Updates are the classic
eviction walk: amortized expected O(1), but a single insertion can trigger a
long walk or a full rehash — exactly the worst-case behaviour the
deterministic structures avoid.  The rehash count and walk-length histogram
are exposed for the benchmarks.
"""

from __future__ import annotations

import math
from typing import Any, Dict, List, Optional, Tuple

from repro.core.interface import CapacityExceeded, Dictionary, LookupResult
from repro.hashing.families import PolynomialHashFamily
from repro.pdm.superblocks import SuperblockArray
from repro.pdm.iostats import OpCost, measure
from repro.pdm.machine import AbstractDiskMachine


class CuckooDictionary(Dictionary):
    """Two-table cuckoo hashing; one nest per table, one key per nest."""

    MAX_WALK_FACTOR = 16  # walk limit: MAX_WALK_FACTOR * ceil(log2 n)

    def __init__(
        self,
        machine: AbstractDiskMachine,
        *,
        universe_size: int,
        capacity: int,
        load_slack: float = 2.5,
        independence: Optional[int] = None,
        seed: int = 0,
        disk_offset: int = 0,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        group = machine.num_disks - disk_offset
        if group < 2:
            raise ValueError("cuckoo hashing needs at least two disks")
        self.machine = machine
        self.universe_size = universe_size
        self.capacity = capacity
        half = group // 2
        cells = max(2, math.ceil(load_slack * capacity / 2))
        self.tables: List[SuperblockArray] = [
            SuperblockArray(
                machine,
                num_superblocks=cells,
                disk_offset=disk_offset,
                width=half,
            ),
            SuperblockArray(
                machine,
                num_superblocks=cells,
                disk_offset=disk_offset + half,
                width=half,
            ),
        ]
        if independence is None:
            independence = max(2, math.ceil(math.log2(max(capacity, 2))))
        self.seed = seed
        self.independence = independence
        self._new_hashes(0)
        machine.memory.charge(2 * self.hashes[0].description_words)
        self.size = 0
        self.rehashes = 0
        self.walk_histogram: Dict[int, int] = {}  # detlint: guarded(owner-lane) -- instrumentation counters; updates are owner-serialized

    def _new_hashes(self, attempt: int) -> None:
        cells = self.tables[0].num_superblocks
        self.hashes = [
            PolynomialHashFamily(
                universe_size=self.universe_size,
                range_size=cells,
                independence=self.independence,
                seed=self.seed + 2 * attempt,
            ),
            PolynomialHashFamily(
                universe_size=self.universe_size,
                range_size=cells,
                independence=self.independence,
                seed=self.seed + 2 * attempt + 1,
            ),
        ]

    @property
    def max_walk(self) -> int:
        return self.MAX_WALK_FACTOR * max(
            1, math.ceil(math.log2(max(self.capacity, 2)))
        )

    # -- nest access -----------------------------------------------------------

    def _read_both(self, key: int) -> Tuple[List[Any], List[Any]]:
        """Read both nests in one parallel I/O (they live on disjoint disk
        halves, so the batch is one block per disk)."""
        j0, j1 = self.hashes[0](key), self.hashes[1](key)
        addrs0 = self.tables[0]._addrs(j0)
        addrs1 = self.tables[1]._addrs(j1)
        blocks = self.machine.read_blocks(addrs0 + addrs1)

        def gather(addrs):
            items: List[Any] = []
            for addr in addrs:
                payload = blocks[addr].payload
                if payload:
                    items.extend(payload)
            return items

        return gather(addrs0), gather(addrs1)

    # -- operations --------------------------------------------------------------

    def lookup(self, key: int) -> LookupResult:
        self._check_key(key)
        with measure(self.machine) as m:
            nest0, nest1 = self._read_both(key)
        for nest in (nest0, nest1):
            for (k2, v) in nest:
                if k2 == key:
                    return LookupResult(True, v, m.cost)
        return LookupResult(False, None, m.cost)

    def insert(self, key: int, value: Any = None) -> OpCost:
        self._check_key(key)
        with measure(self.machine) as m:
            nest0, nest1 = self._read_both(key)
            updated = False
            for t, nest in ((0, nest0), (1, nest1)):
                if any(k2 == key for (k2, _v) in nest):
                    self.tables[t].write({self.hashes[t](key): [(key, value)]})
                    updated = True
                    break
            if not updated:
                if self.size >= self.capacity:
                    raise CapacityExceeded(
                        f"table at capacity N={self.capacity}"
                    )
                self._place(key, value, nest_hint=(nest0, nest1))
                self.size += 1
        return m.cost

    def _place(self, key: int, value: Any, *, nest_hint=None) -> None:
        """The eviction walk.  ``nest_hint`` reuses the probe the caller
        already paid for."""
        current = (key, value)
        table = 0
        for step in range(self.max_walk):
            j = self.hashes[table](current[0])
            if nest_hint is not None and step == 0:
                occupants = nest_hint[0]
            else:
                occupants = self.tables[table].read([j])[j]
            if not occupants:
                self.tables[table].write({j: [current]})
                self.walk_histogram[step] = (
                    self.walk_histogram.get(step, 0) + 1
                )
                return
            evicted = occupants[0]
            self.tables[table].write({j: [current]})
            current = evicted
            table = 1 - table
        self._rehash(extra=current)

    def _rehash(self, extra: Optional[Tuple[int, Any]] = None) -> None:
        """Full rebuild with fresh hash functions (counted; rare)."""
        self.rehashes += 1
        items: List[Tuple[int, Any]] = []
        for table in self.tables:
            for j in range(table.num_superblocks):
                occupants = table.read([j])[j]
                items.extend(occupants)
                if occupants:
                    table.write({j: []})
        if extra is not None:
            items.append(extra)
        self._new_hashes(self.rehashes)
        for (k2, v) in items:
            self._place(k2, v)

    def delete(self, key: int) -> OpCost:
        self._check_key(key)
        with measure(self.machine) as m:
            for t in (0, 1):
                j = self.hashes[t](key)
                occupants = self.tables[t].read([j])[j]
                if any(k2 == key for (k2, _v) in occupants):
                    self.tables[t].write({j: []})
                    self.size -= 1
                    break
        return m.cost

    def stored_keys(self):
        for table in self.tables:
            for j in range(table.num_superblocks):
                for (k2, _v) in table.peek(j):
                    yield k2

    def __len__(self) -> int:
        return self.size
