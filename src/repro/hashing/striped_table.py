"""Hashing with striping (Figure 1 row "Hashing, no overflow").

The ``D`` disks are treated as one disk with block size ``BD``.  A linear
space hash table (with a suitable constant) over superblocks of ``BD`` items
has no overflowing superblocks with high probability once
``BD = Omega(log n)`` — so lookups take 1 I/O *whp* and updates 2 *whp*.

The *worst case* is what the paper holds against hashing: our implementation
resolves an overflowing superblock by linear probing to the following
superblocks, each step a further parallel I/O — with adversarial keys this
degrades toward the ``n / B^{O(1)}`` worst case hashing cannot avoid.
Benchmarks surface both the (near-ideal) random-key averages and the probe
histogram.
"""

from __future__ import annotations

import math
from typing import Any, Optional, Tuple

from repro.core.interface import CapacityExceeded, Dictionary, LookupResult
from repro.hashing.families import PolynomialHashFamily
from repro.pdm.superblocks import SuperblockArray
from repro.pdm.iostats import OpCost, measure
from repro.pdm.machine import AbstractDiskMachine


class StripedHashTable(Dictionary):
    """Linear-space hash table over ``BD``-item superblocks."""

    def __init__(
        self,
        machine: AbstractDiskMachine,
        *,
        universe_size: int,
        capacity: int,
        load_slack: float = 2.0,
        independence: Optional[int] = None,
        seed: int = 0,
        disk_offset: int = 0,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.machine = machine
        self.universe_size = universe_size
        self.capacity = capacity
        width = machine.num_disks - disk_offset
        superblock_items = width * machine.block_items
        num_superblocks = max(
            2, math.ceil(load_slack * capacity / superblock_items)
        )
        self.table = SuperblockArray(
            machine,
            num_superblocks=num_superblocks,
            disk_offset=disk_offset,
        )
        if independence is None:
            independence = max(2, math.ceil(math.log2(max(capacity, 2))))
        self.hash = PolynomialHashFamily(
            universe_size=universe_size,
            range_size=num_superblocks,
            independence=independence,
            seed=seed,
        )
        machine.memory.charge(self.hash.description_words)
        self.size = 0
        self.probe_histogram: dict[int, int] = {}  # detlint: guarded(owner-lane) -- instrumentation counters; updates are owner-serialized

    def _probe(self, key: int):
        """Yield superblock indices in probe order (linear probing)."""
        start = self.hash(key)
        for step in range(self.table.num_superblocks):
            yield (start + step) % self.table.num_superblocks

    def _note_probes(self, count: int) -> None:
        self.probe_histogram[count] = self.probe_histogram.get(count, 0) + 1

    def lookup(self, key: int) -> LookupResult:
        self._check_key(key)
        with measure(self.machine) as m:
            probes = 0
            value = None
            found = False
            for j in self._probe(key):
                items = self.table.read([j])[j]
                probes += 1
                for (k2, v) in items:
                    if k2 == key:
                        found, value = True, v
                        break
                if found or len(items) < self.table.capacity_items:
                    break  # a non-full superblock ends the probe chain
        self._note_probes(probes)
        return LookupResult(found, value, m.cost)

    def insert(self, key: int, value: Any = None) -> OpCost:
        self._check_key(key)
        with measure(self.machine) as m:
            placed = False
            for j in self._probe(key):
                items = self.table.read([j])[j]
                idx = next(
                    (i for i, (k2, _v) in enumerate(items) if k2 == key), None
                )
                if idx is not None:
                    items[idx] = (key, value)
                    self.table.write({j: items})
                    placed = True
                    break
                if len(items) < self.table.capacity_items:
                    if self.size >= self.capacity:
                        raise CapacityExceeded(
                            f"table at capacity N={self.capacity}"
                        )
                    items.append((key, value))
                    self.table.write({j: items})
                    self.size += 1
                    placed = True
                    break
            if not placed:
                raise CapacityExceeded("all probe superblocks are full")
        return m.cost

    def delete(self, key: int) -> OpCost:
        # Deletions use tombstones so linear-probe chains stay intact.
        self._check_key(key)
        with measure(self.machine) as m:
            for j in self._probe(key):
                items = self.table.read([j])[j]
                idx = next(
                    (i for i, (k2, _v) in enumerate(items) if k2 == key), None
                )
                if idx is not None:
                    items[idx] = (None, None)  # tombstone
                    self.table.write({j: items})
                    self.size -= 1
                    break
                if len(items) < self.table.capacity_items:
                    break
        return m.cost

    def stored_keys(self):
        for j in range(self.table.num_superblocks):
            for (k2, _v) in self.table.peek(j):
                if k2 is not None:
                    yield k2

    def max_superblock_load(self) -> int:
        occ = self.table.occupancy()
        return max(occ.values()) if occ else 0

    def __len__(self) -> int:
        return self.size
