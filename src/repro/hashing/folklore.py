"""The folklore "[7] + trick" dictionary (Figure 1 row "[7] + trick").

From Section 1.1: "Keep a hash table storing all keys that do not collide
with another key (in that hash table), and mark all locations for which
there is a collision.  The remaining keys are stored using the algorithm of
[7].  The fraction of searches and updates that need to go to the dictionary
of [7] can be made arbitrarily small by choosing the hash table size with a
suitably large constant on the linear term."

Primary table: one key per superblock-cell (full ``Theta(BD)`` bandwidth);
collided cells carry a permanent mark.  A lookup reads the primary cell
(1 I/O) and only follows to the secondary [7] dictionary when the cell is
marked — giving ``1 + ɛ`` average lookups / ``2 + ɛ`` average updates whp,
with ``ɛ ~ 1 / load_slack``.
"""

from __future__ import annotations

import math
from typing import Any, Optional

from repro.core.interface import CapacityExceeded, Dictionary, LookupResult
from repro.hashing.dgmp import DGMPDictionary
from repro.hashing.families import PolynomialHashFamily
from repro.pdm.superblocks import SuperblockArray
from repro.pdm.iostats import OpCost, measure
from repro.pdm.machine import AbstractDiskMachine

_MARK = "<collision>"


class FolkloreDictionary(Dictionary):
    """Primary 1-key-per-cell table with a [7] dictionary behind it."""

    def __init__(
        self,
        machine: AbstractDiskMachine,
        *,
        universe_size: int,
        capacity: int,
        load_slack: float = 8.0,
        independence: Optional[int] = None,
        seed: int = 0,
        disk_offset: int = 0,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.machine = machine
        self.universe_size = universe_size
        self.capacity = capacity
        cells = max(2, math.ceil(load_slack * capacity))
        self.primary = SuperblockArray(
            machine, num_superblocks=cells, disk_offset=disk_offset
        )
        if independence is None:
            independence = max(2, math.ceil(math.log2(max(capacity, 2))))
        self.hash = PolynomialHashFamily(
            universe_size=universe_size,
            range_size=cells,
            independence=independence,
            seed=seed,
        )
        machine.memory.charge(self.hash.description_words)
        # The secondary stores the colliding minority; give it full capacity
        # so adversarial inputs degrade gracefully rather than fail.
        self.secondary = DGMPDictionary(
            machine,
            universe_size=universe_size,
            capacity=capacity,
            seed=seed + 1,
            disk_offset=disk_offset,
        )
        self.size = 0
        self.secondary_lookups = 0
        self.primary_lookups = 0

    def lookup(self, key: int) -> LookupResult:
        self._check_key(key)
        self.primary_lookups += 1
        with measure(self.machine) as m:
            j = self.hash(key)
            cell = self.primary.read([j])[j]
        if cell and cell[0][0] == _MARK:
            self.secondary_lookups += 1
            result = self.secondary.lookup(key)
            return LookupResult(
                result.found, result.value, m.cost + result.cost
            )
        for (k2, v) in cell:
            if k2 == key:
                return LookupResult(True, v, m.cost)
        return LookupResult(False, None, m.cost)

    def insert(self, key: int, value: Any = None) -> OpCost:
        self._check_key(key)
        with measure(self.machine) as m:
            j = self.hash(key)
            cell = self.primary.read([j])[j]
            if cell and cell[0][0] == _MARK:
                # Marked cell: the key belongs to the secondary.
                found = self.secondary.contains(key)
                if not found and self.size >= self.capacity:
                    raise CapacityExceeded(
                        f"dictionary at capacity N={self.capacity}"
                    )
                self.secondary.insert(key, value)
                if not found:
                    self.size += 1
            elif not cell:
                if self.size >= self.capacity:
                    raise CapacityExceeded(
                        f"dictionary at capacity N={self.capacity}"
                    )
                self.primary.write({j: [(key, value)]})
                self.size += 1
            else:
                resident_key, resident_value = cell[0]
                if resident_key == key:
                    self.primary.write({j: [(key, value)]})
                else:
                    # First collision on this cell: mark it and demote both
                    # keys to the secondary dictionary.
                    if self.size >= self.capacity:
                        raise CapacityExceeded(
                            f"dictionary at capacity N={self.capacity}"
                        )
                    self.primary.write({j: [(_MARK, None)]})
                    self.secondary.insert(resident_key, resident_value)
                    self.secondary.insert(key, value)
                    self.size += 1
        return m.cost

    def delete(self, key: int) -> OpCost:
        self._check_key(key)
        with measure(self.machine) as m:
            j = self.hash(key)
            cell = self.primary.read([j])[j]
            if cell and cell[0][0] == _MARK:
                if self.secondary.contains(key):
                    self.secondary.delete(key)
                    self.size -= 1
            elif cell and cell[0][0] == key:
                self.primary.write({j: []})
                self.size -= 1
        return m.cost

    def stored_keys(self):
        for j in range(self.primary.num_superblocks):
            for (k2, _v) in self.primary.peek(j):
                if k2 != _MARK:
                    yield k2
        yield from self.secondary.stored_keys()

    @property
    def secondary_fraction(self) -> float:
        """Measured fraction of lookups that fell through to [7] — the ɛ."""
        if not self.primary_lookups:
            return 0.0
        return self.secondary_lookups / self.primary_lookups

    def __len__(self) -> int:
        return self.size
