"""The dictionary of Dietzfelbinger, Gil, Matias and Pippenger [7]
(Figure 1 row "[7]"): O(1) I/Os per operation *with high probability*.

"Polynomial hash functions are reliable": with an ``O(log n)``-wise
independent polynomial function over a table of superblocks, no bucket
overflows whp; the (polynomially unlikely) failure is repaired by drawing a
fresh function and rebuilding — the event whose cost the deterministic
structures eliminate.  Lookups read exactly the hashed superblock (1 I/O);
updates read then write it (2 I/Os); the rebuild counter and its I/O cost
are exposed so benchmarks can report the "whp" asterisk quantitatively.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Optional

from repro.core.interface import CapacityExceeded, Dictionary, LookupResult
from repro.hashing.families import PolynomialHashFamily
from repro.pdm.superblocks import SuperblockArray
from repro.pdm.iostats import OpCost, measure
from repro.pdm.machine import AbstractDiskMachine


class DGMPDictionary(Dictionary):
    """Bucketed hashing with rebuild-on-overflow."""

    def __init__(
        self,
        machine: AbstractDiskMachine,
        *,
        universe_size: int,
        capacity: int,
        load_slack: float = 2.0,
        independence: Optional[int] = None,
        seed: int = 0,
        disk_offset: int = 0,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.machine = machine
        self.universe_size = universe_size
        self.capacity = capacity
        self.seed = seed
        width = machine.num_disks - disk_offset
        superblock_items = width * machine.block_items
        num_superblocks = max(
            2, math.ceil(load_slack * capacity / superblock_items)
        )
        self.table = SuperblockArray(
            machine,
            num_superblocks=num_superblocks,
            disk_offset=disk_offset,
        )
        if independence is None:
            independence = max(2, math.ceil(math.log2(max(capacity, 2))))
        self.independence = independence
        self.hash = PolynomialHashFamily(
            universe_size=universe_size,
            range_size=num_superblocks,
            independence=independence,
            seed=seed,
        )
        machine.memory.charge(self.hash.description_words)
        self.size = 0
        self.rebuilds = 0
        self.rebuild_cost = OpCost.zero()

    def lookup(self, key: int) -> LookupResult:
        self._check_key(key)
        with measure(self.machine) as m:
            j = self.hash(key)
            items = self.table.read([j])[j]
        for (k2, v) in items:
            if k2 == key:
                return LookupResult(True, v, m.cost)
        return LookupResult(False, None, m.cost)

    def insert(self, key: int, value: Any = None) -> OpCost:
        self._check_key(key)
        with measure(self.machine) as m:
            self._insert_inner(key, value, allow_rebuild=True)
        return m.cost

    def _insert_inner(
        self, key: int, value: Any, *, allow_rebuild: bool
    ) -> None:
        j = self.hash(key)
        items = self.table.read([j])[j]
        idx = next((i for i, (k2, _v) in enumerate(items) if k2 == key), None)
        if idx is not None:
            items[idx] = (key, value)
            self.table.write({j: items})
            return
        if self.size >= self.capacity:
            raise CapacityExceeded(f"table at capacity N={self.capacity}")
        if len(items) >= self.table.capacity_items:
            if not allow_rebuild:
                raise CapacityExceeded(
                    "bucket overflow persists across rebuilds"
                )
            self._rebuild(pending=(key, value))
            return
        items.append((key, value))
        self.table.write({j: items})
        self.size += 1

    def _rebuild(self, pending: Optional[tuple] = None) -> None:
        """Draw a fresh hash function and reinsert everything (whp never
        needed; counted when it is)."""
        self.rebuilds += 1
        snap = self.machine.stats.snapshot()
        items = []
        for j in range(self.table.num_superblocks):
            occupants = self.table.read([j])[j]
            items.extend(occupants)
            if occupants:
                self.table.write({j: []})
        if pending is not None:
            items.append(pending)
        self.hash = self.hash.rehashed(self.rebuilds)
        self.size = 0
        for (k2, v) in items:
            self._insert_inner(k2, v, allow_rebuild=self.rebuilds < 32)
        self.rebuild_cost = self.rebuild_cost + self.machine.stats.since(snap)

    def delete(self, key: int) -> OpCost:
        self._check_key(key)
        with measure(self.machine) as m:
            j = self.hash(key)
            items = self.table.read([j])[j]
            kept = [(k2, v) for (k2, v) in items if k2 != key]
            if len(kept) != len(items):
                self.table.write({j: kept})
                self.size -= 1
        return m.cost

    def stored_keys(self):
        for j in range(self.table.num_superblocks):
            for (k2, _v) in self.table.peek(j):
                yield k2

    def __len__(self) -> int:
        return self.size
