"""Randomized hashing baselines (the comparison rows of Figure 1).

All implemented on the same PDM simulator and the same
:class:`~repro.core.interface.Dictionary` interface as the paper's
deterministic structures, so the Figure 1 benchmark drives everything
uniformly:

* :mod:`~repro.hashing.families` — ``O(log n)``-wise independent polynomial
  hash functions over a prime field (the "explicit, efficiently
  implementable" functions whose descriptions fit in internal memory).
* :mod:`~repro.hashing.striped_table` — hashing with striping: the disks
  treated as one disk with block size ``BD``; with ``BD = Omega(log n)`` a
  linear-space table has no overflowing superblocks whp (Figure 1 row
  "Hashing, no overflow"; worst case still ``n / B^O(1)`` I/Os).
* :mod:`~repro.hashing.cuckoo` — cuckoo hashing [13]: lookups in one
  parallel I/O with bandwidth ``BD/2``, amortized expected constant updates.
* :mod:`~repro.hashing.dgmp` — the dictionary of Dietzfelbinger et al. [7]:
  O(1) I/Os per operation with high probability (rebuild on the rare
  failure).
* :mod:`~repro.hashing.folklore` — the "[7] + trick" construction: a
  collision-marked primary table backed by [7], pushing the *average* cost
  to ``1 + ɛ`` lookups / ``2 + ɛ`` updates with bandwidth ``Theta(BD)``.
"""

from repro.hashing.families import PolynomialHashFamily
from repro.hashing.striped_table import StripedHashTable
from repro.hashing.cuckoo import CuckooDictionary
from repro.hashing.dgmp import DGMPDictionary
from repro.hashing.folklore import FolkloreDictionary

__all__ = [
    "PolynomialHashFamily",
    "StripedHashTable",
    "CuckooDictionary",
    "DGMPDictionary",
    "FolkloreDictionary",
]
