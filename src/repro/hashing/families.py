"""k-wise independent polynomial hash families.

The paper's Section 1.1: with internal memory for ``O(log n)`` keys one can
store ``O(log n)``-wise independent hash functions, for which "a large range
of hashing algorithms can be shown to work well" [14, 15].  The classical
construction: a degree-``(k-1)`` polynomial with uniformly random
coefficients over a prime field ``GF(p)``, ``p > u``, evaluated by Horner's
rule and reduced to the table range.

Deterministic given its seed; its description (the ``k`` coefficients) is
charged to internal memory by callers via :attr:`description_words`.

Coefficients are derived from the seed with the repository's canonical
:func:`~repro.bits.mix.splitmix64` mixer rather than ``random.Random``:
the family is then a pure function of ``(seed, universe, range, k)`` with
no dependence on any PRNG implementation, and ``detlint`` (rule DET001)
can verify mechanically that no module-level RNG state is involved.
"""

from __future__ import annotations

from typing import List

from repro.bits.mix import derive, splitmix64


def _next_prime(n: int) -> int:
    """Smallest prime >= n (trial division — called once per family)."""

    def is_prime(m: int) -> bool:
        if m < 2:
            return False
        if m % 2 == 0:
            return m == 2
        f = 3
        while f * f <= m:
            if m % f == 0:
                return False
            f += 2
        return True

    candidate = max(2, n)
    while not is_prime(candidate):
        candidate += 1
    return candidate


class PolynomialHashFamily:
    """One member of the degree-``(k-1)`` polynomial family.

    ``h(x) = (sum_i a_i x^i mod p) mod range_size`` — ``k``-wise independent
    over ``GF(p)`` (the mod-range reduction costs the usual small
    non-uniformity, irrelevant at our load factors).
    """

    def __init__(
        self,
        *,
        universe_size: int,
        range_size: int,
        independence: int = 8,
        seed: int = 0,
    ):
        if universe_size <= 0 or range_size <= 0:
            raise ValueError("universe and range sizes must be positive")
        if independence < 2:
            raise ValueError(
                f"independence must be at least 2, got {independence}"
            )
        self.universe_size = universe_size
        self.range_size = range_size
        self.independence = independence
        self.seed = seed
        self.p = _next_prime(max(universe_size, range_size, 2))
        # 128 mixed bits per coefficient: the mod-p bias is ~p/2^128,
        # irrelevant even for universe-sized primes.
        base = derive(seed, universe_size, range_size, independence)
        coeffs: List[int] = [
            ((splitmix64(base + 2 * i) << 64) | splitmix64(base + 2 * i + 1))
            % self.p
            for i in range(independence)
        ]
        if all(c == 0 for c in coeffs[1:]):
            coeffs[1] = 1  # keep the map non-constant
        self.coeffs = coeffs

    @property
    def description_words(self) -> int:
        """Internal-memory footprint: the coefficients plus the modulus."""
        return self.independence + 1

    def __call__(self, x: int) -> int:
        acc = 0
        for a in reversed(self.coeffs):
            acc = (acc * x + a) % self.p
        return acc % self.range_size

    def hash_batch(self, keys, kernel=None) -> List[int]:
        """``[h(x) for x in keys]`` in one bulk evaluation.

        A batch kernel evaluates the Horner recurrence over flat lanes;
        the kernel property suite pins every backend element-for-element
        to :meth:`__call__`, so results are identical either way.
        """
        if kernel is None:
            return [self(x) for x in keys]
        return kernel.poly_hash(self.coeffs, self.p, self.range_size, keys)

    def rehashed(self, attempt: int) -> "PolynomialHashFamily":
        """A fresh member of the family (for rebuild-on-failure schemes)."""
        return PolynomialHashFamily(
            universe_size=self.universe_size,
            range_size=self.range_size,
            independence=self.independence,
            seed=self.seed + 0x9E3779B9 * (attempt + 1),
        )

    def with_range(self, range_size: int) -> "PolynomialHashFamily":
        """Same coefficients, different table size."""
        clone = object.__new__(PolynomialHashFamily)
        clone.universe_size = self.universe_size
        clone.range_size = range_size
        clone.independence = self.independence
        clone.seed = self.seed
        clone.p = self.p
        clone.coeffs = list(self.coeffs)
        return clone
