"""Deprecated location of :mod:`repro.bounds`.

The closed-form paper bounds are pure math with no dependencies, and
``repro.core`` needs them for parameter selection — an upward import of
``repro.analysis`` from ``repro.core`` would invert the layering that
``detlint`` (rule ARCH201) enforces.  The module therefore moved to the
base layer as :mod:`repro.bounds`; this shim keeps old imports working.
"""

from repro.bounds import (
    btree_height,
    lemma3_max_load,
    lemma4_unique_neighbors,
    lemma5_assignable,
    striping_space_blowup,
    telescope_eps,
    theorem6_case_a_field_bits,
    theorem6_case_a_space_bits,
    theorem6_case_b_field_bits,
    theorem6_case_b_space_bits,
    theorem6_fields_per_key,
    theorem7_avg_reads,
    theorem7_degree_floor,
    theorem7_num_levels,
)

__all__ = [
    "btree_height",
    "lemma3_max_load",
    "lemma4_unique_neighbors",
    "lemma5_assignable",
    "striping_space_blowup",
    "telescope_eps",
    "theorem6_case_a_field_bits",
    "theorem6_case_a_space_bits",
    "theorem6_case_b_field_bits",
    "theorem6_case_b_space_bits",
    "theorem6_fields_per_key",
    "theorem7_avg_reads",
    "theorem7_degree_floor",
    "theorem7_num_levels",
]
