"""Concurrency-friendliness analysis (Section 1.1's claims).

The paper highlights three properties that make its dictionaries "suitable
for an environment with many concurrent lookups and updates":

1. no index structure / central directory — operations go straight to the
   relevant blocks;
2. fixed capacity + no deletions => no piece of data ever moves once
   inserted (stable references);
3. small, disjoint write footprints simplify locking.

This module quantifies (3) and supports measuring (1)–(2): using the
machine tracer it captures each operation's read/write *footprint* (the
block set a lock manager would have to latch) and computes pairwise
conflict rates between concurrent operations.
"""

from __future__ import annotations

from typing import Callable, List, Sequence, Set, Tuple

from repro.pdm.trace import TraceRecorder, attach, detach

Addr = Tuple[int, int]


def footprint_of(machine, operation: Callable[[], object]) -> Tuple[
    Set[Addr], Set[Addr]
]:
    """Run ``operation`` under tracing; return (read set, write set)."""
    recorder = attach(machine)
    try:
        operation()
    finally:
        detach(machine)
    return recorder.read_footprint(), recorder.write_footprint()


def footprints(
    machine, operations: Sequence[Callable[[], object]]
) -> List[Tuple[Set[Addr], Set[Addr]]]:
    return [footprint_of(machine, op) for op in operations]


def conflict_rate(
    prints: Sequence[Tuple[Set[Addr], Set[Addr]]],
    *,
    mode: str = "write-write",
) -> float:
    """Fraction of operation pairs whose footprints conflict.

    ``mode``: ``"write-write"`` (two writers latch the same block) or
    ``"read-write"`` (a reader would block behind a writer too).
    """
    if mode not in ("write-write", "read-write"):
        raise ValueError(f"unknown mode {mode!r}")
    n = len(prints)
    if n < 2:
        return 0.0
    conflicts = 0
    pairs = 0
    for i in range(n):
        ri, wi = prints[i]
        for j in range(i + 1, n):
            rj, wj = prints[j]
            pairs += 1
            if wi & wj:
                conflicts += 1
            elif mode == "read-write" and ((wi & rj) or (wj & ri)):
                conflicts += 1
    return conflicts / pairs


def max_block_contention(
    prints: Sequence[Tuple[Set[Addr], Set[Addr]]]
) -> int:
    """The hottest block: how many of the traced operations write it.
    A central directory (e.g. a B-tree root) shows up here immediately."""
    counts: dict = {}
    for _reads, writes in prints:
        for addr in writes:
            counts[addr] = counts.get(addr, 0) + 1
    return max(counts.values()) if counts else 0
