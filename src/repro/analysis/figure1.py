"""Regenerating Figure 1: old and new results for linear-space dictionaries
with constant time per operation.

Every row of the paper's comparison table is instantiated on its own machine
with the same geometry (``n`` keys, ``B``-item blocks, the row's disk
requirement) and driven through the same workload: insert ``n`` keys, then a
lookup stream of hits and misses.  The table reports, per method:

* the paper's claimed lookup/update I/Os and bandwidth (verbatim);
* measured average and worst-case I/Os for hits, misses and updates.

The paper's qualitative claims to check against the output:

* [7] and §4.1 hit O(1) on everything — but only §4.1's bound is worst-case;
* striped hashing and §4.1-one-probe do lookups in exactly 1 I/O (whp vs
  always), updates in 2;
* cuckoo [13] does 1-I/O lookups with bandwidth ``BD/2`` but its update
  *worst case* spikes (eviction walks / rehash);
* "[7] + trick" and §4.3 trade ``ɛ`` average overhead for ``Theta(BD)``
  bandwidth — the former whp, the latter deterministically with an
  ``O(log n)`` worst case.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.analysis.reporting import render_table
from repro.btree import BTreeDictionary
from repro.core import (
    BasicDictionary,
    DynamicDictionary,
    StaticDictionary,
)
from repro.core.interface import Dictionary
from repro.hashing import (
    CuckooDictionary,
    DGMPDictionary,
    FolkloreDictionary,
    StripedHashTable,
)
from repro.pdm.machine import ParallelDiskMachine
from repro.workloads.access import hit_miss_mix, uniform_accesses
from repro.workloads.keys import uniform_keys


@dataclass
class Figure1Row:
    method: str
    paper_lookup: str
    paper_update: str
    paper_bandwidth: str
    conditions: str
    deterministic: bool
    hit_avg: float = 0.0
    hit_worst: int = 0
    miss_avg: float = 0.0
    update_avg: float = 0.0
    update_worst: int = 0

    def cells(self) -> List:
        return [
            self.method,
            self.paper_lookup,
            self.paper_update,
            self.paper_bandwidth,
            self.hit_avg,
            self.hit_worst,
            self.miss_avg,
            self.update_avg,
            self.update_worst,
            "yes" if self.deterministic else "no",
            self.conditions,
        ]


HEADERS = [
    "method",
    "paper lookup",
    "paper update",
    "paper bw",
    "hit avg",
    "hit wc",
    "miss avg",
    "upd avg",
    "upd wc",
    "det.",
    "conditions",
]


def _measure(
    dictionary: Dictionary,
    keys: Sequence[int],
    values: Dict[int, int],
    lookups: Sequence[int],
    *,
    static: bool = False,
) -> Tuple[float, int, float, float, int]:
    """Insert (unless static) and look up; return the five measured cells."""
    update_costs: List[int] = []
    if not static:
        for key in keys:
            update_costs.append(dictionary.insert(key, values[key]).total_ios)
    hit_costs: List[int] = []
    miss_costs: List[int] = []
    present = set(keys)
    for probe in lookups:
        result = dictionary.lookup(probe)
        if probe in present:
            assert result.found and result.value == values[probe], (
                f"{type(dictionary).__name__} returned wrong value for "
                f"{probe}"
            )
            hit_costs.append(result.cost.total_ios)
        else:
            assert not result.found
            miss_costs.append(result.cost.total_ios)
    return (
        sum(hit_costs) / len(hit_costs) if hit_costs else 0.0,
        max(hit_costs) if hit_costs else 0,
        sum(miss_costs) / len(miss_costs) if miss_costs else 0.0,
        sum(update_costs) / len(update_costs) if update_costs else 0.0,
        max(update_costs) if update_costs else 0,
    )


def run_figure1(
    *,
    n: int = 1024,
    universe_size: int = 1 << 20,
    block_items: int = 32,
    degree: Optional[int] = None,
    sigma: int = 48,
    lookups: int = 2000,
    hit_fraction: float = 0.5,
    seed: int = 0,
    include_btree: bool = True,
) -> List[Figure1Row]:
    """Build every Figure 1 method and measure it.  Returns the rows in the
    paper's order (plus, optionally, a B-tree context row)."""
    if degree is None:
        degree = max(8, 2 * math.ceil(math.log2(universe_size)))
    d = degree
    keys = uniform_keys(universe_size, n, seed=seed)
    values = {k: (k * 2654435761) % (1 << sigma) for k in keys}
    probes = hit_miss_mix(
        keys, universe_size, lookups, hit_fraction=hit_fraction, seed=seed + 1
    )

    def machine(disks: int) -> ParallelDiskMachine:
        return ParallelDiskMachine(disks, block_items)

    rows: List[Figure1Row] = []

    # --- [7]: Dietzfelbinger et al. -------------------------------------------
    dgmp = DGMPDictionary(
        machine(d), universe_size=universe_size, capacity=n, seed=seed
    )
    row = Figure1Row(
        "[7] DGMP",
        "O(1) whp.",
        "O(1) whp.",
        "-",
        "-",
        deterministic=False,
    )
    (row.hit_avg, row.hit_worst, row.miss_avg, row.update_avg,
     row.update_worst) = _measure(dgmp, keys, values, probes)
    rows.append(row)

    # --- Section 4.1 -----------------------------------------------------------
    basic = BasicDictionary(
        machine(d),
        universe_size=universe_size,
        capacity=n,
        degree=d,
        seed=seed,
    )
    row = Figure1Row(
        "S4.1 basic",
        "O(1)",
        "O(1)",
        "-",
        "D = Omega(log u)",
        deterministic=True,
    )
    (row.hit_avg, row.hit_worst, row.miss_avg, row.update_avg,
     row.update_worst) = _measure(basic, keys, values, probes)
    rows.append(row)

    # --- Hashing with striping, no overflow -------------------------------------
    striped = StripedHashTable(
        machine(d), universe_size=universe_size, capacity=n, seed=seed
    )
    row = Figure1Row(
        "Hashing striped",
        "1 whp.",
        "2 whp.",
        "O(BD/log n)",
        "BD = Omega(log n)",
        deterministic=False,
    )
    (row.hit_avg, row.hit_worst, row.miss_avg, row.update_avg,
     row.update_worst) = _measure(striped, keys, values, probes)
    rows.append(row)

    # --- Section 4.1 one-probe variant (static measurement of S4.2) ------------
    static = StaticDictionary.build(
        machine(2 * d),
        values,
        universe_size=universe_size,
        sigma=sigma,
        case="a",
        degree=d,
        seed=seed,
    )
    row = Figure1Row(
        "S4.2 static",
        "1",
        "2",
        "O(BD/log n)",
        "D=Omega(log u), B=Omega(log n)",
        deterministic=True,
    )
    (row.hit_avg, row.hit_worst, row.miss_avg, row.update_avg,
     row.update_worst) = _measure(static, keys, values, probes, static=True)
    rows.append(row)

    # --- [13]: cuckoo hashing ---------------------------------------------------
    cuckoo = CuckooDictionary(
        machine(d), universe_size=universe_size, capacity=n, seed=seed
    )
    row = Figure1Row(
        "[13] cuckoo",
        "1",
        "O(1) am. exp.",
        "O(BD/2)",
        "-",
        deterministic=False,
    )
    (row.hit_avg, row.hit_worst, row.miss_avg, row.update_avg,
     row.update_worst) = _measure(cuckoo, keys, values, probes)
    rows.append(row)

    # --- [7] + trick ---------------------------------------------------------------
    folklore = FolkloreDictionary(
        machine(d), universe_size=universe_size, capacity=n, seed=seed
    )
    row = Figure1Row(
        "[7]+trick",
        "1+eps avg whp.",
        "2+eps avg whp.",
        "O(BD)",
        "-",
        deterministic=False,
    )
    (row.hit_avg, row.hit_worst, row.miss_avg, row.update_avg,
     row.update_worst) = _measure(folklore, keys, values, probes)
    rows.append(row)

    # --- Section 4.3 ------------------------------------------------------------------
    dynamic = DynamicDictionary(
        machine(2 * d),
        universe_size=universe_size,
        capacity=n,
        sigma=sigma,
        degree=d,
        seed=seed,
    )
    row = Figure1Row(
        "S4.3 dynamic",
        "1+eps avg",
        "2+eps avg",
        "O(BD)",
        "D=Omega(log u), B=Omega(log n)",
        deterministic=True,
    )
    (row.hit_avg, row.hit_worst, row.miss_avg, row.update_avg,
     row.update_worst) = _measure(dynamic, keys, values, probes)
    rows.append(row)

    # --- context: the B-tree every file system uses ------------------------------------
    if include_btree:
        btree = BTreeDictionary(
            machine(d), universe_size=universe_size, capacity=n
        )
        row = Figure1Row(
            "B-tree (ctx)",
            "Theta(log_BD n)",
            "Theta(log_BD n)",
            "O(BD)",
            "baseline",
            deterministic=True,
        )
        (row.hit_avg, row.hit_worst, row.miss_avg, row.update_avg,
         row.update_worst) = _measure(btree, keys, values, probes)
        rows.append(row)

    return rows


def figure1_text(rows: Sequence[Figure1Row]) -> str:
    return render_table(HEADERS, [row.cells() for row in rows])
