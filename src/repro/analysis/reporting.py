"""Plain-text table rendering for benchmark reports."""

from __future__ import annotations

from typing import Any, List, Sequence


def render_table(headers: Sequence[str], rows: Sequence[Sequence[Any]]) -> str:
    """Align columns; floats are shown with three decimals."""

    def fmt(cell: Any) -> str:
        if isinstance(cell, float):
            return f"{cell:.3f}"
        return str(cell)

    str_rows: List[List[str]] = [[fmt(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    sep = "  "

    def line(cells: Sequence[str]) -> str:
        return sep.join(cell.ljust(w) for cell, w in zip(cells, widths)).rstrip()

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(row) for row in str_rows)
    return "\n".join(out)
