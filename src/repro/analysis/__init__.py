"""Analysis and reporting: regenerating the paper's Figure 1.

* :mod:`~repro.analysis.figure1` — drives every dictionary (deterministic
  and randomized) through the same workload on identical machines and
  tabulates measured lookup/update I/Os and bandwidth next to the paper's
  claimed bounds.
* :mod:`~repro.analysis.reporting` — plain-text table rendering shared by
  the benchmarks.
"""

from repro.analysis.figure1 import Figure1Row, run_figure1
from repro.analysis.reporting import render_table
from repro.analysis.concurrency import (
    conflict_rate,
    footprint_of,
    footprints,
    max_block_contention,
)
import repro.bounds as bounds

__all__ = [
    "Figure1Row",
    "run_figure1",
    "render_table",
    "conflict_rate",
    "footprint_of",
    "footprints",
    "max_block_contention",
    "bounds",
]
