"""Workload bundles and a shared replay driver.

A :class:`Workload` is a reproducible sequence of dictionary operations;
:func:`replay` drives any :class:`~repro.core.interface.Dictionary` through
it, verifies the answers against a model, and summarises the per-operation
I/O distribution — the shared harness behind several benchmarks and a
convenient user tool for comparing structures on *their* traces.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Literal, Optional, Sequence, Tuple

from repro.core.interface import Dictionary

Op = Tuple[str, int, Optional[int]]  # (kind, key, value-or-None)


@dataclass
class ReplaySummary:
    """Per-kind I/O statistics of one replay.

    In batched mode (``replay(..., batch=N)``) each batch's round cost is
    amortized over its operations — integer shares whose sum is exact — so
    ``avg`` / ``total_ios`` stay comparable with a sequential replay of the
    same workload; ``batches`` counts the batched calls issued.
    """

    operations: int = 0
    errors: int = 0
    batches: int = 0
    ios_by_kind: Dict[str, List[int]] = field(default_factory=dict)

    def record(self, kind: str, ios: int) -> None:
        self.operations += 1
        self.ios_by_kind.setdefault(kind, []).append(ios)

    def avg(self, kind: str) -> float:
        costs = self.ios_by_kind.get(kind, [])
        return sum(costs) / len(costs) if costs else 0.0

    def worst(self, kind: str) -> int:
        costs = self.ios_by_kind.get(kind, [])
        return max(costs) if costs else 0

    @property
    def total_ios(self) -> int:
        return sum(sum(v) for v in self.ios_by_kind.values())


@dataclass(frozen=True)
class Workload:
    """A named, seeded operation sequence over a universe."""

    name: str
    universe_size: int
    ops: Tuple[Op, ...]

    @classmethod
    def generate(
        cls,
        *,
        name: str = "mixed",
        universe_size: int,
        operations: int,
        capacity: int,
        value_bits: int = 32,
        insert_fraction: float = 0.4,
        delete_fraction: float = 0.1,
        seed: int = 0,
    ) -> "Workload":
        """A mixed insert/delete/lookup stream that never exceeds
        ``capacity`` live keys (safe for capacity-bounded structures)."""
        if not 0 <= insert_fraction + delete_fraction <= 1:
            raise ValueError("fractions must sum to at most 1")
        rng = random.Random(seed)
        live: List[int] = []
        live_set = set()
        ops: List[Op] = []
        for _ in range(operations):
            r = rng.random()
            if r < insert_fraction and len(live) < capacity:
                key = rng.randrange(universe_size)
                value = rng.randrange(1 << value_bits)
                ops.append(("insert", key, value))
                if key not in live_set:
                    live_set.add(key)
                    live.append(key)
            elif r < insert_fraction + delete_fraction and live:
                idx = rng.randrange(len(live))
                key = live[idx]
                live[idx] = live[-1]
                live.pop()
                live_set.discard(key)
                ops.append(("delete", key, None))
            else:
                if live and rng.random() < 0.7:
                    key = live[rng.randrange(len(live))]
                else:
                    key = rng.randrange(universe_size)
                ops.append(("lookup", key, None))
        return cls(name=name, universe_size=universe_size, ops=tuple(ops))

    def __len__(self) -> int:
        return len(self.ops)


def replay(
    dictionary: Dictionary,
    workload: Workload,
    *,
    verify: bool = True,
    batch: Optional[int] = None,
) -> ReplaySummary:
    """Drive ``dictionary`` through ``workload``.

    With ``verify=True`` every lookup is checked against a Python dict
    model; a mismatch raises immediately (the replay is also a conformance
    test).

    With ``batch=N`` runs of consecutive same-kind operations are grouped
    into batches of up to ``N`` and executed through the dictionary's
    round-packed ``batch_*`` methods.  Verification still runs per
    operation; per-key typed errors count into ``summary.errors`` (kind
    ``"error"``) instead of aborting the replay.
    """
    if dictionary.universe_size < workload.universe_size:
        raise ValueError(
            "dictionary universe smaller than the workload's"
        )
    if batch is not None and batch < 1:
        raise ValueError(f"batch must be >= 1, got {batch}")
    model: Dict[int, Optional[int]] = {}
    summary = ReplaySummary()
    if batch is None:
        for kind, key, value in workload.ops:
            if kind == "insert":
                cost = dictionary.insert(key, value)
                model[key] = value
                summary.record("insert", cost.total_ios)
            elif kind == "delete":
                cost = dictionary.delete(key)
                model.pop(key, None)
                summary.record("delete", cost.total_ios)
            else:
                result = dictionary.lookup(key)
                if verify:
                    expected = key in model
                    if result.found != expected or (
                        expected and result.value != model[key]
                    ):
                        raise AssertionError(
                            f"replay mismatch on {kind} {key}: dictionary "
                            f"says {result.found}/{result.value!r}, model "
                            f"says {expected}/{model.get(key)!r}"
                        )
                kind_name = "hit" if result.found else "miss"
                summary.record(kind_name, result.cost.total_ios)
        return summary

    for run in _same_kind_runs(workload.ops, batch):
        _replay_batch(dictionary, run, model, summary, verify)
    return summary


def _same_kind_runs(
    ops: Sequence[Op], batch: int
) -> List[List[Op]]:
    """Split an op stream into runs of consecutive same-kind operations,
    each at most ``batch`` long (order preserved)."""
    runs: List[List[Op]] = []
    for op in ops:
        if (
            runs
            and runs[-1][0][0] == op[0]
            and len(runs[-1]) < batch
        ):
            runs[-1].append(op)
        else:
            runs.append([op])
    return runs


def _amortize(total: int, n: int) -> List[int]:
    """Split ``total`` rounds into ``n`` integer shares summing exactly."""
    base, rem = divmod(total, n)
    return [base + 1 if i < rem else base for i in range(n)]


def _replay_batch(
    dictionary: Dictionary,
    run: List[Op],
    model: Dict[int, Optional[int]],
    summary: ReplaySummary,
    verify: bool,
) -> None:
    kind = run[0][0]
    summary.batches += 1
    if kind == "insert":
        items = {key: value for _, key, value in run}
        outcomes, cost = dictionary.batch_insert(items)
        shares = _amortize(cost.total_ios, len(run))
        for (_, key, value), share in zip(run, shares):
            res = outcomes[key]
            if isinstance(res, Exception):
                summary.errors += 1
                summary.record("error", share)
            else:
                model[key] = items[key]  # batch applies last-value-wins
                summary.record("insert", share)
    elif kind == "delete":
        outcomes, cost = dictionary.batch_delete(
            [key for _, key, _ in run]
        )
        shares = _amortize(cost.total_ios, len(run))
        for (_, key, _), share in zip(run, shares):
            res = outcomes[key]
            if isinstance(res, Exception):
                summary.errors += 1
                summary.record("error", share)
            else:
                model.pop(key, None)
                summary.record("delete", share)
    else:
        outcomes, cost = dictionary.batch_lookup(
            [key for _, key, _ in run]
        )
        shares = _amortize(cost.total_ios, len(run))
        for (_, key, _), share in zip(run, shares):
            res = outcomes[key]
            if isinstance(res, Exception):
                summary.errors += 1
                summary.record("error", share)
                continue
            if verify:
                expected = key in model
                if res.found != expected or (
                    expected and res.value != model[key]
                ):
                    raise AssertionError(
                        f"replay mismatch on lookup {key}: dictionary says "
                        f"{res.found}/{res.value!r}, model says "
                        f"{expected}/{model.get(key)!r}"
                    )
            summary.record("hit" if res.found else "miss", share)
