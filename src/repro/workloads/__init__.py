"""Workload generators for tests and benchmarks.

* :mod:`~repro.workloads.keys` — key-set generators: uniform, clustered,
  and hash-adversarial (keys engineered to collide under a given hash
  function, for the worst-case rows of Figure 1).
* :mod:`~repro.workloads.access` — access-pattern generators: uniform,
  Zipf, hit/miss mixes.
* :mod:`~repro.workloads.filesystem` — the paper's motivating application:
  a file system keyed by (file, block number), with random-access and
  webmail-style request streams.
"""

from repro.workloads.keys import (
    uniform_keys,
    clustered_keys,
    adversarial_keys_for_hash,
)
from repro.workloads.access import (
    uniform_accesses,
    zipf_accesses,
    hit_miss_mix,
)
from repro.workloads.filesystem import FileSystemWorkload
from repro.workloads.names import NameCodec
from repro.workloads.replay import ReplaySummary, Workload, replay

__all__ = [
    "NameCodec",
    "ReplaySummary",
    "Workload",
    "replay",
    "uniform_keys",
    "clustered_keys",
    "adversarial_keys_for_hash",
    "uniform_accesses",
    "zipf_accesses",
    "hit_miss_mix",
    "FileSystemWorkload",
]
