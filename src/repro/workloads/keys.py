"""Key-set generators."""

from __future__ import annotations

import random
from typing import Callable, List


def uniform_keys(universe_size: int, n: int, *, seed: int = 0) -> List[int]:
    """``n`` distinct keys drawn uniformly from ``[0, universe_size)``."""
    if n > universe_size:
        raise ValueError(
            f"cannot draw {n} distinct keys from a universe of "
            f"{universe_size}"
        )
    rng = random.Random(seed)
    return rng.sample(range(universe_size), n)


def clustered_keys(
    universe_size: int,
    n: int,
    *,
    clusters: int = 8,
    seed: int = 0,
) -> List[int]:
    """``n`` keys packed into ``clusters`` consecutive runs — the
    sequential-file-id pattern real file systems produce, and a classic
    stress for structures that secretly rely on input randomness."""
    if n > universe_size:
        raise ValueError("more keys than universe")
    rng = random.Random(seed)
    per = -(-n // clusters)
    out: List[int] = []
    taken = set()
    while len(out) < n:
        start = rng.randrange(max(1, universe_size - per))
        for k in range(start, min(start + per, universe_size)):
            if k not in taken:
                taken.add(k)
                out.append(k)
                if len(out) == n:
                    break
    return out


def adversarial_keys_for_hash(
    hash_fn: Callable[[int], int],
    universe_size: int,
    n: int,
    *,
    target: int | None = None,
    scan_limit: int = 2_000_000,
) -> List[int]:
    """``n`` keys that all hash to one value under ``hash_fn`` — the
    adversarial input on which randomized tables degrade to their worst
    case (and against which the deterministic structures are immune, having
    no hidden random choices for an adversary to learn).

    Brute-force scan of the universe; raises if the scan limit is hit first.
    """
    if target is None:
        target = hash_fn(0)
    out: List[int] = []
    for key in range(min(universe_size, scan_limit)):
        if hash_fn(key) == target:
            out.append(key)
            if len(out) == n:
                return out
    raise ValueError(
        f"found only {len(out)} of {n} colliding keys within the scan limit"
    )
