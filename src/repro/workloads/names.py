"""File-name keys (Section 1.2).

"Using a hash table can eliminate the overhead of translating the file
name into an inode... since the name can be easily hashed as well."  The
deterministic dictionaries need integer keys from a bounded universe; this
module provides the injective encoding: a name of at most ``max_len``
bytes (plus a block number) becomes one integer, so *(name, block)* keys go
straight into any dictionary — no inode table, no separate translation
step, exactly the point the paper makes.
"""

from __future__ import annotations

from typing import Tuple


class NameCodec:
    """Injective (name, block) <-> integer key codec."""

    def __init__(self, *, max_name_bytes: int = 16, max_blocks: int = 1 << 20):
        if max_name_bytes <= 0:
            raise ValueError("max_name_bytes must be positive")
        if max_blocks <= 0:
            raise ValueError("max_blocks must be positive")
        self.max_name_bytes = max_name_bytes
        self.max_blocks = max_blocks
        # Length-prefixed big-endian bytes: injective for all lengths.
        self._name_space = 0
        for length in range(max_name_bytes + 1):
            self._name_space += 256**length

    @property
    def universe_size(self) -> int:
        """Size of the flat key universe (all names x all block numbers)."""
        return self._name_space * self.max_blocks

    def encode_name(self, name: str) -> int:
        raw = name.encode("utf-8")
        if len(raw) > self.max_name_bytes:
            raise ValueError(
                f"name {name!r} is {len(raw)} bytes; limit is "
                f"{self.max_name_bytes}"
            )
        # Rank = (number of strictly shorter strings) + value within length.
        rank = sum(256**length for length in range(len(raw)))
        return rank + int.from_bytes(raw, "big")

    def decode_name(self, name_id: int) -> str:
        if not 0 <= name_id < self._name_space:
            raise ValueError(f"name id {name_id} out of range")
        remaining = name_id
        for length in range(self.max_name_bytes + 1):
            count = 256**length
            if remaining < count:
                raw = remaining.to_bytes(length, "big") if length else b""
                return raw.decode("utf-8")
            remaining -= count
        raise AssertionError("unreachable")

    def key(self, name: str, block: int = 0) -> int:
        if not 0 <= block < self.max_blocks:
            raise ValueError(
                f"block {block} out of range [0, {self.max_blocks})"
            )
        return self.encode_name(name) * self.max_blocks + block

    def split(self, key: int) -> Tuple[str, int]:
        name_id, block = divmod(key, self.max_blocks)
        return self.decode_name(name_id), block
