"""Access-pattern generators."""

from __future__ import annotations

import random
from typing import List, Sequence

import numpy as np


def uniform_accesses(
    keys: Sequence[int], count: int, *, seed: int = 0
) -> List[int]:
    """``count`` lookups drawn uniformly from ``keys`` (with repetition)."""
    rng = random.Random(seed)
    keys = list(keys)
    return [keys[rng.randrange(len(keys))] for _ in range(count)]


def zipf_accesses(
    keys: Sequence[int], count: int, *, s: float = 1.1, seed: int = 0
) -> List[int]:
    """``count`` lookups with Zipf(s) popularity over ``keys`` — the
    "arbitrary set of users, highly random fashion" webmail/http pattern of
    Section 1.2 typically shows such skew."""
    keys = list(keys)
    n = len(keys)
    rng = np.random.default_rng(seed)
    # Normalised truncated zipf over ranks 1..n.
    weights = 1.0 / np.arange(1, n + 1, dtype=np.float64) ** s
    weights /= weights.sum()
    idx = rng.choice(n, size=count, p=weights)
    return [keys[i] for i in idx]


def hit_miss_mix(
    present: Sequence[int],
    universe_size: int,
    count: int,
    *,
    hit_fraction: float = 0.5,
    seed: int = 0,
) -> List[int]:
    """A lookup stream mixing present keys and (almost surely) absent ones.

    Absent probes are uniform universe draws excluded from ``present``.
    """
    if not 0 <= hit_fraction <= 1:
        raise ValueError(f"hit_fraction must be in [0, 1], got {hit_fraction}")
    rng = random.Random(seed)
    present = list(present)
    present_set = set(present)
    out: List[int] = []
    for _ in range(count):
        if present and rng.random() < hit_fraction:
            out.append(present[rng.randrange(len(present))])
        else:
            while True:
                probe = rng.randrange(universe_size)
                if probe not in present_set:
                    out.append(probe)
                    break
    return out
