"""Access-pattern generators.

Every generator draws exclusively from a domain-separated
:class:`~repro.bits.stream.MixStream` — the repository's canonical
deterministic stream (counter-mode splitmix64) — so a ``(generator, seed)``
pair denotes one exact key sequence forever, across processes, platforms
and library upgrades.  The snapshot test in
``tests/workloads/test_access_determinism.py`` pins the streams; changing
them is a breaking change to every recorded workload.
"""

from __future__ import annotations

from bisect import bisect_right
from typing import List, Sequence

from repro.bits.mix import stable_hash
from repro.bits.stream import MixStream

# Domain separators: each generator owns an independent stream per seed.
_UNIFORM_TAG = stable_hash("workloads.access.uniform")
_ZIPF_TAG = stable_hash("workloads.access.zipf")
_HIT_MISS_TAG = stable_hash("workloads.access.hit_miss")


def uniform_accesses(
    keys: Sequence[int], count: int, *, seed: int = 0
) -> List[int]:
    """``count`` lookups drawn uniformly from ``keys`` (with repetition)."""
    rng = MixStream(seed, _UNIFORM_TAG)
    keys = list(keys)
    return [keys[rng.randrange(len(keys))] for _ in range(count)]


def zipf_accesses(
    keys: Sequence[int], count: int, *, s: float = 1.1, seed: int = 0
) -> List[int]:
    """``count`` lookups with Zipf(s) popularity over ``keys`` — the
    "arbitrary set of users, highly random fashion" webmail/http pattern of
    Section 1.2 typically shows such skew."""
    keys = list(keys)
    n = len(keys)
    rng = MixStream(seed, _ZIPF_TAG)
    # Cumulative truncated zipf over ranks 1..n.
    cumulative: List[float] = []
    acc = 0.0
    for rank in range(1, n + 1):
        acc += 1.0 / rank**s
        cumulative.append(acc)
    # One batched counter-mode fill, then a bisect per draw.  This is the
    # stream of ``rng.weighted(cumulative)`` calls, value for value:
    # ``fill(count)[i]`` is the i-th ``next64()``, the target expression
    # reproduces ``MixStream.random()``'s 53-bit float, and
    # ``bisect_right`` takes exactly ``weighted()``'s branch
    # (``cumulative[mid] <= target`` descends right) — clamped to ``n-1``
    # because ``weighted()`` starts its upper bound there (reachable only
    # when the target rounds up to ``cumulative[-1]``).
    total = cumulative[-1]
    last = n - 1
    return [
        keys[min(bisect_right(cumulative, (v >> 11) * 2.0**-53 * total), last)]
        for v in rng.fill(count)
    ]


def hit_miss_mix(
    present: Sequence[int],
    universe_size: int,
    count: int,
    *,
    hit_fraction: float = 0.5,
    seed: int = 0,
) -> List[int]:
    """A lookup stream mixing present keys and (almost surely) absent ones.

    Absent probes are uniform universe draws excluded from ``present``.
    """
    if not 0 <= hit_fraction <= 1:
        raise ValueError(f"hit_fraction must be in [0, 1], got {hit_fraction}")
    rng = MixStream(seed, _HIT_MISS_TAG)
    present = list(present)
    present_set = set(present)
    out: List[int] = []
    for _ in range(count):
        if present and rng.random() < hit_fraction:
            out.append(present[rng.randrange(len(present))])
        else:
            while True:
                probe = rng.randrange(universe_size)
                if probe not in present_set:
                    out.append(probe)
                    break
    return out
