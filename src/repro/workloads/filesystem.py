"""File-system workload: the paper's motivating application (Section 1.2).

"Let keys consist of a file name and a block number, and associate them with
the contents of the given block number of the given file" — a dictionary
then *is* the basic functionality of a file system, with random access to
any position in any file in one lookup.

:class:`FileSystemWorkload` models a population of files with skewed sizes
and produces the two request streams Section 1.2 contrasts:

* random block reads across the whole file set (webmail/http-server style),
  where hash-style dictionaries shine;
* sequential scans of single files, where B-trees are fine anyway (caching
  absorbs the overhead) — included so benchmarks tell an honest story.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, List, Tuple


@dataclass(frozen=True)
class FileSpec:
    file_id: int
    num_blocks: int


class FileSystemWorkload:
    """A synthetic file population keyed into a flat integer universe."""

    def __init__(
        self,
        *,
        num_files: int,
        max_blocks_per_file: int = 256,
        size_skew: float = 1.2,
        seed: int = 0,
    ):
        if num_files <= 0:
            raise ValueError(f"need at least one file, got {num_files}")
        if max_blocks_per_file <= 0:
            raise ValueError("files need at least one block")
        self.num_files = num_files
        self.max_blocks_per_file = max_blocks_per_file
        rng = random.Random(seed)
        self.files: List[FileSpec] = []
        for fid in range(num_files):
            # Pareto-ish size skew: most files small, a few large.
            r = rng.random()
            blocks = max(1, int(max_blocks_per_file * (r ** size_skew)))
            self.files.append(FileSpec(fid, blocks))

    @property
    def universe_size(self) -> int:
        """Keys are ``file_id * max_blocks_per_file + block``."""
        return self.num_files * self.max_blocks_per_file

    @property
    def total_blocks(self) -> int:
        return sum(f.num_blocks for f in self.files)

    def key_for(self, file_id: int, block: int) -> int:
        if not 0 <= file_id < self.num_files:
            raise ValueError(f"file {file_id} out of range")
        if not 0 <= block < self.max_blocks_per_file:
            raise ValueError(f"block {block} out of range")
        return file_id * self.max_blocks_per_file + block

    def split_key(self, key: int) -> Tuple[int, int]:
        return divmod(key, self.max_blocks_per_file)

    def all_keys(self) -> Iterator[int]:
        """Every (file, block) key that exists."""
        for spec in self.files:
            for block in range(spec.num_blocks):
                yield self.key_for(spec.file_id, block)

    def random_reads(self, count: int, *, seed: int = 0) -> List[int]:
        """Uniformly random block reads over existing blocks (the pattern
        that motivates a 1-I/O dictionary over a 3-I/O B-tree)."""
        rng = random.Random(seed)
        out = []
        for _ in range(count):
            spec = self.files[rng.randrange(self.num_files)]
            out.append(self.key_for(spec.file_id, rng.randrange(spec.num_blocks)))
        return out

    def sequential_scan(self, file_id: int) -> List[int]:
        """All blocks of one file in order."""
        spec = self.files[file_id]
        return [self.key_for(file_id, b) for b in range(spec.num_blocks)]
