"""Immutable bit strings with explicit length, plus a sequential reader.

Bits are indexed 0 (most significant / first) to ``len - 1`` (last), i.e. a
:class:`BitVector` reads left to right like the paper's field diagrams.
Internally the bits live in a Python ``int`` — arbitrary precision, compact,
and fast to slice with shifts and masks.
"""

from __future__ import annotations

from typing import Iterable, Iterator


class BitVector:
    """An immutable sequence of bits."""

    __slots__ = ("_value", "_length")

    def __init__(self, bits: Iterable[int] | str = ()):
        value = 0
        length = 0
        for b in bits:
            if isinstance(b, str):
                if b not in "01":
                    raise ValueError(f"invalid bit character {b!r}")
                bit = b == "1"
            else:
                if b not in (0, 1, False, True):
                    raise ValueError(f"invalid bit value {b!r}")
                bit = bool(b)
            value = (value << 1) | bit
            length += 1
        self._value = value
        self._length = length

    # -- constructors --------------------------------------------------------

    @classmethod
    def _raw(cls, value: int, length: int) -> "BitVector":
        out = object.__new__(cls)
        out._value = value
        out._length = length
        return out

    @classmethod
    def from_int(cls, value: int, length: int) -> "BitVector":
        """Big-endian fixed-width encoding of a non-negative integer."""
        if value < 0:
            raise ValueError(f"cannot encode negative value {value}")
        if length < 0:
            raise ValueError(f"negative length {length}")
        if value >> length:
            raise ValueError(f"value {value} does not fit in {length} bits")
        return cls._raw(value, length)

    @classmethod
    def zeros(cls, length: int) -> "BitVector":
        if length < 0:
            raise ValueError(f"negative length {length}")
        return cls._raw(0, length)

    @classmethod
    def ones(cls, length: int) -> "BitVector":
        if length < 0:
            raise ValueError(f"negative length {length}")
        return cls._raw((1 << length) - 1, length)

    # -- accessors -------------------------------------------------------------

    def to_int(self) -> int:
        """The big-endian integer value of the bit string."""
        return self._value

    def __len__(self) -> int:
        return self._length

    def __getitem__(self, index):
        if isinstance(index, slice):
            start, stop, step = index.indices(self._length)
            if step != 1:
                raise ValueError("BitVector slices must have step 1")
            if stop <= start:
                return BitVector._raw(0, 0)
            width = stop - start
            shift = self._length - stop
            return BitVector._raw((self._value >> shift) & ((1 << width) - 1), width)
        if index < 0:
            index += self._length
        if not 0 <= index < self._length:
            raise IndexError(f"bit index {index} out of range")
        return (self._value >> (self._length - 1 - index)) & 1

    def __iter__(self) -> Iterator[int]:
        for i in range(self._length):
            yield (self._value >> (self._length - 1 - i)) & 1

    def __add__(self, other: "BitVector") -> "BitVector":
        """Concatenation."""
        if not isinstance(other, BitVector):
            return NotImplemented
        return BitVector._raw(
            (self._value << other._length) | other._value,
            self._length + other._length,
        )

    def pad_to(self, length: int) -> "BitVector":
        """Right-pad with zeros up to ``length`` bits."""
        if length < self._length:
            raise ValueError(
                f"cannot pad a {self._length}-bit vector down to {length} bits"
            )
        return BitVector._raw(self._value << (length - self._length), length)

    def __eq__(self, other: object) -> bool:
        return (
            isinstance(other, BitVector)
            and self._value == other._value
            and self._length == other._length
        )

    def __hash__(self) -> int:
        # int-only tuple: unaffected by PYTHONHASHSEED salting
        return hash((self._value, self._length))  # detlint: ignore[DET002]

    def __repr__(self) -> str:
        return f"BitVector('{self.to01()}')"

    def to01(self) -> str:
        return format(self._value, f"0{self._length}b") if self._length else ""


class BitReader:
    """Sequential reader over a :class:`BitVector`."""

    __slots__ = ("_bits", "pos")

    def __init__(self, bits: BitVector):
        self._bits = bits
        self.pos = 0

    @property
    def remaining(self) -> int:
        return len(self._bits) - self.pos

    def read_bit(self) -> int:
        if self.pos >= len(self._bits):
            raise EOFError("read past end of bit vector")
        bit = self._bits[self.pos]
        self.pos += 1
        return bit

    def read(self, n: int) -> BitVector:
        if n < 0:
            raise ValueError(f"cannot read a negative count ({n})")
        if self.pos + n > len(self._bits):
            raise EOFError(
                f"requested {n} bits but only {self.remaining} remain"
            )
        out = self._bits[self.pos : self.pos + n]
        self.pos += n
        return out

    def read_int(self, n: int) -> int:
        return self.read(n).to_int()

    def read_rest(self) -> BitVector:
        return self.read(self.remaining)
