"""The unary code.

A non-negative integer ``n`` is written as ``n`` 1-bits followed by a
terminating 0-bit.  The paper uses it for the relative pointers of Theorem
6(a): stored deltas are at least 1 (neighbor indices strictly increase along
the chain), so a parsed value of 0 — a field that "just starts with a 0-bit"
— unambiguously marks the tail of the chain.
"""

from __future__ import annotations

from repro.bits.bitvector import BitReader, BitVector


def encode_unary(n: int) -> BitVector:
    """``n`` ones followed by a zero; total length ``n + 1`` bits."""
    if n < 0:
        raise ValueError(f"cannot unary-encode negative value {n}")
    return BitVector.ones(n) + BitVector.zeros(1)


def decode_unary(reader: BitReader) -> int:
    """Consume one unary codeword from ``reader`` and return its value."""
    n = 0
    while reader.read_bit():
        n += 1
    return n
