"""The field-chain codec of Theorem 6(a).

A key ``x`` is assigned ``m = ceil(2d/3)`` of its ``d`` neighbors (stripe
indices ``i_1 < i_2 < ... < i_m``).  Its record of ``sigma`` bits is spread
over the corresponding fields of the retrieval array ``A`` as a linked list:

* the field at stripe ``i_t`` starts with the unary code of the *relative
  pointer* ``i_{t+1} - i_t`` (at least 1), then a 0-bit separator is implied
  by the unary code itself, then record data;
* the tail field (stripe ``i_m``) starts directly with a 0-bit;
* record data fills whatever space each field has left, in list order.

The membership sub-dictionary stores the *head pointer* ``i_1`` (``lg d``
bits) next to the key; decoding walks the chain from there, needing only the
``d`` fields fetched by the single parallel I/O.

Space sanity (paper): the pointer overhead is ``sum(deltas) + m`` bits
``<= (d - 1) + m < 2d`` bits per key; with fields of
``ceil(3*sigma/(2d)) + 4`` bits the total capacity covers ``sigma`` plus the
overhead.  :func:`required_field_bits` computes the exact minimum for given
parameters so tests can check the paper's ``+4`` slack suffices.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence

from repro.bits.bitvector import BitReader, BitVector
from repro.bits.unary import decode_unary, encode_unary


class ChainCapacityError(Exception):
    """The assigned fields cannot hold the record plus pointer overhead."""


def chain_capacity_bits(stripe_indices: Sequence[int], field_bits: int) -> int:
    """Data capacity (in bits) of a chain over the given stripes.

    Each field loses its unary pointer: ``delta + 1`` bits for interior
    fields, 1 bit for the tail.
    """
    indices = list(stripe_indices)
    if not indices:
        return 0
    overhead = 0
    for prev, nxt in zip(indices, indices[1:]):
        if nxt <= prev:
            raise ValueError("stripe indices must be strictly increasing")
        overhead += (nxt - prev) + 1
    overhead += 1  # tail separator bit
    return len(indices) * field_bits - overhead


def required_field_bits(sigma: int, m: int, max_span: int) -> int:
    """Minimum uniform field width so that *any* chain of ``m`` strictly
    increasing stripes within ``max_span`` stripes (``max_span <= d``) can
    hold ``sigma`` record bits.

    Two constraints: aggregate capacity (worst-case pointer overhead is
    ``(max_span - 1) + m`` bits), and — since a field must contain its own
    unary header — the per-field floor ``max_delta + 2`` where the largest
    single delta is ``max_span - m + 1`` (one big gap, the rest adjacent).
    The paper's ``3 sigma / (2d) + 4`` form assumes the large-``sigma``
    regime where the aggregate term dominates.
    """
    if m <= 0:
        raise ValueError(f"need at least one field, got m={m}")
    overhead = (max_span - 1) + m
    aggregate = math.ceil((sigma + overhead) / m)
    per_field_floor = (max_span - m + 1) + 1
    return max(aggregate, per_field_floor)


def encode_chain(
    record: BitVector, stripe_indices: Sequence[int], field_bits: int
) -> Dict[int, BitVector]:
    """Encode ``record`` across the chain; returns stripe -> field contents.

    Every returned field is exactly ``field_bits`` long (zero-padded), so it
    can be stored verbatim into a :class:`~repro.pdm.striping.StripedFieldArray`
    of that width.
    """
    indices = list(stripe_indices)
    if not indices:
        raise ValueError("a chain needs at least one field")
    if chain_capacity_bits(indices, field_bits) < len(record):
        raise ChainCapacityError(
            f"{len(indices)} fields of {field_bits} bits over stripes "
            f"{indices} hold {chain_capacity_bits(indices, field_bits)} data "
            f"bits; record needs {len(record)}"
        )
    fields: Dict[int, BitVector] = {}
    pos = 0
    for t, stripe in enumerate(indices):
        if t + 1 < len(indices):
            header = encode_unary(indices[t + 1] - stripe)
        else:
            header = encode_unary(0)  # tail: just the 0-bit
        room = field_bits - len(header)
        take = min(room, len(record) - pos)
        chunk = record[pos : pos + take]
        pos += take
        fields[stripe] = (header + chunk).pad_to(field_bits)
    return fields


def decode_chain(
    fields_by_stripe: Dict[int, BitVector],
    head: int,
    field_bits: int,
    sigma: int,
    max_stripe: int,
) -> BitVector:
    """Walk the chain starting at stripe ``head`` and reassemble the record.

    ``fields_by_stripe`` holds the (at least) visited fields, e.g. all ``d``
    fields returned by the one parallel I/O.  Raises ``KeyError`` if the walk
    leaves the provided fields and ``ChainCapacityError`` if fewer than
    ``sigma`` data bits are recovered.
    """
    chunks: List[BitVector] = []
    stripe = head
    while True:
        if stripe >= max_stripe:
            raise ChainCapacityError(
                f"chain walked to stripe {stripe}, past the last stripe "
                f"{max_stripe - 1}"
            )
        field = fields_by_stripe[stripe]
        if field is None or len(field) != field_bits:
            raise ChainCapacityError(
                f"field at stripe {stripe} is missing or malformed"
            )
        reader = BitReader(field)
        delta = decode_unary(reader)
        chunks.append(reader.read_rest())
        if delta == 0:
            break
        stripe += delta
    record = BitVector()
    for chunk in chunks:
        record = record + chunk
    if len(record) < sigma:
        raise ChainCapacityError(
            f"chain yielded {len(record)} data bits; record needs {sigma}"
        )
    return record[:sigma]
