"""A deterministic random-value stream on top of :mod:`repro.bits.mix`.

``random.Random`` and ``numpy.random`` are seedable, but their streams are
implementation details of their libraries — a CPython or numpy upgrade may
silently reshuffle every "reproducible" workload built on them, and the two
produce different streams for the same seed, so code mixing both (as the
access generators once did) cannot be audited for determinism at all.
:class:`MixStream` is the repository's sanctioned source of *sequences* of
random-looking values: a counter-mode splitmix64 generator whose output is
a pure function of ``(seed, counter)``, pinned by this repository's own
code and snapshot tests rather than by a third-party library's internals.

The API mirrors the small subset of ``random.Random`` the workload layer
needs (``randrange`` / ``random`` / ``choice`` / ``shuffle``) plus
:meth:`weighted` for skewed (Zipf) draws.
"""

from __future__ import annotations

from typing import List, Sequence, TypeVar

from repro.bits.mix import derive, splitmix64

_MASK64 = (1 << 64) - 1
_T = TypeVar("_T")


class MixStream:
    """Counter-mode splitmix64 stream: value ``i`` is
    ``splitmix64(state + i)`` for a ``derive``-mixed starting state.

    Instances are cheap, independent streams: ``MixStream(seed, tag)`` and
    ``MixStream(seed, other_tag)`` never correlate (to splitmix64's
    quality), which lets each generator in :mod:`repro.workloads.access`
    own a domain-separated stream from one user seed.
    """

    __slots__ = ("_state", "_counter")

    def __init__(self, seed: int, *tags: int):
        self._state = derive(seed, *tags) if tags else derive(seed)
        self._counter = 0

    def next64(self) -> int:
        """The next 64-bit value of the stream."""
        value = splitmix64((self._state + self._counter) & _MASK64)
        self._counter += 1
        return value

    def randrange(self, bound: int) -> int:
        """A uniform integer in ``[0, bound)`` (unbiased, via rejection)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        # Reject the tail residue so every value is exactly equally likely;
        # for bound << 2^64 the loop essentially never iterates.
        limit = _MASK64 - (_MASK64 + 1) % bound
        while True:
            value = self.next64()
            if value <= limit:
                return value % bound

    def random(self) -> float:
        """A uniform float in ``[0, 1)`` with 53 bits of precision."""
        return (self.next64() >> 11) * (2.0 ** -53)

    def choice(self, seq: Sequence[_T]) -> _T:
        if not seq:
            raise IndexError("cannot choose from an empty sequence")
        return seq[self.randrange(len(seq))]

    def shuffle(self, items: List[_T]) -> None:
        """In-place Fisher–Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randrange(i + 1)
            items[i], items[j] = items[j], items[i]

    def weighted(self, cumulative: Sequence[float]) -> int:
        """An index drawn per a *cumulative* weight table.

        ``cumulative`` must be nondecreasing with a positive final entry
        (the normalization constant); returns ``i`` with probability
        ``(cumulative[i] - cumulative[i-1]) / cumulative[-1]``.  Bisection
        keeps skewed draws O(log n) per sample.
        """
        if not cumulative or cumulative[-1] <= 0:
            raise ValueError("cumulative weights must end positive")
        target = self.random() * cumulative[-1]
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] <= target:
                lo = mid + 1
            else:
                hi = mid
        return lo


__all__ = ["MixStream"]
