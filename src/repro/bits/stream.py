"""A deterministic random-value stream on top of :mod:`repro.bits.mix`.

``random.Random`` and ``numpy.random`` are seedable, but their streams are
implementation details of their libraries — a CPython or numpy upgrade may
silently reshuffle every "reproducible" workload built on them, and the two
produce different streams for the same seed, so code mixing both (as the
access generators once did) cannot be audited for determinism at all.
:class:`MixStream` is the repository's sanctioned source of *sequences* of
random-looking values: a counter-mode splitmix64 generator whose output is
a pure function of ``(seed, counter)``, pinned by this repository's own
code and snapshot tests rather than by a third-party library's internals.

The API mirrors the small subset of ``random.Random`` the workload layer
needs (``randrange`` / ``random`` / ``choice`` / ``shuffle``) plus
:meth:`weighted` for skewed (Zipf) draws.
"""

from __future__ import annotations

from array import array
from typing import Iterable, List, Sequence, TypeVar

from repro.bits.mix import derive, splitmix64

_MASK64 = (1 << 64) - 1
_T = TypeVar("_T")


def bulk_derive(seed: int, tag_rows: Iterable[Sequence[int]]) -> List[int]:
    """:func:`repro.bits.mix.derive` over many tag tuples at once.

    ``bulk_derive(s, rows)[i] == derive(s, *rows[i])`` exactly (asserted
    by the kernel property suite); the shared first mix of the seed is
    hoisted out of the loop, which is what makes domain-tagged bulk
    derivation cheaper than per-row :func:`derive` calls.
    """
    acc0 = splitmix64(seed & _MASK64)
    mix = splitmix64
    out: List[int] = []
    for tags in tag_rows:
        acc = acc0
        for t in tags:
            acc = mix((acc ^ (t & _MASK64)) + 0xA0761D6478BD642F)
        out.append(acc)
    return out


class MixStream:
    """Counter-mode splitmix64 stream: value ``i`` is
    ``splitmix64(state + i)`` for a ``derive``-mixed starting state.

    Instances are cheap, independent streams: ``MixStream(seed, tag)`` and
    ``MixStream(seed, other_tag)`` never correlate (to splitmix64's
    quality), which lets each generator in :mod:`repro.workloads.access`
    own a domain-separated stream from one user seed.
    """

    __slots__ = ("_state", "_counter")

    def __init__(self, seed: int, *tags: int):
        self._state = derive(seed, *tags) if tags else derive(seed)
        self._counter = 0

    def next64(self) -> int:
        """The next 64-bit value of the stream."""
        value = splitmix64((self._state + self._counter) & _MASK64)
        self._counter += 1
        return value

    def fill(self, count: int) -> array:
        """The next ``count`` values as one flat ``array('Q')``.

        Bit-identical to ``count`` successive :meth:`next64` calls (and
        advances the counter the same way) — the batched counter-mode
        shape the vectorized kernels consume.
        """
        if count < 0:
            raise ValueError(f"count must be non-negative, got {count}")
        state, start = self._state, self._counter
        mix = splitmix64
        out = array(
            "Q", (mix((state + start + i) & _MASK64) for i in range(count))
        )
        self._counter = start + count
        return out

    def randrange(self, bound: int) -> int:
        """A uniform integer in ``[0, bound)`` (unbiased, via rejection)."""
        if bound <= 0:
            raise ValueError(f"bound must be positive, got {bound}")
        # Reject the tail residue so every value is exactly equally likely;
        # for bound << 2^64 the loop essentially never iterates.
        limit = _MASK64 - (_MASK64 + 1) % bound
        while True:
            value = self.next64()
            if value <= limit:
                return value % bound

    def random(self) -> float:
        """A uniform float in ``[0, 1)`` with 53 bits of precision."""
        return (self.next64() >> 11) * (2.0 ** -53)

    def choice(self, seq: Sequence[_T]) -> _T:
        if not seq:
            raise IndexError("cannot choose from an empty sequence")
        return seq[self.randrange(len(seq))]

    def shuffle(self, items: List[_T]) -> None:
        """In-place Fisher–Yates shuffle."""
        for i in range(len(items) - 1, 0, -1):
            j = self.randrange(i + 1)
            items[i], items[j] = items[j], items[i]

    def weighted(self, cumulative: Sequence[float]) -> int:
        """An index drawn per a *cumulative* weight table.

        ``cumulative`` must be nondecreasing with a positive final entry
        (the normalization constant); returns ``i`` with probability
        ``(cumulative[i] - cumulative[i-1]) / cumulative[-1]``.  Bisection
        keeps skewed draws O(log n) per sample.
        """
        if not cumulative or cumulative[-1] <= 0:
            raise ValueError("cumulative weights must end positive")
        target = self.random() * cumulative[-1]
        lo, hi = 0, len(cumulative) - 1
        while lo < hi:
            mid = (lo + hi) // 2
            if cumulative[mid] <= target:
                lo = mid + 1
            else:
                hi = mid
        return lo


__all__ = ["MixStream", "bulk_derive"]
