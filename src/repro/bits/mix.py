"""Canonical deterministic mixers.

Everything in this repository that needs "random-looking" values derives
them from the functions here — never from the process-global ``random``
module, never from the salted builtin ``hash()``.  The reproduction's whole
claim (SPAA 2006: determinism at randomized performance) collapses if any
value depends on interpreter-level entropy, so the sanctioned sources are:

* :func:`splitmix64` — the splitmix64 output permutation (Steele et al.,
  "Fast splittable pseudorandom number generators", OOPSLA 2014): a
  measurably well-distributed bijection on 64-bit integers.  This is the
  neighbor function of the seeded expanders and the coefficient source of
  the polynomial hash families.
* :func:`stable_hash` — a splitmix64-chained hash of ``str``/``bytes``/
  ``int`` values that is identical across processes, platforms and Python
  versions.  Use it wherever builtin ``hash()`` on strings would otherwise
  sneak per-process ``PYTHONHASHSEED`` salt into a data structure
  (``detlint`` rule DET002 points here).
* :func:`derive` — seed derivation: fold any number of integer tags into a
  base seed so that independent subsystems (expander levels, rebuild
  attempts, table rehashes) get essentially independent streams from one
  user-supplied seed.

These live in ``repro.bits`` — the bottom layer — so every other package
may depend on them without creating import cycles (``detlint`` rule
ARCH201 enforces the layering).
"""

from __future__ import annotations

_MASK64 = (1 << 64) - 1


def splitmix64(z: int) -> int:
    """One round of the splitmix64 output permutation (pure function)."""
    z = (z + 0x9E3779B97F4A7C15) & _MASK64
    z = ((z ^ (z >> 30)) * 0xBF58476D1CE4E5B9) & _MASK64
    z = ((z ^ (z >> 27)) * 0x94D049BB133111EB) & _MASK64
    return z ^ (z >> 31)


def derive(seed: int, *tags: int) -> int:
    """Fold integer ``tags`` into ``seed``: a cheap domain separator.

    ``derive(s, a, b) == derive(s, a, b)`` always, and distinct tag tuples
    give (with splitmix64's quality) essentially independent values —
    Section 4.3 needs one independent expander per level from a single
    user seed, and rebuild schemes need a fresh function per attempt.
    """
    acc = splitmix64(seed & _MASK64)
    for t in tags:
        acc = splitmix64((acc ^ (t & _MASK64)) + 0xA0761D6478BD642F)
    return acc


def stable_hash(value: "str | bytes | int", *, seed: int = 0) -> int:
    """A 64-bit hash of ``value`` that never varies between processes.

    Builtin ``hash()`` on ``str``/``bytes`` is salted per process
    (``PYTHONHASHSEED``), so any table layout, iteration order or file
    format derived from it silently changes between runs — exactly the
    nondeterminism this reproduction must exclude.  ``stable_hash`` chains
    splitmix64 over 8-byte little-endian chunks instead; ``str`` is encoded
    as UTF-8, ``int`` is reduced to its 64-bit residue.
    """
    if isinstance(value, bool):  # bool is an int subclass; be explicit
        value = int(value)
    if isinstance(value, int):
        return splitmix64(derive(seed, value & _MASK64, value < 0))
    if isinstance(value, str):
        data = value.encode("utf-8")
    elif isinstance(value, (bytes, bytearray)):
        data = bytes(value)
    else:
        raise TypeError(
            f"stable_hash accepts str, bytes or int, got {type(value).__name__}"
        )
    acc = splitmix64(seed ^ (len(data) + 0x9E3779B97F4A7C15))
    for i in range(0, len(data), 8):
        chunk = int.from_bytes(data[i : i + 8], "little")
        acc = splitmix64(acc ^ chunk)
    return acc
