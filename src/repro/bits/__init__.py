"""Bit vectors and codecs.

Theorem 6(a) of the paper packs, into each field of the retrieval array,
*unary-coded relative pointers* followed by a 0-bit separator and then raw
record data ("the fraction of an array field dedicated to pointer data will
vary among fields").  Reproducing the space bound honestly requires doing
this at the bit level; this package supplies the machinery:

* :class:`~repro.bits.bitvector.BitVector` — an immutable bit string.
* :class:`~repro.bits.bitvector.BitReader` — sequential parsing.
* :mod:`~repro.bits.unary` — the unary code for pointer deltas.
* :mod:`~repro.bits.fields` — the field-chain codec: splitting a record
  across the fields assigned to a key, and reassembling it from the head
  pointer.
* :mod:`~repro.bits.mix` — the canonical deterministic mixers
  (:func:`~repro.bits.mix.splitmix64`, :func:`~repro.bits.mix.stable_hash`,
  :func:`~repro.bits.mix.derive`): the only sanctioned sources of
  "random-looking" values anywhere in the repository.
"""

from repro.bits.bitvector import BitVector, BitReader
from repro.bits.mix import derive, splitmix64, stable_hash
from repro.bits.stream import MixStream
from repro.bits.unary import encode_unary, decode_unary
from repro.bits.fields import (
    ChainCapacityError,
    chain_capacity_bits,
    encode_chain,
    decode_chain,
    required_field_bits,
)

__all__ = [
    "BitVector",
    "BitReader",
    "encode_unary",
    "decode_unary",
    "ChainCapacityError",
    "chain_capacity_bits",
    "encode_chain",
    "decode_chain",
    "required_field_bits",
    "derive",
    "splitmix64",
    "stable_hash",
    "MixStream",
]
