"""Crash-consistent rebuild journaling.

A rebuild that restarts from scratch after every interruption can be
starved forever by a hostile failure schedule; the journal makes resume
*idempotent* at block granularity.  Three entry kinds, append-only:

* ``begin`` — a rebuild of ``disk`` opened under a fresh ``generation``
  (monotone per disk), recording its mode and the number of blocks it
  intends to restore.
* ``copied`` — one block's payload has *landed* on the target.  The
  entry is appended strictly after the write, so replaying any prefix of
  the journal never claims a block that was not durably restored — the
  block is the atomicity unit.
* ``commit`` — the rebuild completed and the disk was swapped back in.

A resuming :class:`~repro.recovery.manager.RecoveryManager` consults
:meth:`open_rebuild` and :meth:`copied_blocks` to skip work already done;
the Hypothesis property tests replay every prefix of a recorded journal
and assert the resumed rebuild converges to the identical final state.

The journal is a plain in-memory structure with a deterministic
dict-list serialisation (:meth:`to_dict` / :meth:`from_dict`) — the
simulation has no real durable medium, so persistence is the caller's
choice; what matters here is the replay semantics.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Set, Tuple


class RebuildJournal:
    """Append-only journal of rebuild progress (see module docstring)."""

    def __init__(self, entries: Optional[Iterable[Dict[str, Any]]] = None):
        self.entries: List[Dict[str, Any]] = [
            dict(e) for e in (entries or [])
        ]

    # -- appends (manager-side) --------------------------------------------

    def begin(self, disk: int, generation: int, mode: str, total: int) -> None:
        self.entries.append(
            {
                "op": "begin",
                "disk": disk,
                "gen": generation,
                "mode": mode,
                "total": total,
            }
        )

    def copied(self, disk: int, generation: int, block: int) -> None:
        """Record one restored block — call strictly *after* its payload
        landed on the target (block-granularity atomicity)."""
        self.entries.append(
            {"op": "copied", "disk": disk, "gen": generation, "block": block}
        )

    def commit(self, disk: int, generation: int) -> None:
        self.entries.append(
            {"op": "commit", "disk": disk, "gen": generation}
        )

    # -- replay queries ----------------------------------------------------

    def committed(self, disk: int, generation: int) -> bool:
        return any(
            e["op"] == "commit" and e["disk"] == disk and e["gen"] == generation
            for e in self.entries
        )

    def copied_blocks(self, disk: int, generation: int) -> Set[int]:
        return {
            e["block"]
            for e in self.entries
            if e["op"] == "copied"
            and e["disk"] == disk
            and e["gen"] == generation
        }

    def open_rebuild(self, disk: int) -> Optional[Tuple[int, str, int]]:
        """The latest uncommitted ``begin`` for ``disk`` as
        ``(generation, mode, total)``, or ``None``."""
        latest: Optional[Tuple[int, str, int]] = None
        for e in self.entries:
            if e["disk"] != disk:
                continue
            if e["op"] == "begin":
                latest = (e["gen"], e["mode"], e["total"])
            elif e["op"] == "commit" and latest is not None:
                if e["gen"] == latest[0]:
                    latest = None
        return latest

    def next_generation(self, disk: int) -> int:
        gens = [e["gen"] for e in self.entries if e["disk"] == disk]
        return max(gens) + 1 if gens else 0

    # -- prefixes & serialisation ------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def prefix(self, n: int) -> "RebuildJournal":
        """The journal as it stood after its first ``n`` appends — the
        crash-replay test surface."""
        return RebuildJournal(self.entries[:n])

    def to_dict(self) -> Dict[str, Any]:
        return {"entries": [dict(e) for e in self.entries]}

    @classmethod
    def from_dict(cls, data: Dict[str, Any]) -> "RebuildJournal":
        return cls(data.get("entries", []))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"RebuildJournal({len(self.entries)} entries)"
