"""The online rebuild scheduler.

:class:`RecoveryManager` turns detected disk failures into bounded
background repair work:

* A disk inside a *permanent* outage (the chaos plans' ``FOREVER``
  windows — a dead device) is rebuilt **onto a spare** from replica
  majority: each lost block is reconstructed through the owning
  structure's ``reconstruct_block`` hook, written to the spare via the
  machine's rebuild mirror, and journaled.  When the last block lands,
  the spare is swapped into the disk slot
  (:meth:`repro.pdm.faults.FaultyDisk.respawn`) and the health tracker
  walks ``rebuilding → healthy``.
* A disk whose *finite* outage has expired is **verified in place**: its
  storage survived (faults model the I/O channel), so the manager walks
  the owned blocks through checksum-verified repair reads, healing any
  corruption it finds from redundancy.

Work is metered: one :meth:`RecoveryManager.step` spends at most
``repair_budget`` I/O rounds (overshoot bounded by one block), so rebuild
rounds interleave with live traffic instead of stalling it.  Every round
spent here is charged to ``repair_ios`` — through
:meth:`~repro.pdm.machine.AbstractDiskMachine.attribute_repair` for
reconstruction reads and ``repair=True`` writes for restored blocks — so
the theorem monitors' foreground budgets never see recovery overhead.

Each completed rebuild emits a zero-cost ``recovery.rebuild`` summary
span carrying ``rounds_used`` and ``budget_rounds`` attributes; the
:class:`repro.obs.monitors.RecoveryMonitor` asserts the former stays
within the latter (rebuild cost is linear in lost blocks).  Summary spans
are used because rebuild slices interleave with foreground operations and
spans must strictly nest.

Single-writer discipline: a manager belongs to one machine and runs
between that machine's operations, so its mutable state shares the
machine-op serialization domain.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.pdm.errors import BlockCorruption, DiskFailure
from repro.pdm.health import (
    FAILED,
    HealthTracker,
    REBUILDING,
    attach_health,
)
from repro.pdm.spans import span
from repro.recovery.journal import RebuildJournal

#: an outage window ending at or beyond this round is a dead device, not
#: a temporary condition (chaos plans use ``FOREVER = 1 << 62``).
PERMANENT_END = 1 << 60

#: slack rounds granted to a rebuild beyond its per-block core — covers
#: retries on the surviving replicas and the odd straggler.
REBUILD_BUDGET_SLACK = 8


def rebuild_budget_rounds(blocks: int, read_bound: int = 1) -> int:
    """The RecoveryMonitor bound for rebuilding ``blocks`` blocks: each
    block costs at most one reconstruction read batch (``read_bound``
    rounds, advised by the owning structure's
    ``reconstruct_round_bound``) plus one write round."""
    return (read_bound + 1) * blocks + REBUILD_BUDGET_SLACK


class SparePool:
    """A bounded pool of replacement devices.

    Spares are materialised on demand as fresh empty
    :class:`~repro.pdm.disk.Disk` objects taking over the failed slot's
    ``disk_id``; the pool only counts them.
    """

    def __init__(self, count: int):
        if count < 0:
            raise ValueError(f"spare count must be non-negative, got {count}")
        self.count = count
        self.used = 0  # detlint: guarded(machine-op) -- manager mutates between machine ops only

    @property
    def available(self) -> int:
        return self.count - self.used

    def acquire(self, machine, disk_id: int) -> Optional["Disk"]:
        if self.used >= self.count:
            return None
        self.used += 1
        return machine.provision_spare(disk_id)


@dataclass
class _Rebuild:
    """In-flight rebuild of one disk."""

    disk: int
    generation: int
    mode: str  # "spare" | "verify"
    pending: List[int]
    total: int
    spare: Optional["Disk"] = None
    cursor: int = 0
    rounds_used: int = 0
    blocks_done: int = 0
    blocks_lost: int = 0
    blocks_live: int = 0


class RecoveryManager:
    """Budgeted self-healing scheduler for one machine (see module
    docstring)."""

    def __init__(
        self,
        machine,
        tracker: Optional[HealthTracker] = None,
        *,
        repair_budget: int = 8,
        journal: Optional[RebuildJournal] = None,
        spares: Optional[SparePool] = None,
    ):
        if repair_budget <= 0:
            raise ValueError(
                f"repair budget must be positive, got {repair_budget}"
            )
        self.machine = machine
        if tracker is None:
            tracker = machine.health
        if tracker is None:
            tracker = attach_health(machine)
        self.tracker = tracker
        self.repair_budget = repair_budget
        self.journal = journal if journal is not None else RebuildJournal()
        self.spares = spares if spares is not None else SparePool(0)
        self.structures: List[object] = []  # detlint: guarded(machine-op) -- registration precedes traffic; steps run between machine ops
        self._active: Dict[int, _Rebuild] = {}  # detlint: guarded(machine-op) -- manager steps serialize with machine ops
        self.stats: Dict[str, int] = {  # detlint: guarded(machine-op) -- same serialization domain as _active
            "rebuilds_started": 0,
            "rebuilds_completed": 0,
            "rebuilds_aborted": 0,
            "blocks_rebuilt": 0,
            "blocks_verified": 0,
            "blocks_lost": 0,
            "blocks_live_skipped": 0,
            "corrupt_repaired": 0,
            "spare_starved": 0,
            "idle_wait_rounds": 0,
        }
        #: round at which the machine last returned to fully-healed
        self.heal_clock: Optional[int] = None
        self._was_unhealthy = False

    # -- registration ------------------------------------------------------

    def register(self, structure) -> None:
        """Register a structure exposing ``recovery_extents()`` (and,
        where redundancy allows, ``reconstruct_block(addr)``)."""
        self.structures.append(structure)

    def owned_blocks(self, disk: int) -> List[int]:
        """All registered block indices on ``disk`` (sorted, deduped).
        Recomputed per rebuild — rebuilding dictionaries grow extents."""
        idx = set()
        for s in self.structures:
            for d, first, count in s.recovery_extents():
                if d == disk:
                    idx.update(range(first, first + count))
        return sorted(idx)

    # -- detection ---------------------------------------------------------

    def poll(self) -> None:
        """Notice disks that went down without any foreground traffic
        touching them (the tracker otherwise only hears about disks the
        workload reads)."""
        machine = self.machine
        if machine.faults is None:
            return
        clock = machine.stats.total_ios
        for d, disk in enumerate(machine.disks):
            if disk.status_at(clock) == "down":
                if self.tracker.state(d) not in (FAILED, REBUILDING):
                    self.tracker.fail(d, clock)

    def _permanently_down(self, disk_obj, clock: int) -> bool:
        for start, end in getattr(disk_obj, "outages", ()):
            if start <= clock < end and end >= PERMANENT_END:
                return True
        return False

    # -- the budgeted step -------------------------------------------------

    def step(self) -> int:
        """One bounded slice of recovery work; returns rounds spent.

        Detects new failures, starts rebuilds for eligible failed disks,
        then advances active rebuilds until ``repair_budget`` rounds are
        spent (overshoot at most one block).  If recovery is blocked
        purely on the clock (a finite outage still running), one idle
        round is charged — attributed to ``repair_ios`` — so the logical
        clock always makes progress toward the window's end.
        """
        machine = self.machine
        start = machine.stats.total_ios
        self.poll()
        if not self.tracker.all_healthy() or self._active:
            self._was_unhealthy = True
        with span(machine, "recovery.step") as h:
            waiting = self._start_rebuilds()
            self._advance(start)
            if (
                waiting
                and not self._active
                and machine.stats.total_ios == start
            ):
                # Blocked on the clock: model waiting as one idle round
                # of fault-attributable overhead.
                machine.stats.read_ios += 1
                machine.stats.repair_ios += 1
                self.stats["idle_wait_rounds"] += 1
        if self._was_unhealthy and self.all_healed:
            self.heal_clock = machine.stats.total_ios
            self._was_unhealthy = False
        return h.cost.total_ios

    def _start_rebuilds(self) -> bool:
        """Open a rebuild for every eligible failed disk.  Returns True
        if some failed disk is still waiting on its outage window."""
        machine = self.machine
        waiting = False
        for d in sorted(self.tracker.in_state(FAILED)):
            clock = machine.stats.total_ios
            disk_obj = machine.disks[d]  # detlint: ignore[PDM102] -- status probe only, no payload access
            status = (
                disk_obj.status_at(clock)
                if machine.faults is not None
                else "ok"
            )
            permanent = self._permanently_down(disk_obj, clock)
            if status == "down" and not permanent:
                waiting = True  # finite outage still running; wait it out
                continue
            mode = "spare" if permanent else "verify"
            spare: Optional["Disk"] = None
            if mode == "spare":
                mirror = machine.rebuild_mirror
                spare = mirror.get(d) if mirror else None
                if spare is None:
                    spare = self.spares.acquire(machine, d)
                    if spare is None:
                        self.stats["spare_starved"] += 1
                        continue
                    if machine.rebuild_mirror is None:
                        machine.rebuild_mirror = {}
                    machine.rebuild_mirror[d] = spare
            blocks = self.owned_blocks(d)
            resume = self.journal.open_rebuild(d)
            if resume is not None and resume[1] == mode:
                gen = resume[0]
                done = self.journal.copied_blocks(d, gen)
                blocks = [b for b in blocks if b not in done]
            else:
                gen = self.journal.next_generation(d)
                self.journal.begin(d, gen, mode, len(blocks))
            self.tracker.begin_rebuild(d, clock)
            self._active[d] = _Rebuild(
                disk=d,
                generation=gen,
                mode=mode,
                pending=blocks,
                total=len(blocks),
                spare=spare,
            )
            self.stats["rebuilds_started"] += 1
        return waiting

    def _advance(self, start: int) -> None:
        machine = self.machine
        for d in sorted(self._active):
            rb = self._active[d]
            aborted = False
            while (
                rb.cursor < len(rb.pending)
                and machine.stats.total_ios - start < self.repair_budget
            ):
                block = rb.pending[rb.cursor]
                before = machine.stats.total_ios
                aborted = self._restore_block(rb, block)
                rb.rounds_used += machine.stats.total_ios - before
                if aborted:
                    break
                rb.cursor += 1
                self.journal.copied(d, rb.generation, block)
            if aborted:
                self._abort(rb)
            elif rb.cursor >= len(rb.pending):
                self._finish(rb)
            if machine.stats.total_ios - start >= self.repair_budget:
                break

    def _reconstruct_bound(self) -> int:
        bound = 1
        for s in self.structures:
            fn = getattr(s, "reconstruct_round_bound", None)
            if fn is not None:
                b = fn()
                if b > bound:
                    bound = b
        return bound

    def _reconstruct(self, addr) -> Optional[Tuple[object, int]]:
        with self.machine.attribute_repair():
            for s in self.structures:
                out = s.reconstruct_block(addr)
                if out is not None:
                    return out
        return None

    def _restore_block(self, rb: _Rebuild, block: int) -> bool:
        """Restore/verify one block.  Returns True if the rebuild must
        abort (the disk failed again mid-verify)."""
        machine = self.machine
        addr = (rb.disk, block)
        if rb.mode == "spare":
            if rb.spare.peek(block) is not None:
                # A foreground write already landed the live copy on the
                # spare (rebuild-mirror divert); reconstruction from
                # replicas would resurrect the pre-write state.
                rb.blocks_live += 1
                self.stats["blocks_live_skipped"] += 1
                return False
            out = self._reconstruct(addr)
            if out is None:
                # No redundancy covers this block: loud data loss — the
                # block stays empty and the owning structure's degraded
                # contract reports it on next touch.
                rb.blocks_lost += 1
                self.stats["blocks_lost"] += 1
                return False
            payload, used = out
            machine.write_blocks([(addr, payload, used)], repair=True)
            rb.blocks_done += 1
            self.stats["blocks_rebuilt"] += 1
            return False
        # verify mode: storage survived the outage; checksum-walk it.
        blocks, failures = machine.repair_read_blocks([addr])
        fault = failures.get(addr)
        if fault is None:
            rb.blocks_done += 1
            self.stats["blocks_verified"] += 1
            return False
        if isinstance(fault, BlockCorruption):
            out = self._reconstruct(addr)
            if out is None:
                rb.blocks_lost += 1
                self.stats["blocks_lost"] += 1
                return False
            payload, used = out
            machine.write_blocks([(addr, payload, used)], repair=True)
            rb.blocks_done += 1
            self.stats["corrupt_repaired"] += 1
            return False
        if isinstance(fault, DiskFailure):
            return True  # went down again mid-verify: abort, resume later
        # Transient that survived retries: count the block as pending
        # again next step rather than aborting the whole rebuild.
        return True

    def _abort(self, rb: _Rebuild) -> None:
        clock = self.machine.stats.total_ios
        del self._active[rb.disk]
        # Journal stays open: the resume path skips already-copied
        # blocks.  The spare (if any) stays mirrored for the same reason.
        self.tracker.fail(rb.disk, clock)
        self.stats["rebuilds_aborted"] += 1

    def _finish(self, rb: _Rebuild) -> None:
        machine = self.machine
        clock = machine.stats.total_ios
        if rb.mode == "spare":
            old = machine.disks[rb.disk]  # detlint: ignore[PDM102] -- structural swap, no payload access
            machine.replace_disk(rb.disk, old.respawn(rb.spare, clock))  # detlint: ignore[COST101] -- swap rebuilt spare in; every block on it was charged via write_blocks(repair=True)
            del machine.rebuild_mirror[rb.disk]
        self.journal.commit(rb.disk, rb.generation)
        self.tracker.complete_rebuild(rb.disk, clock)
        del self._active[rb.disk]
        self.stats["rebuilds_completed"] += 1
        # Zero-cost summary span: rebuild slices interleave with
        # foreground spans, so totals ride on attributes instead of
        # nesting (the RecoveryMonitor reads these).
        with span(
            machine,
            "recovery.rebuild",
            disk=rb.disk,
            mode=rb.mode,
            blocks=rb.total,
            blocks_done=rb.blocks_done,
            blocks_lost=rb.blocks_lost,
            rounds_used=rb.rounds_used,
            budget_rounds=rebuild_budget_rounds(
                rb.total, self._reconstruct_bound()
            ),
        ):
            pass

    # -- driving -----------------------------------------------------------

    @property
    def active_rebuilds(self) -> int:
        return len(self._active)

    @property
    def all_healed(self) -> bool:
        return self.tracker.all_healthy() and not self._active

    def run_until_idle(self, *, max_steps: int = 10_000) -> bool:
        """Step until fully healed (or until progress is impossible —
        spare starvation, a permanent outage with no redundancy — or
        ``max_steps``).  Returns :attr:`all_healed`."""
        steps = 0
        stalled = 0
        # Always step at least once: a fault window may already cover the
        # clock without the tracker having observed it yet, and only
        # step() polls.
        while steps < max_steps:
            before = (
                self.machine.stats.total_ios,
                self.tracker.transitions,
            )
            self.step()
            steps += 1
            if self.all_healed:
                break
            after = (
                self.machine.stats.total_ios,
                self.tracker.transitions,
            )
            stalled = stalled + 1 if after == before else 0
            if stalled >= 3:
                break  # no clock and no state progress: wedged for good
        return self.all_healed

    def to_dict(self) -> Dict[str, object]:
        return {
            "stats": dict(self.stats),
            "active_rebuilds": self.active_rebuilds,
            "heal_clock": self.heal_clock,
            "spares_used": self.spares.used,
            "journal_entries": len(self.journal),
            "health": self.tracker.to_dict(),
        }
