"""Self-healing recovery: budgeted online rebuild, journaling, scrubbing.

The policy half of the fault-tolerance story.  :mod:`repro.pdm.health`
(mechanism) tracks per-disk health and retry/backoff on the machine's hot
path; this package decides *what to do about it*:

* :mod:`repro.recovery.journal` — crash-consistent rebuild journal:
  block-granularity entries so an interrupted rebuild resumes
  idempotently instead of restarting.
* :mod:`repro.recovery.manager` — the online rebuild scheduler: detects
  failed disks, rebuilds them from replica majority onto spares (or
  verifies them in place after a transient outage clears), metered by a
  per-step repair-I/O budget so rebuild rounds interleave with live
  traffic.  All repair I/O is charged to ``repair_ios``, never to the
  foreground budgets the theorem monitors check.
* :mod:`repro.recovery.scrubber` — background checksum scrubbing at a
  bounded rate, promoting latent corruption into repair work before a
  foreground read trips over it.

Layering: imports :mod:`repro.pdm` (machine, health, faults mechanism)
and :mod:`repro.core` (the recovery hooks ``recovery_extents`` /
``reconstruct_block``); :mod:`repro.faults` sits above and wires chaos
scenarios to this package.
"""

from repro.recovery.journal import RebuildJournal
from repro.recovery.manager import RecoveryManager, SparePool
from repro.recovery.scrubber import Scrubber

__all__ = [
    "RebuildJournal",
    "RecoveryManager",
    "SparePool",
    "Scrubber",
]
