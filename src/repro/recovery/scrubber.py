"""Background checksum scrubbing at a bounded rate.

Latent corruption (a :class:`~repro.pdm.faults.SilentCorruption` landing
on a rarely-read block) sits undetected until a foreground read trips
over it — by which time additional failures may have eroded the
redundancy needed to repair it.  The :class:`Scrubber` walks every
registered block in deterministic address order, ``rate`` blocks per
:meth:`~Scrubber.step`, reading through the machine's verified path and
promoting any checksum mismatch into immediate repair work via the
structures' ``reconstruct_block`` hooks.

All scrub I/O — the verification reads and the healing writes — is
charged to ``repair_ios``
(:meth:`~repro.pdm.machine.AbstractDiskMachine.attribute_repair` /
``repair=True``), so a background scrub never inflates foreground
charged-cost budgets.  Blocks on disks that are not currently ``"ok"``
are skipped (counted, not consumed forever: the cursor wraps), and every
pass emits a zero-cost ``scrub.pass`` summary span for the latency
attribution layer.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.pdm.errors import BlockCorruption
from repro.pdm.spans import span

Addr = Tuple[int, int]


class Scrubber:
    """Bounded-rate checksum scrubber (see module docstring)."""

    def __init__(self, machine, *, rate: int = 4):
        if rate <= 0:
            raise ValueError(f"scrub rate must be positive, got {rate}")
        self.machine = machine
        self.rate = rate
        self.structures: List[object] = []  # detlint: guarded(machine-op) -- registration precedes traffic; steps run between machine ops
        self._addrs: Optional[List[Addr]] = None  # detlint: guarded(machine-op) -- rebuilt lazily between machine ops
        self._cursor = 0  # detlint: guarded(machine-op) -- same serialization domain
        self.stats: Dict[str, int] = {  # detlint: guarded(machine-op) -- same serialization domain
            "scanned": 0,
            "skipped": 0,
            "corruptions": 0,
            "repaired": 0,
            "lost": 0,
            "passes": 0,
        }

    def register(self, structure) -> None:
        self.structures.append(structure)
        self._addrs = None  # extents changed: rebuild the walk order

    def refresh(self) -> None:
        """Recompute the walk order from current extents (rebuilding
        dictionaries grow; call after registering or migrating)."""
        self._addrs = None

    def _walk_order(self) -> List[Addr]:
        if self._addrs is None:
            addrs = set()
            for s in self.structures:
                for d, first, count in s.recovery_extents():
                    for b in range(first, first + count):
                        addrs.add((d, b))
            self._addrs = sorted(addrs)
            self._cursor = min(self._cursor, len(self._addrs))
        return self._addrs

    def step(self) -> int:
        """Scrub the next ``rate`` blocks; returns blocks scanned.

        The cursor wraps at the end of the address list, completing a
        *pass*; callers meter scrubbing by invoking this between
        foreground operations, exactly like the recovery manager.
        """
        machine = self.machine
        addrs = self._walk_order()
        if not addrs:
            return 0
        clock = machine.stats.total_ios
        batch: List[Addr] = []
        taken = 0
        while taken < self.rate:
            if self._cursor >= len(addrs):
                self._cursor = 0
                self.stats["passes"] += 1
            addr = addrs[self._cursor]
            self._cursor += 1
            taken += 1
            status = (
                machine.disks[addr[0]].status_at(clock)  # detlint: ignore[PDM102] -- status probe only, no payload access
                if machine.faults is not None
                else "ok"
            )
            if status != "ok":
                self.stats["skipped"] += 1
                continue
            batch.append(addr)
        if not batch:
            return 0
        with span(machine, "scrub.pass", blocks=len(batch)) as h:
            blocks, failures = machine.repair_read_blocks(batch)
            self.stats["scanned"] += len(batch)
            for addr, fault in failures.items():
                if not isinstance(fault, BlockCorruption):
                    continue  # outage/transient raced the scrub; next pass
                self.stats["corruptions"] += 1
                self._heal(addr)
            if h.span is not None:
                h.annotate(corruptions=len(failures))
        return len(batch)

    def _heal(self, addr: Addr) -> None:
        machine = self.machine
        out = None
        with machine.attribute_repair():
            for s in self.structures:
                out = s.reconstruct_block(addr)
                if out is not None:
                    break
        if out is None:
            self.stats["lost"] += 1
            return
        payload, used = out
        machine.write_blocks([(addr, payload, used)], repair=True)
        self.stats["repaired"] += 1

    def to_dict(self) -> Dict[str, int]:
        return dict(self.stats)
