"""repro — reproduction of *Deterministic load balancing and dictionaries in
the parallel disk model* (Berger, Hansen, Pagh, Pătraşcu, Ružić, Tiedemann;
SPAA 2006).

The package is organised bottom-up:

* :mod:`repro.pdm` — the parallel disk model simulator (the cost model all
  theorems of the paper are stated in).
* :mod:`repro.bits` — bit vectors and the unary/field codecs used by the
  one-probe static dictionary of Theorem 6(a).
* :mod:`repro.expanders` — unbalanced bipartite expander graphs: seeded
  random striped expanders, verification, existence bounds, and the
  semi-explicit telescope-product construction of Section 5.
* :mod:`repro.extsort` — external-memory mergesort on the PDM (the
  ``sort(nd)`` substrate of Theorem 6's construction).
* :mod:`repro.hashing` — the randomized baselines of Figure 1 (striped
  hashing, cuckoo hashing, the dictionary of Dietzfelbinger et al. [7], and
  the folklore "[7] + trick" combination) implemented on the same simulator.
* :mod:`repro.btree` — the B-tree baseline motivating Section 1.2.
* :mod:`repro.core` — the paper's contribution: deterministic load balancing
  (Lemma 3) and the three dictionary constructions (Sections 4.1–4.3) plus
  global rebuilding for full dynamization.
* :mod:`repro.workloads` — workload and key-set generators for benchmarks.
* :mod:`repro.analysis` — regeneration of Figure 1 and bound-vs-measured
  reports.
"""

from repro.pdm import ParallelDiskMachine, ParallelDiskHeadMachine, IOStats, OpCost
from repro.core import (
    DChoiceLoadBalancer,
    BasicDictionary,
    StaticDictionary,
    DynamicDictionary,
    RebuildingDictionary,
    ParallelDiskDictionary,
)
from repro.expanders import SeededRandomExpander, ExpanderParams

__version__ = "1.0.0"

__all__ = [
    "ParallelDiskMachine",
    "ParallelDiskHeadMachine",
    "IOStats",
    "OpCost",
    "DChoiceLoadBalancer",
    "BasicDictionary",
    "StaticDictionary",
    "DynamicDictionary",
    "RebuildingDictionary",
    "ParallelDiskDictionary",
    "SeededRandomExpander",
    "ExpanderParams",
    "__version__",
]
