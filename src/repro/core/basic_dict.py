"""The Section 4.1 dictionary: deterministic load balancing over buckets.

Structure: a striped expander ``G`` with ``v = d * stripe_size`` buckets and
the Lemma 3 greedy scheme with ``k = 1`` (or ``k = d/2`` for the satellite
variant).  The bucket array is split across ``D = d`` disks according to the
stripes of ``G``:

* **lookup**: read the ``d`` buckets of ``Γ(x)`` — one block per disk, i.e.
  **one parallel I/O** (``blocks_per_bucket`` I/Os when ``B`` is too small
  for one-probe, the paper's atomic-heap regime);
* **insert**: the lookup probe already fetched all candidate loads, so the
  greedy choice is free; writing the chosen bucket(s) is one more parallel
  I/O — **2 I/Os total**, the best possible (a block must be read before it
  is written);
* **delete**: read + write back, 2 I/Os (the paper routes deletions through
  global rebuilding only to reclaim space; removing an item in place is
  already safe here).

With ``k = k_fragments > 1`` a value is split into ``k`` fragments placed by
the same greedy rule (``v = k N * slack`` buckets), and the single lookup
I/O returns all fragments — satellite bandwidth ``O(B D / log N)`` per probe
(Section 4.1 "with satellite information").
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.interface import (
    CapacityExceeded,
    DegradedLookupError,
    DegradedModeError,
    Dictionary,
    LookupResult,
    annotate_round_packing,
)
from repro.expanders.base import StripedExpander
from repro.expanders.neighborhoods import NeighborhoodMemo
from repro.expanders.random_graph import SeededRandomExpander
from repro.kernels import resolve_kernel
from repro.pdm.errors import DiskFailure
from repro.pdm.iostats import OpCost
from repro.pdm.machine import AbstractDiskMachine
from repro.pdm import InternalMemory, InternalMemoryExceeded
from repro.pdm.spans import span
from repro.pdm.striping import StripedItemBuckets


def _split_value(value: Any, k: int) -> List[Any]:
    """Split a sliceable value into ``k`` near-equal fragments."""
    if k == 1:
        return [value]
    try:
        length = len(value)
    except TypeError:
        raise TypeError(
            f"k_fragments={k} needs sliceable values (str/bytes/list), "
            f"got {type(value).__name__}"
        ) from None
    step = -(-length // k) if length else 0
    out = []
    for t in range(k):
        out.append(value[t * step : (t + 1) * step])
    return out


def _join_fragments(fragments: Sequence[Any]) -> Any:
    """Invert :func:`_split_value`."""
    if len(fragments) == 1:
        return fragments[0]
    first = fragments[0]
    if isinstance(first, str):
        return "".join(fragments)
    if isinstance(first, bytes):
        return b"".join(fragments)
    out = list(first)
    for frag in fragments[1:]:
        out.extend(frag)
    return type(first)(out) if not isinstance(first, list) else out


class _KeyColumnCache:
    """Per-bucket key columns in a kernel column store, M-charged.

    The kernel's :meth:`~repro.kernels.base.Kernel.match_candidates`
    reads bucket key columns out of a backend-shaped store
    (:meth:`~repro.kernels.base.Kernel.new_column_store`); writing every
    column per batch would eat the win, so row handles are cached keyed
    on the block's globally-unique
    :attr:`~repro.pdm.block.Block.version` stamp — refreshed by every
    ``store``/``clear``, and collision-free even when a Block object is
    replaced wholesale.  The kernel batch path only runs with no fault
    injector and no buffer pool attached, the two layers that mutate
    payloads *behind* the version stamp.

    Honesty mirrors :class:`~repro.expanders.neighborhoods.
    NeighborhoodMemo`: ``width + 1`` words charged to
    :class:`~repro.pdm.memory.InternalMemory` per cached column (the
    store rows are fixed-width), freeze (keep answering, stop caching)
    when ``M`` is spoken for, wholesale deterministic reset at
    ``max_entries`` cached columns *or* ``2 * max_entries`` store rows —
    rows are write-once, so stale refreshes and frozen-mode writes leave
    dead rows behind; the row bound caps that scratch.
    """

    __slots__ = (
        "memory", "width", "max_entries",
        "_store", "_backing", "_rows", "_charged", "_frozen",
    )

    def __init__(
        self,
        memory: Optional[InternalMemory],
        width: int,
        max_entries: int = 1 << 16,
    ) -> None:
        self.memory = memory
        self.width = width
        self.max_entries = max_entries
        #: addr -> (block version, row handle)
        self._store: Dict[Tuple[int, int], Tuple[int, int]] = {}  # detlint: guarded(owner-lane) -- memo + memory charge single-writer, like NeighborhoodMemo
        self._backing: Any = None  # kernel column store, created lazily
        self._rows = 0
        self._charged = 0
        self._frozen = False

    @property
    def backing(self) -> Any:
        """The kernel column store the cached row handles index into."""
        return self._backing

    def column(self, kernel, addr: Tuple[int, int], blk) -> int:
        version = blk.version
        entry = self._store.get(addr)
        if entry is not None and entry[0] == version:
            return entry[1]
        if (
            self._rows >= 2 * self.max_entries
            or len(self._store) >= self.max_entries
        ):
            self.reset()
            entry = None
        if self._backing is None:
            self._backing = kernel.new_column_store(self.width)
        row = kernel.store_column(self._backing, blk.payload)
        self._rows += 1
        if entry is not None:
            # Stale version: release before (maybe) re-caching; the old
            # row stays dead in the store until the row-bound reset.
            del self._store[addr]
            words = self.width + 1
            self._charged -= words
            if self.memory is not None:
                self.memory.release(words)
        if self._frozen:
            return row
        words = self.width + 1
        if self.memory is not None:
            try:
                self.memory.charge(words)
            except InternalMemoryExceeded:
                self._frozen = True
                return row
        self._charged += words
        self._store[addr] = (version, row)
        return row

    def columns(self, kernel, addrs, blocks) -> List[int]:
        """:meth:`column` over a whole planned read, hit path inlined —
        one bound-method call per batch instead of one per bucket."""
        get = self._store.get
        column = self.column
        out: List[int] = []
        append = out.append
        for addr, blk in zip(addrs, blocks):
            entry = get(addr)
            if entry is not None and entry[0] == blk.version:
                append(entry[1])
            else:
                append(column(kernel, addr, blk))
        return out

    def reset(self) -> None:
        """Deterministic wholesale reset; releases every charged word and
        drops the backing store (recreated on next use)."""
        self._store.clear()
        self._backing = None
        self._rows = 0
        if self.memory is not None and self._charged:
            self.memory.release(self._charged)
        self._charged = 0
        self._frozen = False

    def __len__(self) -> int:
        return len(self._store)


class BasicDictionary(Dictionary):
    """Deterministic dynamic dictionary with O(1) worst-case I/Os (§4.1)."""

    def __init__(
        self,
        machine: AbstractDiskMachine,
        *,
        universe_size: int,
        capacity: int,
        degree: Optional[int] = None,
        stripe_size: Optional[int] = None,
        k_fragments: int = 1,
        bucket_capacity: Optional[int] = None,
        load_slack: float = 2.0,
        disk_offset: int = 0,
        seed: int = 0,
        graph: Optional[StripedExpander] = None,
        kernel: Any = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if universe_size <= 0:
            raise ValueError(
                f"universe size must be positive, got {universe_size}"
            )
        self.machine = machine
        self.universe_size = universe_size
        self.capacity = capacity
        self.k = k_fragments
        if graph is not None:
            degree = graph.degree
            stripe_size = graph.stripe_size
        if degree is None:
            degree = machine.num_disks - disk_offset
        if degree <= self.k:
            raise ValueError(
                f"Lemma 3 requires d > k; got d={degree}, k={self.k}"
            )
        bucket_cap = (
            machine.block_items if bucket_capacity is None else bucket_capacity
        )
        if stripe_size is None:
            # v buckets sized so the average load k*N/v is at most
            # bucket_cap / load_slack, leaving Lemma 3's additive log term
            # as headroom before a bucket overflows its block(s).
            target_v = max(
                degree, math.ceil(load_slack * self.k * capacity / bucket_cap)
            )
            stripe_size = max(1, -(-target_v // degree))
        if graph is None:
            graph = SeededRandomExpander(
                left_size=universe_size,
                degree=degree,
                stripe_size=stripe_size,
                seed=seed,
            )
        self.graph = graph
        # Hot-path neighborhood evaluation, memoized into internal memory
        # (the model grants M words; repeated Γ(key) evaluations are free).
        self._neighborhoods = NeighborhoodMemo(graph, memory=machine.memory)
        #: batch kernel for the vectorized fast path (``None`` after
        #: ``kernel="off"`` or ``REPRO_KERNEL=off`` — scalar everywhere);
        #: swapping backends never changes an answer or a charge (the
        #: tests/kernels differential suite pins this).
        self._kernel = resolve_kernel(kernel)
        self.buckets = StripedItemBuckets(
            machine,
            stripes=degree,
            stripe_size=stripe_size,
            capacity_items=bucket_cap,
            disk_offset=disk_offset,
        )
        self._columns = _KeyColumnCache(
            machine.memory, self.buckets.capacity_items
        )
        self.size = 0
        self._max_load_seen = 0

    # -- properties ------------------------------------------------------------

    @property
    def degree(self) -> int:
        return self.graph.degree

    @property
    def num_buckets(self) -> int:
        return self.graph.right_size

    @property
    def one_probe(self) -> bool:
        """True when a lookup is a single parallel I/O (bucket = 1 block)."""
        return self.buckets.blocks_per_bucket == 1

    @property
    def max_load_seen(self) -> int:
        return self._max_load_seen

    # -- operations -------------------------------------------------------------

    def lookup(self, key: int) -> LookupResult:
        self._check_key(key)
        with span(
            self.machine,
            "basic_dict.lookup",
            op="lookup",
            structure="basic_dict",
            blocks_per_bucket=self.buckets.blocks_per_bucket,
        ) as m:
            locs = self._neighborhoods.striped(key)
            if self.machine.faults is None:
                contents = self.buckets.read_buckets(locs)
                failures: Dict[Tuple[int, int], Any] = {}
            else:
                contents, failures = self.buckets.read_buckets_degraded(locs)
                if failures and m.span is not None:
                    m.annotate(degraded=True, failed_buckets=len(failures))
            fragments: List[Tuple[int, Any]] = []
            for loc in locs:
                if loc in failures:
                    continue
                for (k2, t, frag) in contents[loc]:
                    if k2 == key:
                        fragments.append((t, frag))
            if m.span is not None:
                m.annotate(found=bool(fragments))
        if failures:
            self._settle_degraded(key, fragments, failures)
        if not fragments:
            return LookupResult(False, None, m.cost)
        fragments.sort()
        value = _join_fragments([frag for _, frag in fragments])
        return LookupResult(True, value, m.cost)

    def _settle_degraded(
        self,
        key: int,
        fragments: List[Tuple[int, Any]],
        failures: Dict[Tuple[int, int], Any],
    ) -> None:
        """Decide whether a lookup that lost buckets is still sound.

        A key lives in exactly one bucket per fragment (``k`` buckets
        total), so a *complete* fragment set recovered from the surviving
        choices is a correct positive answer — the ``d``-choice fallback.
        Anything else is undecidable: the key (or a missing fragment) may
        be hiding in a failed bucket, so we fail loudly rather than report
        a possibly-wrong miss or a truncated value.
        """
        ts = sorted(t for t, _ in fragments)
        if ts == list(range(self.k)):
            return  # every fragment recovered: positive answer is sound
        raise DegradedLookupError(
            f"key {key}: {len(failures)} of {self.degree} candidate buckets "
            f"unreadable and only {len(ts)}/{self.k} fragments recovered; "
            f"membership cannot be decided",
            key=key,
            failures=failures,
            membership=True if ts else None,
        )

    def lookup_batch(self, keys: Sequence[int]) -> Tuple[Dict[int, LookupResult], OpCost]:
        """Strict batched lookup: like :meth:`batch_lookup` but an
        undecidable key (first in key order) raises instead of appearing as
        a per-key error value.  Kept for callers that prefer loud failure.
        """
        outcomes, cost = self.batch_lookup(keys)
        out: Dict[int, LookupResult] = {}
        for key, result in outcomes.items():
            if isinstance(result, Exception):
                raise result
            out[key] = result
        return out, cost

    def _annotate_packing(self, m, all_locs, store) -> None:
        annotate_round_packing(m, self.machine, store, all_locs.values())

    def batch_lookup(self, keys):
        """Answer many lookups in one round-packed probe.

        All requested buckets go to the machine as a single batch; the PDM
        prices it at the max per-disk multiplicity, so ``q`` *distinct*
        keys cost about ``q`` rounds — but repeated/overlapping keys
        deduplicate to shared blocks and cost less (a skewed read stream,
        the Section 1.2 webmail pattern, gains the most).  Per-key results
        carry the whole batch's cost; undecidable keys under faults become
        per-key :class:`DegradedLookupError` values (PR 3 semantics — the
        batch itself never fails wholesale).
        """
        keys = list(keys)
        for key in keys:
            self._check_key(key)
        kernel = self._kernel
        if (
            kernel is not None
            and self.machine.faults is None
            and self.machine.cache is None
            and self.buckets.blocks_per_bucket == 1
            and self.universe_size <= 0xFFFFFFFFFFFFFFFF
        ):
            # Vectorized fast path: flat neighborhoods, kernel probe plan,
            # aligned planned read, batch key matching.  Bit-identical
            # charges and answers (differential suite); excluded whenever a
            # layer that can mutate payloads behind the version stamps —
            # fault injector, buffer pool — is attached, buckets span
            # several blocks (the plan covers single-block buckets), or
            # keys might not fit the kernels' 64-bit lanes (the column
            # stores pad rows with 2**64 - 1).
            return self._batch_lookup_kernel(keys, kernel)
        with span(
            self.machine,
            "basic_dict.batch_lookup",
            op="batch_lookup",
            structure="basic_dict",
            blocks_per_bucket=self.buckets.blocks_per_bucket,
            batch_size=len(keys),
        ) as m:
            # Under faults (or any other exclusion) the reads stay on the
            # scalar path, but the neighborhoods still batch: same values,
            # same memo effects, one kernel evaluation for the misses.
            all_locs = self._neighborhoods.batch_striped(
                list(dict.fromkeys(keys)), kernel=kernel
            )
            wanted = list(
                dict.fromkeys(loc for locs in all_locs.values() for loc in locs)
            )
            if self.machine.faults is None:
                contents = self.buckets.read_buckets(wanted)
                failures: Dict[Tuple[int, int], Any] = {}
            else:
                contents, failures = self.buckets.read_buckets_degraded(wanted)
                if failures and m.span is not None:
                    m.annotate(degraded=True, failed_buckets=len(failures))
            if m.span is not None:
                m.annotate(distinct_keys=len(all_locs), buckets_read=len(wanted))
            self._annotate_packing(m, all_locs, self.buckets)
        out: Dict[int, Any] = {}
        for key, locs in all_locs.items():
            fragments = [
                (t, frag)
                for loc in locs
                if loc not in failures
                for (k2, t, frag) in contents[loc]
                if k2 == key
            ]
            if failures and any(loc in failures for loc in locs):
                try:
                    # Same soundness rule as the single-key path, applied
                    # per key: a complete fragment set from the surviving
                    # choices stays a sound positive answer.
                    self._settle_degraded(
                        key,
                        fragments,
                        {l: failures[l] for l in locs if l in failures},
                    )
                except DegradedLookupError as exc:
                    out[key] = exc
                    continue
            if fragments:
                fragments.sort()
                value = _join_fragments([f for _, f in fragments])
                out[key] = LookupResult(True, value, m.cost)
            else:
                out[key] = LookupResult(False, None, m.cost)
        return out, m.cost

    def _batch_lookup_kernel(self, keys, kernel):
        """The vectorized :meth:`batch_lookup` body (healthy, uncached,
        one-probe).  Stage by stage, with its scalar equivalent:

        1. flat neighborhoods (``NeighborhoodMemo.batch_local_indices`` ==
           per-key ``striped()``, including memo charges and counters);
        2. kernel probe plan (``plan_unique_probe`` == the per-loc
           ``dict.fromkeys`` dedup + ``_batch_rounds`` per-disk tally);
        3. one aligned planned read (``read_planned_blocks`` == the
           ``read_blocks`` fast path: same rounds, same blocks_read);
        4. batch key matching of each key against its own candidate rows
           in the version-cached column store (``match_candidates`` ==
           the per-key fragment scan).
        """
        machine = self.machine
        buckets = self.buckets
        d = self.graph.degree
        with span(
            machine,
            "basic_dict.batch_lookup",
            op="batch_lookup",
            structure="basic_dict",
            blocks_per_bucket=buckets.blocks_per_bucket,
            batch_size=len(keys),
        ) as m:
            distinct = list(dict.fromkeys(keys))
            instrumented = m.span is not None
            if instrumented:
                # The kernel stages surface as their own latency layer
                # ("kernel" in repro.obs); uninstrumented runs skip even
                # the span() no-op calls.
                with span(machine, "kernel.neighborhoods", backend=kernel.name):
                    flat = self._neighborhoods.batch_local_indices(
                        distinct, kernel=kernel
                    )
                with span(machine, "kernel.plan", backend=kernel.name):
                    unique, max_per_disk, inverse = buckets.probe_plan(
                        flat, kernel
                    )
            else:
                flat = self._neighborhoods.batch_local_indices(
                    distinct, kernel=kernel
                )
                unique, max_per_disk, inverse = buckets.probe_plan(
                    flat, kernel
                )
            rounds = machine.rounds_for_counts(len(unique), max_per_disk)
            blocks = machine.read_planned_blocks(unique, rounds)
            columns_cache = self._columns
            if instrumented:
                with span(machine, "kernel.match", backend=kernel.name):
                    rows = columns_cache.columns(kernel, unique, blocks)
                    matches = (
                        kernel.match_candidates(
                            columns_cache.backing, rows, inverse, distinct
                        )
                        if rows
                        else []
                    )
            else:
                rows = columns_cache.columns(kernel, unique, blocks)
                matches = (
                    kernel.match_candidates(
                        columns_cache.backing, rows, inverse, distinct
                    )
                    if rows
                    else []
                )
            per_key: List[Optional[List[Tuple[int, Any]]]] = (
                [None] * len(distinct)
            )
            for qi, ci, slot in matches:
                item = blocks[ci].payload[slot]
                frags = per_key[qi]
                if frags is None:
                    per_key[qi] = frags = []
                frags.append((item[1], item[2]))
            if instrumented:
                m.annotate(
                    distinct_keys=len(distinct), buckets_read=len(unique)
                )
                annotate_round_packing(
                    m,
                    machine,
                    buckets,
                    [
                        tuple(enumerate(flat[i * d : (i + 1) * d]))
                        for i in range(len(distinct))
                    ],
                )
        out: Dict[int, Any] = {}
        cost = m.cost
        for qi, key in enumerate(distinct):
            frags = per_key[qi]
            if frags:
                frags.sort()
                out[key] = LookupResult(
                    True, _join_fragments([f for _, f in frags]), cost
                )
            else:
                out[key] = LookupResult(False, None, cost)
        return out, cost

    def batch_insert(self, items):
        """Upsert many keys with one batched read and one batched write.

        The candidate buckets of every key are fetched as a single
        round-packed batch, the greedy ``d``-choice placements are computed
        in arrival order against the staged in-memory contents (so earlier
        keys' placements shape later keys' loads, exactly as if the inserts
        ran sequentially), and every dirty bucket is written back in one
        batch.  Per-key outcomes are ``(was_present, old_value)`` or a
        typed error: keys with an unreadable candidate bucket refuse their
        mutation upfront (:class:`DegradedModeError`), keys that would
        overflow the structure or a bucket get :class:`CapacityExceeded`,
        and neither poisons the rest of the batch.
        """
        items = dict(items)
        for key in items:
            self._check_key(key)
        with span(
            self.machine,
            "basic_dict.batch_insert",
            op="batch_insert",
            structure="basic_dict",
            blocks_per_bucket=self.buckets.blocks_per_bucket,
            batch_size=len(items),
        ) as m:
            all_locs = self._neighborhoods.batch_striped(
                list(items), kernel=self._kernel
            )
            wanted = list(
                dict.fromkeys(loc for locs in all_locs.values() for loc in locs)
            )
            if self.machine.faults is None:
                contents = self.buckets.read_buckets(wanted)
                failures: Dict[Tuple[int, int], Any] = {}
            else:
                contents, failures = self.buckets.read_buckets_degraded(wanted)
                if failures and m.span is not None:
                    m.annotate(degraded=True, failed_buckets=len(failures))
            self._annotate_packing(m, all_locs, self.buckets)

            out: Dict[int, Any] = {}
            staged = dict(contents)
            dirty: Dict[Tuple[int, int], List[Any]] = {}
            new_keys = 0
            for key, value in items.items():
                locs = all_locs[key]
                lost = {l: failures[l] for l in locs if l in failures}
                if lost:
                    out[key] = DegradedModeError(
                        f"upsert of key {key}: {len(lost)} of {self.degree} "
                        f"candidate buckets unreadable; refusing a placement "
                        f"that could duplicate the key",
                        key=key,
                        op="upsert",
                        failures=lost,
                    )
                    continue
                trial = {loc: list(staged[loc]) for loc in locs}
                old_fragments: List[Tuple[int, Any]] = []
                for loc in locs:
                    kept = [it for it in trial[loc] if it[0] != key]
                    if len(kept) != len(trial[loc]):
                        old_fragments.extend(
                            (t, frag)
                            for (k2, t, frag) in trial[loc]
                            if k2 == key
                        )
                        trial[loc] = kept
                was_present = bool(old_fragments)
                if not was_present and self.size + new_keys >= self.capacity:
                    out[key] = CapacityExceeded(
                        f"dictionary at capacity N={self.capacity}"
                    )
                    continue
                fragments = _split_value(value, self.k)
                loads = {loc: len(trial[loc]) for loc in locs}
                overflow = False
                for t, frag in enumerate(fragments):
                    target = min(locs, key=lambda loc: (loads[loc], loc))
                    trial[target].append((key, t, frag))
                    loads[target] += 1
                    if loads[target] > self.buckets.capacity_items:
                        overflow = True
                        break
                if overflow:
                    out[key] = CapacityExceeded(
                        f"bucket overflow placing key {key}; the "
                        f"load-balancing guarantee needs a larger bucket "
                        f"array (stripe_size) or larger blocks"
                    )
                    continue
                for loc in locs:
                    if trial[loc] != staged[loc]:
                        staged[loc] = trial[loc]
                        dirty[loc] = trial[loc]
                    if len(staged[loc]) > self._max_load_seen:
                        self._max_load_seen = len(staged[loc])
                if was_present:
                    old_fragments.sort()
                    out[key] = (
                        True,
                        _join_fragments([f for _, f in old_fragments]),
                    )
                else:
                    new_keys += 1
                    out[key] = (False, None)
            if dirty:
                try:
                    self.buckets.write_buckets(dirty)
                except DiskFailure as exc:
                    # write_blocks is atomic — nothing was mutated.  Every
                    # key that thought it succeeded degrades, per key.
                    for key, res in list(out.items()):
                        if not isinstance(res, Exception):
                            out[key] = DegradedModeError(
                                f"upsert of key {key}: batch write failed "
                                f"({exc})",
                                key=key,
                                op="upsert",
                                failures={key: exc},
                            )
                    new_keys = 0
            self.size += new_keys
            if m.span is not None:
                m.annotate(
                    size=self.size,
                    max_load=self._max_load_seen,
                    buckets_written=len(dirty),
                )
        return out, m.cost

    def batch_delete(self, keys):
        """Delete many keys with one batched read and one batched write.

        Per-key outcomes are ``removed`` booleans; keys with unreadable
        candidate buckets refuse upfront with :class:`DegradedModeError`
        (a delete that cannot see every candidate might leave the key
        alive in a failed bucket).
        """
        keys = list(dict.fromkeys(keys))
        for key in keys:
            self._check_key(key)
        with span(
            self.machine,
            "basic_dict.batch_delete",
            op="batch_delete",
            structure="basic_dict",
            blocks_per_bucket=self.buckets.blocks_per_bucket,
            batch_size=len(keys),
        ) as m:
            all_locs = self._neighborhoods.batch_striped(
                keys, kernel=self._kernel
            )
            wanted = list(
                dict.fromkeys(loc for locs in all_locs.values() for loc in locs)
            )
            if self.machine.faults is None:
                contents = self.buckets.read_buckets(wanted)
                failures: Dict[Tuple[int, int], Any] = {}
            else:
                contents, failures = self.buckets.read_buckets_degraded(wanted)
                if failures and m.span is not None:
                    m.annotate(degraded=True, failed_buckets=len(failures))
            self._annotate_packing(m, all_locs, self.buckets)

            out: Dict[int, Any] = {}
            staged = dict(contents)
            dirty: Dict[Tuple[int, int], List[Any]] = {}
            removed_keys = 0
            for key in keys:
                locs = all_locs[key]
                lost = {l: failures[l] for l in locs if l in failures}
                if lost:
                    out[key] = DegradedModeError(
                        f"delete of key {key}: {len(lost)} of {self.degree} "
                        f"candidate buckets unreadable",
                        key=key,
                        op="delete",
                        failures=lost,
                    )
                    continue
                removed = False
                for loc in locs:
                    kept = [it for it in staged[loc] if it[0] != key]
                    if len(kept) != len(staged[loc]):
                        staged[loc] = kept
                        dirty[loc] = kept
                        removed = True
                out[key] = removed
                if removed:
                    removed_keys += 1
            if dirty:
                try:
                    self.buckets.write_buckets(dirty)
                except DiskFailure as exc:
                    for key, res in list(out.items()):
                        if res is True:
                            out[key] = DegradedModeError(
                                f"delete of key {key}: batch write failed "
                                f"({exc})",
                                key=key,
                                op="delete",
                                failures={key: exc},
                            )
                    removed_keys = 0
            self.size -= removed_keys
        return out, m.cost

    def insert(self, key: int, value: Any = None) -> OpCost:
        found, _, cost = self.upsert(key, value)
        return cost

    def upsert(self, key: int, value: Any = None) -> Tuple[bool, Any, OpCost]:
        """Insert or replace; returns ``(was_present, old_value, cost)``."""
        self._check_key(key)
        with span(
            self.machine,
            "basic_dict.upsert",
            op="upsert",
            structure="basic_dict",
            blocks_per_bucket=self.buckets.blocks_per_bucket,
        ) as m:
            locs = self._neighborhoods.striped(key)
            if self.machine.faults is None:
                contents = self.buckets.read_buckets(locs)
            else:
                contents, failures = self.buckets.read_buckets_degraded(locs)
                if failures:
                    # Placing into a surviving choice while the key might be
                    # hiding in a failed bucket could create a duplicate —
                    # a future silent wrong answer.  Mutations need all d
                    # candidate loads; fail before touching anything.
                    if m.span is not None:
                        m.annotate(degraded=True, failed_buckets=len(failures))
                    raise DegradedModeError(
                        f"upsert of key {key}: {len(failures)} of "
                        f"{self.degree} candidate buckets unreadable; "
                        f"refusing a placement that could duplicate the key",
                        key=key,
                        op="upsert",
                        failures=failures,
                    )

            old_fragments: List[Tuple[int, Any]] = []
            dirty: Dict[Tuple[int, int], List[Any]] = {}
            for loc in locs:
                items = contents[loc]
                kept = [it for it in items if it[0] != key]
                if len(kept) != len(items):
                    old_fragments.extend(
                        (t, frag) for (k2, t, frag) in items if k2 == key
                    )
                    contents[loc] = kept
                    dirty[loc] = kept
            was_present = bool(old_fragments)

            if not was_present and self.size >= self.capacity:
                raise CapacityExceeded(
                    f"dictionary at capacity N={self.capacity}"
                )

            # Greedy d-choice placement using the loads the probe fetched.
            fragments = _split_value(value, self.k)
            loads = {loc: len(contents[loc]) for loc in locs}
            for t, frag in enumerate(fragments):
                target = min(locs, key=lambda loc: (loads[loc], loc))
                contents[target] = contents[target] + [(key, t, frag)]
                loads[target] += 1
                dirty[target] = contents[target]
                if loads[target] > self._max_load_seen:
                    self._max_load_seen = loads[target]

            for loc, items in dirty.items():
                if len(items) > self.buckets.capacity_items:
                    raise CapacityExceeded(
                        f"bucket {loc} overflows its {self.buckets.capacity_items}"
                        f"-item capacity; the load-balancing guarantee needs a "
                        f"larger bucket array (stripe_size) or larger blocks"
                    )
            self.buckets.write_buckets(dirty)
            if m.span is not None:
                # Telemetry for the Lemma 3 bound monitor: post-operation
                # occupancy and the worst bucket load ever reached.
                m.annotate(
                    size=self.size + (0 if was_present else 1),
                    max_load=self._max_load_seen,
                    num_buckets=self.num_buckets,
                    degree=self.degree,
                    k=self.k,
                )
        if not was_present:
            self.size += 1
            old_value = None
        else:
            old_fragments.sort()
            old_value = _join_fragments([f for _, f in old_fragments])
        return was_present, old_value, m.cost

    def delete(self, key: int) -> OpCost:
        self._check_key(key)
        with span(
            self.machine,
            "basic_dict.delete",
            op="delete",
            structure="basic_dict",
            blocks_per_bucket=self.buckets.blocks_per_bucket,
        ) as m:
            locs = self._neighborhoods.striped(key)
            if self.machine.faults is None:
                contents = self.buckets.read_buckets(locs)
            else:
                contents, failures = self.buckets.read_buckets_degraded(locs)
                if failures:
                    # A delete that cannot see every candidate bucket might
                    # leave the key alive in a failed one; refuse up front
                    # (no partial mutation has happened yet).
                    if m.span is not None:
                        m.annotate(degraded=True, failed_buckets=len(failures))
                    raise DegradedModeError(
                        f"delete of key {key}: {len(failures)} of "
                        f"{self.degree} candidate buckets unreadable",
                        key=key,
                        op="delete",
                        failures=failures,
                    )
            dirty = {}
            removed = False
            for loc in locs:
                items = contents[loc]
                kept = [it for it in items if it[0] != key]
                if len(kept) != len(items):
                    dirty[loc] = kept
                    removed = True
            if dirty:
                self.buckets.write_buckets(dirty)
        if removed:
            self.size -= 1
        return m.cost

    # -- bulk construction -------------------------------------------------------

    def bulk_build(self, items: Dict[int, Any]) -> OpCost:
        """Load a key -> value map into an EMPTY dictionary with batched
        writes.

        Placement is the identical greedy rule run in host memory (the
        load balancer is pure combinatorics; the paper's construction
        sections likewise compute assignments before touching disk), then
        every touched bucket is written in one batch: the cost is
        ``~buckets/D`` parallel I/Os instead of ``2n`` — the bulk analogue
        of Theorem 6's "construction proportional to sorting" theme.
        """
        if self.size:
            raise ValueError("bulk_build requires an empty dictionary")
        if len(items) > self.capacity:
            raise CapacityExceeded(
                f"{len(items)} items exceed capacity N={self.capacity}"
            )
        contents: Dict[Tuple[int, int], List[Any]] = {}
        with span(
            self.machine,
            "basic_dict.bulk_build",
            op="bulk_build",
            structure="basic_dict",
            items=len(items),
        ) as m:
            for key in sorted(items):
                self._check_key(key)
                locs = self._neighborhoods.striped(key)
                fragments = _split_value(items[key], self.k)
                loads = {
                    loc: len(contents.get(loc, ())) for loc in locs
                }
                for t, frag in enumerate(fragments):
                    target = min(locs, key=lambda loc: (loads[loc], loc))
                    contents.setdefault(target, []).append((key, t, frag))
                    loads[target] += 1
                    if loads[target] > self._max_load_seen:
                        self._max_load_seen = loads[target]
            for loc, bucket in contents.items():
                if len(bucket) > self.buckets.capacity_items:
                    raise CapacityExceeded(
                        f"bucket {loc} would hold {len(bucket)} items; "
                        f"capacity is {self.buckets.capacity_items}"
                    )
            self.buckets.write_buckets(contents)
        self.size = len(items)
        return m.cost

    # -- audits --------------------------------------------------------------------

    def stored_keys(self) -> Iterator[int]:
        """All keys currently stored (audit scan; no I/O charged — rebuild
        schedulers charge real I/O through lookup/insert per migrated key)."""
        seen = set()
        for loc in self.buckets.loads():
            for (k2, _t, _frag) in self.buckets.peek(loc):
                if k2 not in seen:
                    seen.add(k2)
                    yield k2

    def recovery_extents(self):
        return self.buckets.extents()

    def current_max_load(self) -> int:
        loads = self.buckets.loads()
        return max(loads.values()) if loads else 0

    def load_histogram(self) -> Dict[int, int]:
        """Map load value -> number of buckets with that load (the
        balanced-allocation telemetry lens; audit scan, no I/O charged).
        Load 0 counts the buckets currently empty."""
        counts: Dict[int, int] = {}
        loads = self.buckets.loads()
        for load in loads.values():
            counts[load] = counts.get(load, 0) + 1
        counts[0] = self.num_buckets - len(loads)
        return {load: counts[load] for load in sorted(counts)}

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BasicDictionary(n={self.size}/{self.capacity}, d={self.degree}, "
            f"v={self.num_buckets}, k={self.k})"
        )
