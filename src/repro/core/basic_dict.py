"""The Section 4.1 dictionary: deterministic load balancing over buckets.

Structure: a striped expander ``G`` with ``v = d * stripe_size`` buckets and
the Lemma 3 greedy scheme with ``k = 1`` (or ``k = d/2`` for the satellite
variant).  The bucket array is split across ``D = d`` disks according to the
stripes of ``G``:

* **lookup**: read the ``d`` buckets of ``Γ(x)`` — one block per disk, i.e.
  **one parallel I/O** (``blocks_per_bucket`` I/Os when ``B`` is too small
  for one-probe, the paper's atomic-heap regime);
* **insert**: the lookup probe already fetched all candidate loads, so the
  greedy choice is free; writing the chosen bucket(s) is one more parallel
  I/O — **2 I/Os total**, the best possible (a block must be read before it
  is written);
* **delete**: read + write back, 2 I/Os (the paper routes deletions through
  global rebuilding only to reclaim space; removing an item in place is
  already safe here).

With ``k = k_fragments > 1`` a value is split into ``k`` fragments placed by
the same greedy rule (``v = k N * slack`` buckets), and the single lookup
I/O returns all fragments — satellite bandwidth ``O(B D / log N)`` per probe
(Section 4.1 "with satellite information").
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.core.interface import (
    CapacityExceeded,
    DegradedLookupError,
    DegradedModeError,
    Dictionary,
    LookupResult,
    annotate_round_packing,
)
from repro.expanders.base import StripedExpander
from repro.expanders.neighborhoods import NeighborhoodMemo
from repro.expanders.random_graph import SeededRandomExpander
from repro.pdm.errors import DiskFailure
from repro.pdm.iostats import OpCost
from repro.pdm.machine import AbstractDiskMachine
from repro.pdm.spans import span
from repro.pdm.striping import StripedItemBuckets


def _split_value(value: Any, k: int) -> List[Any]:
    """Split a sliceable value into ``k`` near-equal fragments."""
    if k == 1:
        return [value]
    try:
        length = len(value)
    except TypeError:
        raise TypeError(
            f"k_fragments={k} needs sliceable values (str/bytes/list), "
            f"got {type(value).__name__}"
        ) from None
    step = -(-length // k) if length else 0
    out = []
    for t in range(k):
        out.append(value[t * step : (t + 1) * step])
    return out


def _join_fragments(fragments: Sequence[Any]) -> Any:
    """Invert :func:`_split_value`."""
    if len(fragments) == 1:
        return fragments[0]
    first = fragments[0]
    if isinstance(first, str):
        return "".join(fragments)
    if isinstance(first, bytes):
        return b"".join(fragments)
    out = list(first)
    for frag in fragments[1:]:
        out.extend(frag)
    return type(first)(out) if not isinstance(first, list) else out


class BasicDictionary(Dictionary):
    """Deterministic dynamic dictionary with O(1) worst-case I/Os (§4.1)."""

    def __init__(
        self,
        machine: AbstractDiskMachine,
        *,
        universe_size: int,
        capacity: int,
        degree: Optional[int] = None,
        stripe_size: Optional[int] = None,
        k_fragments: int = 1,
        bucket_capacity: Optional[int] = None,
        load_slack: float = 2.0,
        disk_offset: int = 0,
        seed: int = 0,
        graph: Optional[StripedExpander] = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if universe_size <= 0:
            raise ValueError(
                f"universe size must be positive, got {universe_size}"
            )
        self.machine = machine
        self.universe_size = universe_size
        self.capacity = capacity
        self.k = k_fragments
        if graph is not None:
            degree = graph.degree
            stripe_size = graph.stripe_size
        if degree is None:
            degree = machine.num_disks - disk_offset
        if degree <= self.k:
            raise ValueError(
                f"Lemma 3 requires d > k; got d={degree}, k={self.k}"
            )
        bucket_cap = (
            machine.block_items if bucket_capacity is None else bucket_capacity
        )
        if stripe_size is None:
            # v buckets sized so the average load k*N/v is at most
            # bucket_cap / load_slack, leaving Lemma 3's additive log term
            # as headroom before a bucket overflows its block(s).
            target_v = max(
                degree, math.ceil(load_slack * self.k * capacity / bucket_cap)
            )
            stripe_size = max(1, -(-target_v // degree))
        if graph is None:
            graph = SeededRandomExpander(
                left_size=universe_size,
                degree=degree,
                stripe_size=stripe_size,
                seed=seed,
            )
        self.graph = graph
        # Hot-path neighborhood evaluation, memoized into internal memory
        # (the model grants M words; repeated Γ(key) evaluations are free).
        self._neighborhoods = NeighborhoodMemo(graph, memory=machine.memory)
        self.buckets = StripedItemBuckets(
            machine,
            stripes=degree,
            stripe_size=stripe_size,
            capacity_items=bucket_cap,
            disk_offset=disk_offset,
        )
        self.size = 0
        self._max_load_seen = 0

    # -- properties ------------------------------------------------------------

    @property
    def degree(self) -> int:
        return self.graph.degree

    @property
    def num_buckets(self) -> int:
        return self.graph.right_size

    @property
    def one_probe(self) -> bool:
        """True when a lookup is a single parallel I/O (bucket = 1 block)."""
        return self.buckets.blocks_per_bucket == 1

    @property
    def max_load_seen(self) -> int:
        return self._max_load_seen

    # -- operations -------------------------------------------------------------

    def lookup(self, key: int) -> LookupResult:
        self._check_key(key)
        with span(
            self.machine,
            "basic_dict.lookup",
            op="lookup",
            structure="basic_dict",
            blocks_per_bucket=self.buckets.blocks_per_bucket,
        ) as m:
            locs = self._neighborhoods.striped(key)
            if self.machine.faults is None:
                contents = self.buckets.read_buckets(locs)
                failures: Dict[Tuple[int, int], Any] = {}
            else:
                contents, failures = self.buckets.read_buckets_degraded(locs)
                if failures and m.span is not None:
                    m.annotate(degraded=True, failed_buckets=len(failures))
            fragments: List[Tuple[int, Any]] = []
            for loc in locs:
                if loc in failures:
                    continue
                for (k2, t, frag) in contents[loc]:
                    if k2 == key:
                        fragments.append((t, frag))
            if m.span is not None:
                m.annotate(found=bool(fragments))
        if failures:
            self._settle_degraded(key, fragments, failures)
        if not fragments:
            return LookupResult(False, None, m.cost)
        fragments.sort()
        value = _join_fragments([frag for _, frag in fragments])
        return LookupResult(True, value, m.cost)

    def _settle_degraded(
        self,
        key: int,
        fragments: List[Tuple[int, Any]],
        failures: Dict[Tuple[int, int], Any],
    ) -> None:
        """Decide whether a lookup that lost buckets is still sound.

        A key lives in exactly one bucket per fragment (``k`` buckets
        total), so a *complete* fragment set recovered from the surviving
        choices is a correct positive answer — the ``d``-choice fallback.
        Anything else is undecidable: the key (or a missing fragment) may
        be hiding in a failed bucket, so we fail loudly rather than report
        a possibly-wrong miss or a truncated value.
        """
        ts = sorted(t for t, _ in fragments)
        if ts == list(range(self.k)):
            return  # every fragment recovered: positive answer is sound
        raise DegradedLookupError(
            f"key {key}: {len(failures)} of {self.degree} candidate buckets "
            f"unreadable and only {len(ts)}/{self.k} fragments recovered; "
            f"membership cannot be decided",
            key=key,
            failures=failures,
            membership=True if ts else None,
        )

    def lookup_batch(self, keys: Sequence[int]) -> Tuple[Dict[int, LookupResult], OpCost]:
        """Strict batched lookup: like :meth:`batch_lookup` but an
        undecidable key (first in key order) raises instead of appearing as
        a per-key error value.  Kept for callers that prefer loud failure.
        """
        outcomes, cost = self.batch_lookup(keys)
        out: Dict[int, LookupResult] = {}
        for key, result in outcomes.items():
            if isinstance(result, Exception):
                raise result
            out[key] = result
        return out, cost

    def _annotate_packing(self, m, all_locs, store) -> None:
        annotate_round_packing(m, self.machine, store, all_locs.values())

    def batch_lookup(self, keys):
        """Answer many lookups in one round-packed probe.

        All requested buckets go to the machine as a single batch; the PDM
        prices it at the max per-disk multiplicity, so ``q`` *distinct*
        keys cost about ``q`` rounds — but repeated/overlapping keys
        deduplicate to shared blocks and cost less (a skewed read stream,
        the Section 1.2 webmail pattern, gains the most).  Per-key results
        carry the whole batch's cost; undecidable keys under faults become
        per-key :class:`DegradedLookupError` values (PR 3 semantics — the
        batch itself never fails wholesale).
        """
        keys = list(keys)
        for key in keys:
            self._check_key(key)
        with span(
            self.machine,
            "basic_dict.batch_lookup",
            op="batch_lookup",
            structure="basic_dict",
            blocks_per_bucket=self.buckets.blocks_per_bucket,
            batch_size=len(keys),
        ) as m:
            all_locs = {}
            for key in dict.fromkeys(keys):
                all_locs[key] = self._neighborhoods.striped(key)
            wanted = list(
                dict.fromkeys(loc for locs in all_locs.values() for loc in locs)
            )
            if self.machine.faults is None:
                contents = self.buckets.read_buckets(wanted)
                failures: Dict[Tuple[int, int], Any] = {}
            else:
                contents, failures = self.buckets.read_buckets_degraded(wanted)
                if failures and m.span is not None:
                    m.annotate(degraded=True, failed_buckets=len(failures))
            if m.span is not None:
                m.annotate(distinct_keys=len(all_locs), buckets_read=len(wanted))
            self._annotate_packing(m, all_locs, self.buckets)
        out: Dict[int, Any] = {}
        for key, locs in all_locs.items():
            fragments = [
                (t, frag)
                for loc in locs
                if loc not in failures
                for (k2, t, frag) in contents[loc]
                if k2 == key
            ]
            if failures and any(loc in failures for loc in locs):
                try:
                    # Same soundness rule as the single-key path, applied
                    # per key: a complete fragment set from the surviving
                    # choices stays a sound positive answer.
                    self._settle_degraded(
                        key,
                        fragments,
                        {l: failures[l] for l in locs if l in failures},
                    )
                except DegradedLookupError as exc:
                    out[key] = exc
                    continue
            if fragments:
                fragments.sort()
                value = _join_fragments([f for _, f in fragments])
                out[key] = LookupResult(True, value, m.cost)
            else:
                out[key] = LookupResult(False, None, m.cost)
        return out, m.cost

    def batch_insert(self, items):
        """Upsert many keys with one batched read and one batched write.

        The candidate buckets of every key are fetched as a single
        round-packed batch, the greedy ``d``-choice placements are computed
        in arrival order against the staged in-memory contents (so earlier
        keys' placements shape later keys' loads, exactly as if the inserts
        ran sequentially), and every dirty bucket is written back in one
        batch.  Per-key outcomes are ``(was_present, old_value)`` or a
        typed error: keys with an unreadable candidate bucket refuse their
        mutation upfront (:class:`DegradedModeError`), keys that would
        overflow the structure or a bucket get :class:`CapacityExceeded`,
        and neither poisons the rest of the batch.
        """
        items = dict(items)
        for key in items:
            self._check_key(key)
        with span(
            self.machine,
            "basic_dict.batch_insert",
            op="batch_insert",
            structure="basic_dict",
            blocks_per_bucket=self.buckets.blocks_per_bucket,
            batch_size=len(items),
        ) as m:
            all_locs = {
                key: self._neighborhoods.striped(key) for key in items
            }
            wanted = list(
                dict.fromkeys(loc for locs in all_locs.values() for loc in locs)
            )
            if self.machine.faults is None:
                contents = self.buckets.read_buckets(wanted)
                failures: Dict[Tuple[int, int], Any] = {}
            else:
                contents, failures = self.buckets.read_buckets_degraded(wanted)
                if failures and m.span is not None:
                    m.annotate(degraded=True, failed_buckets=len(failures))
            self._annotate_packing(m, all_locs, self.buckets)

            out: Dict[int, Any] = {}
            staged = dict(contents)
            dirty: Dict[Tuple[int, int], List[Any]] = {}
            new_keys = 0
            for key, value in items.items():
                locs = all_locs[key]
                lost = {l: failures[l] for l in locs if l in failures}
                if lost:
                    out[key] = DegradedModeError(
                        f"upsert of key {key}: {len(lost)} of {self.degree} "
                        f"candidate buckets unreadable; refusing a placement "
                        f"that could duplicate the key",
                        key=key,
                        op="upsert",
                        failures=lost,
                    )
                    continue
                trial = {loc: list(staged[loc]) for loc in locs}
                old_fragments: List[Tuple[int, Any]] = []
                for loc in locs:
                    kept = [it for it in trial[loc] if it[0] != key]
                    if len(kept) != len(trial[loc]):
                        old_fragments.extend(
                            (t, frag)
                            for (k2, t, frag) in trial[loc]
                            if k2 == key
                        )
                        trial[loc] = kept
                was_present = bool(old_fragments)
                if not was_present and self.size + new_keys >= self.capacity:
                    out[key] = CapacityExceeded(
                        f"dictionary at capacity N={self.capacity}"
                    )
                    continue
                fragments = _split_value(value, self.k)
                loads = {loc: len(trial[loc]) for loc in locs}
                overflow = False
                for t, frag in enumerate(fragments):
                    target = min(locs, key=lambda loc: (loads[loc], loc))
                    trial[target].append((key, t, frag))
                    loads[target] += 1
                    if loads[target] > self.buckets.capacity_items:
                        overflow = True
                        break
                if overflow:
                    out[key] = CapacityExceeded(
                        f"bucket overflow placing key {key}; the "
                        f"load-balancing guarantee needs a larger bucket "
                        f"array (stripe_size) or larger blocks"
                    )
                    continue
                for loc in locs:
                    if trial[loc] != staged[loc]:
                        staged[loc] = trial[loc]
                        dirty[loc] = trial[loc]
                    if len(staged[loc]) > self._max_load_seen:
                        self._max_load_seen = len(staged[loc])
                if was_present:
                    old_fragments.sort()
                    out[key] = (
                        True,
                        _join_fragments([f for _, f in old_fragments]),
                    )
                else:
                    new_keys += 1
                    out[key] = (False, None)
            if dirty:
                try:
                    self.buckets.write_buckets(dirty)
                except DiskFailure as exc:
                    # write_blocks is atomic — nothing was mutated.  Every
                    # key that thought it succeeded degrades, per key.
                    for key, res in list(out.items()):
                        if not isinstance(res, Exception):
                            out[key] = DegradedModeError(
                                f"upsert of key {key}: batch write failed "
                                f"({exc})",
                                key=key,
                                op="upsert",
                                failures={key: exc},
                            )
                    new_keys = 0
            self.size += new_keys
            if m.span is not None:
                m.annotate(
                    size=self.size,
                    max_load=self._max_load_seen,
                    buckets_written=len(dirty),
                )
        return out, m.cost

    def batch_delete(self, keys):
        """Delete many keys with one batched read and one batched write.

        Per-key outcomes are ``removed`` booleans; keys with unreadable
        candidate buckets refuse upfront with :class:`DegradedModeError`
        (a delete that cannot see every candidate might leave the key
        alive in a failed bucket).
        """
        keys = list(dict.fromkeys(keys))
        for key in keys:
            self._check_key(key)
        with span(
            self.machine,
            "basic_dict.batch_delete",
            op="batch_delete",
            structure="basic_dict",
            blocks_per_bucket=self.buckets.blocks_per_bucket,
            batch_size=len(keys),
        ) as m:
            all_locs = {key: self._neighborhoods.striped(key) for key in keys}
            wanted = list(
                dict.fromkeys(loc for locs in all_locs.values() for loc in locs)
            )
            if self.machine.faults is None:
                contents = self.buckets.read_buckets(wanted)
                failures: Dict[Tuple[int, int], Any] = {}
            else:
                contents, failures = self.buckets.read_buckets_degraded(wanted)
                if failures and m.span is not None:
                    m.annotate(degraded=True, failed_buckets=len(failures))
            self._annotate_packing(m, all_locs, self.buckets)

            out: Dict[int, Any] = {}
            staged = dict(contents)
            dirty: Dict[Tuple[int, int], List[Any]] = {}
            removed_keys = 0
            for key in keys:
                locs = all_locs[key]
                lost = {l: failures[l] for l in locs if l in failures}
                if lost:
                    out[key] = DegradedModeError(
                        f"delete of key {key}: {len(lost)} of {self.degree} "
                        f"candidate buckets unreadable",
                        key=key,
                        op="delete",
                        failures=lost,
                    )
                    continue
                removed = False
                for loc in locs:
                    kept = [it for it in staged[loc] if it[0] != key]
                    if len(kept) != len(staged[loc]):
                        staged[loc] = kept
                        dirty[loc] = kept
                        removed = True
                out[key] = removed
                if removed:
                    removed_keys += 1
            if dirty:
                try:
                    self.buckets.write_buckets(dirty)
                except DiskFailure as exc:
                    for key, res in list(out.items()):
                        if res is True:
                            out[key] = DegradedModeError(
                                f"delete of key {key}: batch write failed "
                                f"({exc})",
                                key=key,
                                op="delete",
                                failures={key: exc},
                            )
                    removed_keys = 0
            self.size -= removed_keys
        return out, m.cost

    def insert(self, key: int, value: Any = None) -> OpCost:
        found, _, cost = self.upsert(key, value)
        return cost

    def upsert(self, key: int, value: Any = None) -> Tuple[bool, Any, OpCost]:
        """Insert or replace; returns ``(was_present, old_value, cost)``."""
        self._check_key(key)
        with span(
            self.machine,
            "basic_dict.upsert",
            op="upsert",
            structure="basic_dict",
            blocks_per_bucket=self.buckets.blocks_per_bucket,
        ) as m:
            locs = self._neighborhoods.striped(key)
            if self.machine.faults is None:
                contents = self.buckets.read_buckets(locs)
            else:
                contents, failures = self.buckets.read_buckets_degraded(locs)
                if failures:
                    # Placing into a surviving choice while the key might be
                    # hiding in a failed bucket could create a duplicate —
                    # a future silent wrong answer.  Mutations need all d
                    # candidate loads; fail before touching anything.
                    if m.span is not None:
                        m.annotate(degraded=True, failed_buckets=len(failures))
                    raise DegradedModeError(
                        f"upsert of key {key}: {len(failures)} of "
                        f"{self.degree} candidate buckets unreadable; "
                        f"refusing a placement that could duplicate the key",
                        key=key,
                        op="upsert",
                        failures=failures,
                    )

            old_fragments: List[Tuple[int, Any]] = []
            dirty: Dict[Tuple[int, int], List[Any]] = {}
            for loc in locs:
                items = contents[loc]
                kept = [it for it in items if it[0] != key]
                if len(kept) != len(items):
                    old_fragments.extend(
                        (t, frag) for (k2, t, frag) in items if k2 == key
                    )
                    contents[loc] = kept
                    dirty[loc] = kept
            was_present = bool(old_fragments)

            if not was_present and self.size >= self.capacity:
                raise CapacityExceeded(
                    f"dictionary at capacity N={self.capacity}"
                )

            # Greedy d-choice placement using the loads the probe fetched.
            fragments = _split_value(value, self.k)
            loads = {loc: len(contents[loc]) for loc in locs}
            for t, frag in enumerate(fragments):
                target = min(locs, key=lambda loc: (loads[loc], loc))
                contents[target] = contents[target] + [(key, t, frag)]
                loads[target] += 1
                dirty[target] = contents[target]
                if loads[target] > self._max_load_seen:
                    self._max_load_seen = loads[target]

            for loc, items in dirty.items():
                if len(items) > self.buckets.capacity_items:
                    raise CapacityExceeded(
                        f"bucket {loc} overflows its {self.buckets.capacity_items}"
                        f"-item capacity; the load-balancing guarantee needs a "
                        f"larger bucket array (stripe_size) or larger blocks"
                    )
            self.buckets.write_buckets(dirty)
            if m.span is not None:
                # Telemetry for the Lemma 3 bound monitor: post-operation
                # occupancy and the worst bucket load ever reached.
                m.annotate(
                    size=self.size + (0 if was_present else 1),
                    max_load=self._max_load_seen,
                    num_buckets=self.num_buckets,
                    degree=self.degree,
                    k=self.k,
                )
        if not was_present:
            self.size += 1
            old_value = None
        else:
            old_fragments.sort()
            old_value = _join_fragments([f for _, f in old_fragments])
        return was_present, old_value, m.cost

    def delete(self, key: int) -> OpCost:
        self._check_key(key)
        with span(
            self.machine,
            "basic_dict.delete",
            op="delete",
            structure="basic_dict",
            blocks_per_bucket=self.buckets.blocks_per_bucket,
        ) as m:
            locs = self._neighborhoods.striped(key)
            if self.machine.faults is None:
                contents = self.buckets.read_buckets(locs)
            else:
                contents, failures = self.buckets.read_buckets_degraded(locs)
                if failures:
                    # A delete that cannot see every candidate bucket might
                    # leave the key alive in a failed one; refuse up front
                    # (no partial mutation has happened yet).
                    if m.span is not None:
                        m.annotate(degraded=True, failed_buckets=len(failures))
                    raise DegradedModeError(
                        f"delete of key {key}: {len(failures)} of "
                        f"{self.degree} candidate buckets unreadable",
                        key=key,
                        op="delete",
                        failures=failures,
                    )
            dirty = {}
            removed = False
            for loc in locs:
                items = contents[loc]
                kept = [it for it in items if it[0] != key]
                if len(kept) != len(items):
                    dirty[loc] = kept
                    removed = True
            if dirty:
                self.buckets.write_buckets(dirty)
        if removed:
            self.size -= 1
        return m.cost

    # -- bulk construction -------------------------------------------------------

    def bulk_build(self, items: Dict[int, Any]) -> OpCost:
        """Load a key -> value map into an EMPTY dictionary with batched
        writes.

        Placement is the identical greedy rule run in host memory (the
        load balancer is pure combinatorics; the paper's construction
        sections likewise compute assignments before touching disk), then
        every touched bucket is written in one batch: the cost is
        ``~buckets/D`` parallel I/Os instead of ``2n`` — the bulk analogue
        of Theorem 6's "construction proportional to sorting" theme.
        """
        if self.size:
            raise ValueError("bulk_build requires an empty dictionary")
        if len(items) > self.capacity:
            raise CapacityExceeded(
                f"{len(items)} items exceed capacity N={self.capacity}"
            )
        contents: Dict[Tuple[int, int], List[Any]] = {}
        with span(
            self.machine,
            "basic_dict.bulk_build",
            op="bulk_build",
            structure="basic_dict",
            items=len(items),
        ) as m:
            for key in sorted(items):
                self._check_key(key)
                locs = self._neighborhoods.striped(key)
                fragments = _split_value(items[key], self.k)
                loads = {
                    loc: len(contents.get(loc, ())) for loc in locs
                }
                for t, frag in enumerate(fragments):
                    target = min(locs, key=lambda loc: (loads[loc], loc))
                    contents.setdefault(target, []).append((key, t, frag))
                    loads[target] += 1
                    if loads[target] > self._max_load_seen:
                        self._max_load_seen = loads[target]
            for loc, bucket in contents.items():
                if len(bucket) > self.buckets.capacity_items:
                    raise CapacityExceeded(
                        f"bucket {loc} would hold {len(bucket)} items; "
                        f"capacity is {self.buckets.capacity_items}"
                    )
            self.buckets.write_buckets(contents)
        self.size = len(items)
        return m.cost

    # -- audits --------------------------------------------------------------------

    def stored_keys(self) -> Iterator[int]:
        """All keys currently stored (audit scan; no I/O charged — rebuild
        schedulers charge real I/O through lookup/insert per migrated key)."""
        seen = set()
        for loc in self.buckets.loads():
            for (k2, _t, _frag) in self.buckets.peek(loc):
                if k2 not in seen:
                    seen.add(k2)
                    yield k2

    def recovery_extents(self):
        return self.buckets.extents()

    def current_max_load(self) -> int:
        loads = self.buckets.loads()
        return max(loads.values()) if loads else 0

    def load_histogram(self) -> Dict[int, int]:
        """Map load value -> number of buckets with that load (the
        balanced-allocation telemetry lens; audit scan, no I/O charged).
        Load 0 counts the buckets currently empty."""
        counts: Dict[int, int] = {}
        loads = self.buckets.loads()
        for load in loads.values():
            counts[load] = counts.get(load, 0) + 1
        counts[0] = self.num_buckets - len(loads)
        return {load: counts[load] for load in sorted(counts)}

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BasicDictionary(n={self.size}/{self.capacity}, d={self.degree}, "
            f"v={self.num_buckets}, k={self.k})"
        )
