"""Global rebuilding: unbounded size and deletions (Section 4 preamble).

The dictionary problem is a *decomposable search problem*, so the standard
worst-case global rebuilding technique of Overmars and van Leeuwen [12]
applies.  The paper's observations, all realised here:

* two structures are active at any time — the draining old one and the
  filling new one — and they are **queried in parallel** (they live on their
  own machines/disk groups, so the per-operation cost combines with ``max``;
  this is the constant-factor increase in the number of disks);
* deleted elements can be removed/marked without influencing search time of
  other elements (our structures support in-place removal);
* a constant number of items is migrated per update, so no operation ever
  pays more than a constant factor over the base structure — worst-case, not
  amortized, bounds.

The wrapper is generic over any capacity-bounded :class:`Dictionary` factory
(Basic or Dynamic).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable, Iterator, List, Optional

from repro.core.interface import CapacityExceeded, Dictionary, LookupResult
from repro.pdm.iostats import OpCost

#: builds a fresh structure of the requested capacity (generation counts
#: seed the structure differently so graphs stay independent across rebuilds).
DictionaryFactory = Callable[[int, int], Dictionary]


@dataclass
class RebuildStats:
    rebuilds_started: int = 0
    rebuilds_finished: int = 0
    items_migrated: int = 0


class RebuildingDictionary(Dictionary):
    """Fully dynamic dictionary without a size bound, via global rebuilding.

    A rebuild into a structure of capacity ``growth * live`` starts when the
    active structure fills; each subsequent update migrates ``move_per_op``
    items, finishing well before the new structure fills in turn (for that,
    ``move_per_op >= 2`` suffices with ``growth = 2``).
    """

    def __init__(
        self,
        factory: DictionaryFactory,
        *,
        initial_capacity: int = 64,
        growth: float = 2.0,
        move_per_op: int = 4,
    ):
        if initial_capacity <= 0:
            raise ValueError(
                f"initial capacity must be positive, got {initial_capacity}"
            )
        if growth <= 1:
            raise ValueError(f"growth must exceed 1, got {growth}")
        if move_per_op < 2:
            raise ValueError(
                f"move_per_op must be at least 2 to outrun inserts, got "
                f"{move_per_op}"
            )
        self.factory = factory
        self.growth = growth
        self.move_per_op = move_per_op
        self.generation = 0
        self.active: Dictionary = factory(initial_capacity, self.generation)
        self.universe_size = self.active.universe_size
        self.building: Optional[Dictionary] = None
        self._migration: Optional[Iterator[int]] = None
        self.stats = RebuildStats()

    # -- internals -----------------------------------------------------------

    @property
    def _capacity(self) -> int:
        return self.active.capacity  # type: ignore[attr-defined]

    def _live_size(self) -> int:
        n = len(self.active)  # type: ignore[arg-type]
        if self.building is not None:
            n += len(self.building)  # type: ignore[arg-type]
        return n

    def _start_rebuild(self) -> None:
        self.generation += 1
        new_capacity = max(
            self.active.capacity * 2,  # type: ignore[attr-defined]
            math.ceil(self.growth * max(self._live_size(), 1)),
        )
        self.building = self.factory(new_capacity, self.generation)
        self._migration = self.active.stored_keys()  # type: ignore[attr-defined]
        self.stats.rebuilds_started += 1

    def _migrate_some(self) -> OpCost:
        """Move up to ``move_per_op`` items old -> new, charging real I/O
        (a lookup on the old structure plus an insert into the new)."""
        cost = OpCost.zero()
        if self.building is None or self._migration is None:
            return cost
        moved = 0
        while moved < self.move_per_op:
            key = next(self._migration, None)
            if key is None:
                break
            result = self.active.lookup(key)
            if result.found:
                ins = self.building.insert(key, result.value)
                dele = self.active.delete(key)
                cost = cost + result.cost + OpCost.parallel(ins, dele)
                self.stats.items_migrated += 1
                moved += 1
        if moved < self.move_per_op:
            # Old structure drained: promote.
            self.active = self.building
            self.building = None
            self._migration = None
            self.stats.rebuilds_finished += 1
        return cost

    # -- operations ---------------------------------------------------------------

    def lookup(self, key: int) -> LookupResult:
        # Both structures live on their own machines: parallel probe.
        primary = self.active.lookup(key)
        if self.building is None:
            return primary
        secondary = self.building.lookup(key)
        cost = OpCost.parallel(primary.cost, secondary.cost)
        hit = secondary if secondary.found else primary
        return LookupResult(hit.found, hit.value, cost)

    def insert(self, key: int, value: Any = None) -> OpCost:
        cost = OpCost.zero()
        if self.building is None:
            at_capacity = (
                len(self.active) >= self.active.capacity  # type: ignore[attr-defined]
            )
            if not at_capacity:
                try:
                    return cost + self.active.insert(key, value)
                except CapacityExceeded:
                    # Nominal capacity is only an upper bound: tight stripe
                    # or bucket geometry can run out of free slots first
                    # (e.g. an update needs room for a fresh chain before
                    # the old one is cleared).  Unbounded means grow now.
                    pass
            self._start_rebuild()
        # New keys go to the building structure; an update of a key that
        # still sits in the old one must not leave a stale copy there.
        old = self.active.lookup(key)
        cost = cost + old.cost
        if old.found:
            cost = cost + self.active.delete(key)
        cost = cost + self.building.insert(key, value)
        cost = cost + self._migrate_some()
        return cost

    def delete(self, key: int) -> OpCost:
        cost = self.active.delete(key)
        if self.building is not None:
            cost = OpCost.parallel(cost, self.building.delete(key))
            cost = cost + self._migrate_some()
        return cost

    # -- audits -----------------------------------------------------------------------

    def stored_keys(self) -> Iterator[int]:
        seen = set()
        for source in (self.building, self.active):
            if source is None:
                continue
            for key in source.stored_keys():  # type: ignore[attr-defined]
                if key not in seen:
                    seen.add(key)
                    yield key

    def recovery_extents(self):
        ext = list(self.active.recovery_extents())
        if self.building is not None:
            ext.extend(self.building.recovery_extents())
        return ext

    def reconstruct_block(self, addr):
        out = self.active.reconstruct_block(addr)
        if out is None and self.building is not None:
            out = self.building.reconstruct_block(addr)
        return out

    def reconstruct_round_bound(self):
        bound = self.active.reconstruct_round_bound()
        if self.building is not None:
            bound = max(bound, self.building.reconstruct_round_bound())
        return bound

    def __len__(self) -> int:
        return self._live_size()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "rebuilding" if self.building is not None else "steady"
        return (
            f"RebuildingDictionary(n={self._live_size()}, gen="
            f"{self.generation}, {state})"
        )
