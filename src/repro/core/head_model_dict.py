"""Dictionaries in the parallel disk *head* model (Section 5, closing).

"Like all mentioned explicit expander constructions, our construction does
not yield a striped expander.  If we implement the described dictionaries
in the parallel disk head model, we do not need the striped property."

:class:`HeadModelDictionary` is the §4.1 dictionary over an arbitrary
(non-striped) expander on a :class:`~repro.pdm.machine.ParallelDiskHeadMachine`:
buckets are indexed by flat right-vertex ids and placed round-robin over
the disk; with ``D >= d`` heads, fetching the ``d`` buckets of ``Γ(x)`` is
one I/O *regardless of placement* — no striping, no factor-``d`` space
blow-up.  (On the ordinary PDM the same layout can collide all ``d``
buckets onto one disk; the class accepts any machine so the benchmark can
show that contrast.)
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.core.interface import CapacityExceeded, Dictionary, LookupResult
from repro.expanders.base import Expander
from repro.expanders.random_graph import SeededFlatExpander
from repro.pdm.iostats import OpCost, measure
from repro.pdm.spans import span
from repro.pdm.machine import AbstractDiskMachine


class HeadModelDictionary(Dictionary):
    """§4.1 over a flat expander: bucket ``y`` -> block ``(y mod D, ...)``."""

    def __init__(
        self,
        machine: AbstractDiskMachine,
        *,
        universe_size: int,
        capacity: int,
        graph: Optional[Expander] = None,
        degree: Optional[int] = None,
        num_buckets: Optional[int] = None,
        bucket_capacity: Optional[int] = None,
        load_slack: float = 2.0,
        seed: int = 0,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.machine = machine
        self.universe_size = universe_size
        self.capacity = capacity
        bucket_cap = (
            machine.block_items if bucket_capacity is None else bucket_capacity
        )
        if graph is None:
            if degree is None:
                degree = max(
                    4, 2 * math.ceil(math.log2(max(universe_size, 2)))
                )
            if num_buckets is None:
                num_buckets = max(
                    degree, math.ceil(load_slack * capacity / bucket_cap)
                )
            graph = SeededFlatExpander(
                left_size=universe_size,
                degree=degree,
                right_size=num_buckets,
                seed=seed,
            )
        self.graph = graph
        self.bucket_capacity = bucket_cap
        D = machine.num_disks
        per_disk = -(-graph.right_size // D)
        self._base = [machine.allocate(t, per_disk) for t in range(D)]
        self.size = 0

    # -- addressing: flat bucket id -> block -----------------------------------

    def _addr(self, y: int) -> Tuple[int, int]:
        D = self.machine.num_disks
        return (y % D, self._base[y % D] + y // D)

    def _read(self, ys) -> Dict[int, List[Any]]:
        blocks = self.machine.read_blocks([self._addr(y) for y in ys])
        out = {}
        for y in ys:
            payload = blocks[self._addr(y)].payload
            out[y] = [] if payload is None else list(payload)
        return out

    def _write(self, contents: Dict[int, List[Any]]) -> None:
        writes = []
        for y, items in contents.items():
            if len(items) > self.bucket_capacity:
                raise CapacityExceeded(
                    f"bucket {y} exceeds its {self.bucket_capacity}-item "
                    f"capacity; enlarge num_buckets"
                )
            writes.append(
                (self._addr(y), items, len(items) * self.machine.item_bits)
            )
        self.machine.write_blocks(writes)

    # -- operations ---------------------------------------------------------------

    def lookup(self, key: int) -> LookupResult:
        self._check_key(key)
        with span(
            self.machine,
            "head_model_dict.lookup",
            op="lookup",
            structure="head_model_dict",
        ) as m:
            ys = list(dict.fromkeys(self.graph.neighbors(key)))
            contents = self._read(ys)
        for y in ys:
            for (k2, v) in contents[y]:
                if k2 == key:
                    return LookupResult(True, v, m.cost)
        return LookupResult(False, None, m.cost)

    def insert(self, key: int, value: Any = None) -> OpCost:
        self._check_key(key)
        with span(
            self.machine,
            "head_model_dict.insert",
            op="insert",
            structure="head_model_dict",
        ) as m:
            ys = list(dict.fromkeys(self.graph.neighbors(key)))
            contents = self._read(ys)
            dirty = {}
            was_present = False
            for y in ys:
                kept = [(k2, v) for (k2, v) in contents[y] if k2 != key]
                if len(kept) != len(contents[y]):
                    contents[y] = kept
                    dirty[y] = kept
                    was_present = True
            if not was_present and self.size >= self.capacity:
                raise CapacityExceeded(
                    f"dictionary at capacity N={self.capacity}"
                )
            target = min(ys, key=lambda y: (len(contents[y]), y))
            contents[target] = contents[target] + [(key, value)]
            dirty[target] = contents[target]
            self._write(dirty)
        if not was_present:
            self.size += 1
        return m.cost

    def delete(self, key: int) -> OpCost:
        self._check_key(key)
        with span(
            self.machine,
            "head_model_dict.delete",
            op="delete",
            structure="head_model_dict",
        ) as m:
            ys = list(dict.fromkeys(self.graph.neighbors(key)))
            contents = self._read(ys)
            dirty = {}
            removed = False
            for y in ys:
                kept = [(k2, v) for (k2, v) in contents[y] if k2 != key]
                if len(kept) != len(contents[y]):
                    dirty[y] = kept
                    removed = True
            if dirty:
                self._write(dirty)
        if removed:
            self.size -= 1
        return m.cost

    # -- audits -------------------------------------------------------------------

    def stored_keys(self) -> Iterator[int]:
        seen = set()
        for y in range(self.graph.right_size):
            payload = self.machine.block_at(self._addr(y)).payload  # detlint: ignore[PDM102] -- audit iterator, uncharged by design
            if payload:
                for (k2, _v) in payload:
                    if k2 not in seen:
                        seen.add(k2)
                        yield k2

    def current_max_load(self) -> int:
        worst = 0
        for y in range(self.graph.right_size):
            payload = self.machine.block_at(self._addr(y)).payload  # detlint: ignore[PDM102] -- audit read, uncharged by design
            if payload:
                worst = max(worst, len(payload))
        return worst

    def __len__(self) -> int:
        return self.size
