"""Section 6 exploration: full bandwidth with ONE-I/O worst-case lookups.

The paper's open problem: "It is plausible that full bandwidth can be
achieved with lookup in 1 I/O, while still supporting efficient updates.
One idea that we have considered is to apply the load balancing scheme with
``k = Omega(d)``, recursively, for some constant number of levels before
relying on a brute-force approach.  However, this makes the time for
updates non-constant."

:class:`RecursiveLoadBalancedDictionary` implements exactly that idea:

* a *constant* number of levels, each a bucket array indexed by its own
  striped expander and living on its **own group of d disks**;
* a record of ``sigma`` bits is split into ``k = ceil(2d/3)`` tagged
  fragments placed by the greedy Lemma 3 rule into the level's buckets;
  when a level cannot host all ``k`` fragments the whole record recurses to
  the next (geometrically smaller) level;
* whatever falls through every level lands in a **brute-force area**: one
  superblock (one block per disk of a final group) holding whole records;
* a lookup reads, in a SINGLE parallel I/O, the key's neighborhoods on all
  levels *plus* the brute-force superblock — the disk groups are disjoint,
  so the batch touches at most one block per disk.

Measured consequences (see ``benchmarks/bench_section6_recursive.py``):
worst-case lookups are genuinely 1 parallel I/O at full record bandwidth;
the price is (a) a factor ``levels + 1`` more disks and (b) updates whose
I/O grows with the level count — "non-constant", as the paper predicted.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional, Tuple

from repro.bits import BitVector
from repro.core.interface import CapacityExceeded, Dictionary, LookupResult
from repro.core.static_dict import fields_needed
from repro.expanders.random_graph import SeededRandomExpander
from repro.pdm.iostats import OpCost, measure
from repro.pdm.spans import span
from repro.pdm.machine import AbstractDiskMachine
from repro.pdm.striping import StripedItemBuckets


@dataclass
class RecursiveStats:
    inserts: int = 0
    insert_ios: int = 0
    level_histogram: Dict[int, int] = field(default_factory=dict)
    brute_inserts: int = 0

    @property
    def avg_insert_ios(self) -> float:
        return self.insert_ios / self.inserts if self.inserts else 0.0

    @property
    def spill_fraction(self) -> float:
        deep = sum(c for lvl, c in self.level_histogram.items() if lvl > 0)
        deep += self.brute_inserts
        return deep / self.inserts if self.inserts else 0.0


class RecursiveLoadBalancedDictionary(Dictionary):
    """The Section 6 candidate structure."""

    def __init__(
        self,
        machine: AbstractDiskMachine,
        *,
        universe_size: int,
        capacity: int,
        sigma: int,
        degree: Optional[int] = None,
        levels: int = 2,
        ratio: float = 0.15,
        stripe_slack: float = 2.0,
        bucket_slots: Optional[int] = None,
        disk_offset: int = 0,
        seed: int = 0,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if sigma <= 0:
            raise ValueError(f"sigma must be positive, got {sigma}")
        if levels < 1:
            raise ValueError(f"need at least one level, got {levels}")
        if not 0 < ratio < 1:
            raise ValueError(f"ratio must lie in (0, 1), got {ratio}")
        self.machine = machine
        self.universe_size = universe_size
        self.capacity = capacity
        self.sigma = sigma
        if degree is None:
            degree = (machine.num_disks - disk_offset) // (levels + 1)
        needed = disk_offset + (levels + 1) * degree
        if degree < 4 or needed > machine.num_disks:
            raise ValueError(
                f"{levels} levels + brute area at degree {degree} need "
                f"{needed} disks; machine has {machine.num_disks}"
            )
        self.degree = degree
        self.k = fields_needed(degree)  # k = Omega(d): ceil(2d/3)
        self.frag_bits = math.ceil(sigma / self.k)
        self.num_levels = levels

        # Fragment item: key + fragment index + fragment payload.
        key_bits = max(1, math.ceil(math.log2(max(universe_size, 2))))
        frag_item_bits = key_bits + math.ceil(math.log2(max(degree, 2))) + (
            self.frag_bits
        )
        slots = (
            max(2, machine.block_bits // frag_item_bits)
            if bucket_slots is None
            else bucket_slots
        )

        self.levels_store: List[StripedItemBuckets] = []
        self.level_graphs: List[SeededRandomExpander] = []
        stripe = max(4, math.ceil(stripe_slack * capacity * self.k
                                  / (slots * degree)))
        for level in range(levels):
            graph = SeededRandomExpander(
                left_size=universe_size,
                degree=degree,
                stripe_size=stripe,
                seed=seed + 31 * (level + 1),
            )
            store = StripedItemBuckets(
                machine,
                stripes=degree,
                stripe_size=stripe,
                capacity_items=slots,
                item_bits=frag_item_bits,
                disk_offset=disk_offset + level * degree,
            )
            self.level_graphs.append(graph)
            self.levels_store.append(store)
            stripe = max(4, math.ceil(stripe * ratio))

        # Brute-force area: one block on each disk of the final group.
        record_bits = key_bits + sigma
        self.brute_offset = disk_offset + levels * degree
        self._brute_addrs = [
            (self.brute_offset + t, machine.allocate(self.brute_offset + t, 1))
            for t in range(degree)
        ]
        self._brute_per_block = max(1, machine.block_bits // record_bits)
        self._brute_record_bits = record_bits
        self.brute_capacity = degree * self._brute_per_block

        self.size = 0
        self.stats = RecursiveStats()

    # -- plumbing -------------------------------------------------------------

    def _read_everything(self, key: int):
        """The single-parallel-I/O read: all levels' neighborhoods plus the
        brute-force superblock (disjoint disk groups, one block each)."""
        addrs = []
        level_locs = []
        for level in range(self.num_levels):
            locs = self.level_graphs[level].striped_neighbors(key)
            level_locs.append(locs)
            store = self.levels_store[level]
            for loc in locs:
                addrs.extend(store._addrs(loc))
        addrs.extend(self._brute_addrs)
        blocks = self.machine.read_blocks(addrs)

        per_level = []
        for level, locs in enumerate(level_locs):
            store = self.levels_store[level]
            contents = {}
            for loc in locs:
                items: List[Any] = []
                for addr in store._addrs(loc):
                    payload = blocks[addr].payload
                    if payload:
                        items.extend(payload)
                contents[loc] = items
            per_level.append((locs, contents))
        brute: List[Tuple[int, int]] = []
        for addr in self._brute_addrs:
            payload = blocks[addr].payload
            if payload:
                brute.extend(payload)
        return per_level, brute

    def _fragments(self, value: int) -> List[BitVector]:
        record = BitVector.from_int(value, self.sigma)
        return [
            record[t * self.frag_bits : (t + 1) * self.frag_bits]
            for t in range(self.k)
        ]

    @staticmethod
    def _reassemble(frags: List[Tuple[int, BitVector]], sigma: int) -> int:
        frags.sort()
        record = BitVector()
        for _, frag in frags:
            record = record + frag
        return record[:sigma].to_int()

    def _write_brute(self, records: List[Tuple[int, int]]) -> None:
        if len(records) > self.brute_capacity:
            raise CapacityExceeded(
                f"brute-force area overflow ({len(records)} records, "
                f"capacity {self.brute_capacity}); add levels or slack"
            )
        writes = []
        for t, addr in enumerate(self._brute_addrs):
            part = records[
                t * self._brute_per_block : (t + 1) * self._brute_per_block
            ]
            writes.append(
                (addr, part, len(part) * self._brute_record_bits)
            )
        self.machine.write_blocks(writes)

    # -- operations ---------------------------------------------------------------

    def lookup(self, key: int) -> LookupResult:
        self._check_key(key)
        with span(
            self.machine,
            "recursive_dict.lookup",
            op="lookup",
            structure="recursive_dict",
        ) as m:
            per_level, brute = self._read_everything(key)
        # Brute-force area first (whole records).
        for (k2, value) in brute:
            if k2 == key:
                return LookupResult(True, value, m.cost)
        # Fragment gather: a key's fragments live at exactly one level.
        for locs, contents in per_level:
            frags = [
                (t, frag)
                for loc in locs
                for (k2, t, frag) in contents[loc]
                if k2 == key
            ]
            if frags:
                return LookupResult(
                    True, self._reassemble(frags, self.sigma), m.cost
                )
        return LookupResult(False, None, m.cost)

    def insert(self, key: int, value: int = None) -> OpCost:
        self._check_key(key)
        if value is None or not 0 <= value < (1 << self.sigma):
            raise ValueError(
                f"value must be an integer in [0, 2^{self.sigma}), got "
                f"{value!r}"
            )
        with span(
            self.machine,
            "recursive_dict.insert",
            op="insert",
            structure="recursive_dict",
        ) as m:
            # One parallel read fetches current state everywhere (this is
            # also what makes the update correct under upsert semantics).
            per_level, brute = self._read_everything(key)
            was_present = self._clear_inline(key, per_level, brute)
            if not was_present and self.size >= self.capacity:
                raise CapacityExceeded(
                    f"dictionary at capacity N={self.capacity}"
                )

            placed_level = None
            frags = self._fragments(value)
            for level, (locs, contents) in enumerate(per_level):
                store = self.levels_store[level]
                # Greedy k-choice: repeatedly put the next fragment into
                # the least-loaded neighbor bucket with a free slot.
                loads = {loc: len(contents[loc]) for loc in locs}
                chosen: Dict[Tuple[int, int], List[Any]] = {}
                ok = True
                for t, frag in enumerate(frags):
                    candidates = [
                        loc for loc in locs
                        if loads[loc] < store.capacity_items
                    ]
                    if not candidates:
                        ok = False
                        break
                    target = min(candidates, key=lambda l: (loads[l], l))
                    contents[target] = contents[target] + [(key, t, frag)]
                    loads[target] += 1
                    chosen[target] = contents[target]
                if ok:
                    store.write_buckets(chosen)
                    placed_level = level
                    break
            if placed_level is None:
                brute.append((key, value))
                self._write_brute(brute)
                self.stats.brute_inserts += 1
            else:
                self.stats.level_histogram[placed_level] = (
                    self.stats.level_histogram.get(placed_level, 0) + 1
                )
        if not was_present:
            self.size += 1
        self.stats.inserts += 1
        self.stats.insert_ios += m.cost.total_ios
        return m.cost

    def _clear_inline(self, key, per_level, brute) -> bool:
        """Remove any existing copy of ``key`` (updates and deletes).
        Mutates the in-memory views and writes back touched storage."""
        removed = False
        for level, (locs, contents) in enumerate(per_level):
            dirty = {}
            for loc in locs:
                kept = [it for it in contents[loc] if it[0] != key]
                if len(kept) != len(contents[loc]):
                    contents[loc] = kept
                    dirty[loc] = kept
                    removed = True
            if dirty:
                self.levels_store[level].write_buckets(dirty)
        survivors = [(k2, v) for (k2, v) in brute if k2 != key]
        if len(survivors) != len(brute):
            brute[:] = survivors
            self._write_brute(survivors)
            removed = True
        return removed

    def delete(self, key: int) -> OpCost:
        self._check_key(key)
        with span(
            self.machine,
            "recursive_dict.delete",
            op="delete",
            structure="recursive_dict",
        ) as m:
            per_level, brute = self._read_everything(key)
            removed = self._clear_inline(key, per_level, brute)
        if removed:
            self.size -= 1
        return m.cost

    # -- audits --------------------------------------------------------------------

    def stored_keys(self) -> Iterator[int]:
        seen = set()
        for level, store in enumerate(self.levels_store):
            for loc in store.loads():
                for (k2, _t, _f) in store.peek(loc):
                    if k2 not in seen:
                        seen.add(k2)
                        yield k2
        for addr in self._brute_addrs:
            payload = self.machine.block_at(addr).payload  # detlint: ignore[PDM102] -- audit iterator, uncharged by design
            if payload:
                for (k2, _v) in payload:
                    if k2 not in seen:
                        seen.add(k2)
                        yield k2

    def recovery_extents(self):
        ext = []
        for store in self.levels_store:
            ext.extend(store.extents())
        return ext

    def __len__(self) -> int:
        return self.size

    @property
    def disks_used(self) -> int:
        return (self.num_levels + 1) * self.degree
