"""Pointer-indirected satellite storage (Section 1.1).

"Note that one can always use the dictionary to retrieve a pointer to
satellite information of size ``BD``, which can then be retrieved in an
extra I/O."

:class:`PointerStore` pairs any dictionary with a payload area of striped
superblocks: the dictionary maps ``key -> superblock id`` (a single item,
so it rides the dictionary's native bandwidth), and the payload — up to a
full ``B * D`` items — is fetched with one additional parallel I/O.  This
is how a structure with modest in-line bandwidth (e.g. the §4.1 dictionary)
serves arbitrarily fat records at ``lookup + 1`` I/Os.

Freed superblocks are recycled through a free list kept in internal memory
(charged), so deletions reclaim payload space.
"""

from __future__ import annotations

from typing import Any, Iterator, List, Optional, Sequence, Tuple

from repro.core.interface import CapacityExceeded, Dictionary, LookupResult
from repro.pdm.superblocks import SuperblockArray
from repro.pdm.iostats import OpCost, measure
from repro.pdm.machine import AbstractDiskMachine


class PointerStore(Dictionary):
    """A dictionary of fat records: index structure + payload superblocks."""

    def __init__(
        self,
        index: Dictionary,
        payload_machine: AbstractDiskMachine,
        *,
        capacity: int,
        disk_offset: int = 0,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.index = index
        self.universe_size = index.universe_size
        self.payload_machine = payload_machine
        self.payloads = SuperblockArray(
            payload_machine,
            num_superblocks=capacity,
            disk_offset=disk_offset,
        )
        self._free: List[int] = list(range(capacity - 1, -1, -1))
        payload_machine.memory.charge(capacity)  # the free list
        self.capacity = capacity

    @property
    def payload_capacity_items(self) -> int:
        """Items one payload superblock holds: the full ``B * D``."""
        return self.payloads.capacity_items

    # -- operations ---------------------------------------------------------------

    def insert(self, key: int, value: Sequence[Any] = ()) -> OpCost:
        """Store ``value`` (a sequence of up to ``B*D`` items) under ``key``.

        Cost: the index upsert plus one payload write; an update reuses the
        key's existing superblock (no data movement, stable pointer).
        """
        value = list(value)
        if len(value) > self.payload_capacity_items:
            raise ValueError(
                f"payload of {len(value)} items exceeds the superblock "
                f"capacity of {self.payload_capacity_items}"
            )
        existing = self.index.lookup(key)
        if existing.found:
            slot = existing.value
            with measure(self.payload_machine) as w:
                self.payloads.write({slot: value})
            return existing.cost + w.cost
        if not self._free:
            raise CapacityExceeded(
                f"payload area full ({self.capacity} superblocks)"
            )
        slot = self._free.pop()
        with measure(self.payload_machine) as w:
            self.payloads.write({slot: value})
        index_cost = self.index.insert(key, slot)
        # The index insert and the payload write hit disjoint machines.
        return existing.cost + OpCost.parallel(index_cost, w.cost)

    def lookup(self, key: int) -> LookupResult:
        """The paper's two-hop fetch: pointer in the index's native cost,
        payload in one extra parallel I/O."""
        pointer = self.index.lookup(key)
        if not pointer.found:
            return LookupResult(False, None, pointer.cost)
        with measure(self.payload_machine) as m:
            items = self.payloads.read([pointer.value])[pointer.value]
        return LookupResult(True, items, pointer.cost + m.cost)

    def lookup_pointer(self, key: int) -> LookupResult:
        """Just the pointer (the index's native bandwidth/cost)."""
        return self.index.lookup(key)

    def delete(self, key: int) -> OpCost:
        pointer = self.index.lookup(key)
        if not pointer.found:
            return pointer.cost
        slot = pointer.value
        with measure(self.payload_machine) as w:
            self.payloads.write({slot: []})
        self._free.append(slot)
        del_cost = self.index.delete(key)
        return pointer.cost + OpCost.parallel(del_cost, w.cost)

    # -- audits --------------------------------------------------------------------

    def stored_keys(self) -> Iterator[int]:
        return self.index.stored_keys()  # type: ignore[attr-defined]

    def __len__(self) -> int:
        return len(self.index)  # type: ignore[arg-type]
