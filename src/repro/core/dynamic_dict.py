"""Full bandwidth with ``1 + ɛ`` average I/Os (Section 4.3, Theorem 7).

The static retrieval structure of Theorem 6(a) dynamized first-fit style:

* ``l = log N / log(1/ratio)`` retrieval arrays ``A_1 ⊇ A_2 ⊇ ...`` of
  geometrically shrinking size (paper ratio ``6 eps``), each indexed by its
  **own** expander (same left set ``U``, same degree ``d``, independent edge
  sets — distinct seeds here);
* **insert**: probe ``A_1, A_2, ...`` until an array has ``ceil(2d/3)`` of
  the key's fields free ("unique to x at that moment"), write the record
  chain there (Lemma 5 guarantees at most a ``6 eps`` fraction of keys fall
  through each level, so the probe sequence is geometric and averages
  ``1 + ɛ`` reads plus one write); in parallel, the §4.1 membership
  dictionary records ``(level, head pointer)`` in 2 I/Os — **``2 + ɛ``
  average I/Os** total;
* **lookup**: membership probe and a *speculative* read of the key's ``A_1``
  fields go in the same parallel I/O (disjoint disk groups).  An absent key
  is answered in **1 I/O**; a key on level 1 — the ``1 - O(ratio)`` majority
  — also finishes in 1; deeper keys pay one extra read: **``1 + ɛ``
  average**, worst case ``O(log n)``;
* **delete**: membership removal plus clearing the chain (the paper reclaims
  space via global rebuilding — :mod:`repro.core.rebuilding` — but removing
  in place is already safe and keeps the level free-lists accurate).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.bits import BitVector, decode_chain, encode_chain, required_field_bits
from repro.core.basic_dict import BasicDictionary
from repro.core.interface import (
    CapacityExceeded,
    DegradedLookupError,
    DegradedModeError,
    Dictionary,
    LookupResult,
    annotate_round_packing,
)
from repro.core.static_dict import fields_needed
from repro.pdm.errors import DiskFailure
from repro.expanders.random_graph import SeededRandomExpander
from repro.kernels import resolve_kernel
from repro.pdm.iostats import OpCost
from repro.pdm.machine import AbstractDiskMachine
from repro.pdm.spans import span
from repro.pdm.striping import StripedFieldArray


@dataclass
class OperationStats:
    """Running averages the Theorem 7 bench reports."""

    lookups: int = 0
    lookup_ios: int = 0
    hits: int = 0
    hit_ios: int = 0
    misses: int = 0
    miss_ios: int = 0
    inserts: int = 0
    insert_ios: int = 0
    level_histogram: Dict[int, int] = field(default_factory=dict)

    @property
    def avg_lookup_ios(self) -> float:
        return self.lookup_ios / self.lookups if self.lookups else 0.0

    @property
    def avg_hit_ios(self) -> float:
        return self.hit_ios / self.hits if self.hits else 0.0

    @property
    def avg_miss_ios(self) -> float:
        return self.miss_ios / self.misses if self.misses else 0.0

    @property
    def avg_insert_ios(self) -> float:
        return self.insert_ios / self.inserts if self.inserts else 0.0


class DynamicDictionary(Dictionary):
    """Deterministic dynamic dictionary with full bandwidth (§4.3)."""

    def __init__(
        self,
        machine: AbstractDiskMachine,
        *,
        universe_size: int,
        capacity: int,
        sigma: int,
        degree: Optional[int] = None,
        ratio: float = 0.25,
        stripe_slack: float = 4.0,
        min_stripe: int = 8,
        disk_offset: int = 0,
        seed: int = 0,
        kernel: Any = None,
    ):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        if sigma <= 0:
            raise ValueError(
                f"sigma must be positive (use BasicDictionary for pure "
                f"membership), got {sigma}"
            )
        if not 0 < ratio < 1:
            raise ValueError(f"ratio must lie in (0, 1), got {ratio}")
        self.machine = machine
        self.universe_size = universe_size
        self.capacity = capacity
        self.sigma = sigma
        self.ratio = ratio
        if degree is None:
            degree = (machine.num_disks - disk_offset) // 2
        if degree < 4:
            raise ValueError(f"need degree >= 4, got {degree}")
        if disk_offset + 2 * degree > machine.num_disks:
            raise ValueError(
                f"need {2 * degree} disks from offset {disk_offset}; machine "
                f"has {machine.num_disks}"
            )
        self.degree = degree
        self.m_need = fields_needed(degree)
        self.field_bits = max(
            math.ceil(3 * sigma / (2 * degree)) + 4,
            required_field_bits(sigma, self.m_need, degree),
        )

        self._kernel = resolve_kernel(kernel)
        # Membership sub-dictionary: key -> (level, head pointer).
        self.membership = BasicDictionary(
            machine,
            universe_size=universe_size,
            capacity=capacity,
            degree=degree,
            disk_offset=disk_offset,
            seed=seed + 1,
            kernel=kernel,
        )

        # Geometrically shrinking retrieval arrays, one expander each.
        self.levels: List[StripedFieldArray] = []
        self.level_graphs: List[SeededRandomExpander] = []
        stripe = max(min_stripe, math.ceil(stripe_slack * capacity))
        level = 0
        while True:
            graph = SeededRandomExpander(
                left_size=universe_size,
                degree=degree,
                stripe_size=stripe,
                seed=seed + 101 * (level + 1),
            )
            array = StripedFieldArray(
                machine,
                stripes=degree,
                stripe_size=stripe,
                field_bits=self.field_bits,
                disk_offset=disk_offset + degree,
            )
            self.level_graphs.append(graph)
            self.levels.append(array)
            if stripe <= min_stripe:
                break
            stripe = max(min_stripe, math.ceil(stripe * ratio))
            level += 1
        self.num_levels = len(self.levels)
        self.size = 0
        self.stats = OperationStats()

    @classmethod
    def from_epsilon(
        cls,
        machine: AbstractDiskMachine,
        *,
        universe_size: int,
        capacity: int,
        sigma: int,
        epsilon: float,
        disk_offset: int = 0,
        seed: int = 0,
        **kwargs,
    ) -> "DynamicDictionary":
        """Instantiate with the paper's Theorem 7 parameterization.

        Theorem 7: "Let ɛ be an arbitrary positive value, and choose d, the
        degree of expander graphs, to be larger than ``6 (1 + 1/ɛ)``", with
        level sizes shrinking by ``6 eps`` where ``6 eps < 1/(1 + 1/ɛ)``.
        We take the degree floor (or more if the machine allows), and the
        level ratio at the midpoint of its legal range, then the structure
        delivers ``1 + ɛ`` / ``2 + ɛ`` averages by the geometric-series
        argument.
        """
        if epsilon <= 0:
            raise ValueError(f"epsilon must be positive, got {epsilon}")
        degree_floor = math.floor(6 * (1 + 1 / epsilon)) + 1
        available = (machine.num_disks - disk_offset) // 2
        if available < degree_floor:
            raise ValueError(
                f"Theorem 7 at epsilon={epsilon} needs degree > "
                f"{degree_floor - 1}, i.e. {2 * degree_floor} disks; "
                f"machine offers {2 * available}"
            )
        degree = max(degree_floor, available if available <= 4 * degree_floor
                     else degree_floor)
        # 6 eps' must satisfy 6 eps' < 1/(1 + 1/eps) = eps/(1+eps);
        # the ratio IS 6 eps' — take half the ceiling for margin.
        ratio = min(0.5, (epsilon / (1 + epsilon)) / 2)
        return cls(
            machine,
            universe_size=universe_size,
            capacity=capacity,
            sigma=sigma,
            degree=degree,
            ratio=ratio,
            disk_offset=disk_offset,
            seed=seed,
            **kwargs,
        )

    # -- helpers -----------------------------------------------------------------

    def _read_level(self, level: int, key: int):
        """Read the key's ``d`` fields on one level (one parallel I/O)."""
        locs = self.level_graphs[level].striped_neighbors(key)
        fields = self.levels[level].read_fields(locs)
        return locs, fields

    def _read_level_degraded(self, level: int, key: int):
        """Like :meth:`_read_level` but collects per-field faults.

        Returns ``(locs, fields, failures)`` where ``failures`` maps the
        unreadable ``(stripe, j)`` locations to their :class:`IOFault`;
        those locations are absent from ``fields``.
        """
        locs = self.level_graphs[level].striped_neighbors(key)
        fields, failures = self.levels[level].read_fields_degraded(locs)
        return locs, fields, failures

    def _free_stripes(self, locs, fields, failures=None) -> List[int]:
        # A field whose state is unknown (unreadable block) can never be
        # claimed free: writing into it could clobber another key's chain.
        return sorted(
            stripe
            for (stripe, j) in locs
            if (failures is None or (stripe, j) not in failures)
            and fields[(stripe, j)] is None
        )

    def _chain_value(self, level: int, key: int, fields, locs, head: int) -> int:
        by_stripe = {stripe: fields[(stripe, j)] for (stripe, j) in locs}
        record = decode_chain(
            by_stripe, head, self.field_bits, self.sigma, self.degree
        )
        return record.to_int()

    def _chain_value_degraded(
        self, level: int, key: int, fields, locs, head: int, failures
    ) -> int:
        """Decode a chain whose level read lost some fields.

        The retrieval arrays keep exactly one copy of every chain field, so
        a failure on any stripe the chain actually visits is unrecoverable:
        membership is certain (the §4.1 dictionary answered) but the value
        is not, and we raise rather than return a truncated record.
        Failures on the key's *other* neighbor fields are harmless.
        """
        if not failures:
            return self._chain_value(level, key, fields, locs, head)
        by_stripe = {
            (stripe): fields[(stripe, j)]
            for (stripe, j) in locs
            if (stripe, j) not in failures
        }
        try:
            record = decode_chain(
                by_stripe, head, self.field_bits, self.sigma, self.degree
            )
        except (KeyError, TypeError) as exc:
            raise DegradedLookupError(
                f"key {key}: chain on level {level} crosses "
                f"{len(failures)} unreadable field(s); the dynamic levels "
                f"keep no spare copies",
                key=key,
                failures=dict(failures),
                membership=True,
            ) from exc
        return record.to_int()

    def _clear_chain_best_effort(self, level: int, key: int, head: int):
        """Clear a chain under faults, leaking what cannot be reached.

        Returns ``(leaked, failures)``.  Fields on unreadable stripes — and
        every field *past* the first unreadable link, since the chain walk
        cannot continue — stay occupied.  That costs capacity (first-fit
        sees them as busy), never correctness: membership no longer points
        at them.  ``leaked`` counts only the known-lost links; the tail
        beyond a broken link is of unknown length.
        """
        from repro.bits.bitvector import BitReader
        from repro.bits.unary import decode_unary

        locs, fields, failures = self._read_level_degraded(level, key)
        idx = {i: j for (i, j) in locs}
        stripes: List[int] = []
        leaked = 0
        stripe = head
        while True:
            if stripe not in idx:
                leaked += 1  # walk escaped the key's neighborhood: stop
                break
            loc = (stripe, idx[stripe])
            if loc in failures or fields.get(loc) is None:
                leaked += 1  # broken link: the rest of the chain is orphaned
                break
            stripes.append(stripe)
            delta = decode_unary(BitReader(fields[loc]))
            if delta == 0:
                break
            stripe += delta
        if stripes:
            try:
                self.levels[level].write_fields(
                    {(s, idx[s]): None for s in stripes}
                )
            except DiskFailure:
                leaked += len(stripes)
        return leaked, failures

    def _chain_stripes(self, head: int, fields_by_stripe) -> List[int]:
        """Walk a chain to enumerate its stripes (for clearing)."""
        from repro.bits.bitvector import BitReader
        from repro.bits.unary import decode_unary

        stripes = []
        stripe = head
        while True:
            stripes.append(stripe)
            reader = BitReader(fields_by_stripe[stripe])
            delta = decode_unary(reader)
            if delta == 0:
                break
            stripe += delta
        return stripes

    # -- operations ---------------------------------------------------------------

    def lookup(self, key: int) -> LookupResult:
        self._check_key(key)
        with span(
            self.machine,
            "dynamic_dict.lookup",
            op="lookup",
            structure="dynamic_dict",
            num_levels=self.num_levels,
            membership_bpb=self.membership.buckets.blocks_per_bucket,
        ) as root:
            degraded = self.machine.faults is not None
            # Phase 1 (parallel): membership probe + speculative level-1 read.
            # Under faults the speculative read must not raise eagerly: a
            # lost level-0 field is irrelevant when the key is absent or
            # lives on a deeper level.
            with span(self.machine, "dynamic_dict.lookup.phase1", parallel=True):
                mem = self.membership.lookup(key)
                with span(
                    self.machine, "dynamic_dict.speculative_read", level=0
                ) as spec:
                    if degraded:
                        locs1, fields1, fails1 = self._read_level_degraded(
                            0, key
                        )
                        if fails1:
                            spec.annotate(
                                degraded=True, failed_fields=len(fails1)
                            )
                    else:
                        locs1, fields1 = self._read_level(0, key)
                        fails1 = {}
            cost = OpCost.parallel(mem.cost, spec.cost)
            if not mem.found:
                root.annotate(found=False)
                self.stats.lookups += 1
                self.stats.misses += 1
                self.stats.lookup_ios += cost.total_ios
                self.stats.miss_ios += cost.total_ios
                return LookupResult(False, None, cost)
            level, head = mem.value
            if level == 0:
                value = self._chain_value_degraded(
                    0, key, fields1, locs1, head, fails1
                )
            else:
                with span(
                    self.machine, "dynamic_dict.level_read", level=level
                ) as extra:
                    if degraded:
                        locs, fields, fails = self._read_level_degraded(
                            level, key
                        )
                        if fails:
                            extra.annotate(
                                degraded=True, failed_fields=len(fails)
                            )
                    else:
                        locs, fields = self._read_level(level, key)
                        fails = {}
                cost = cost + extra.cost
                value = self._chain_value_degraded(
                    level, key, fields, locs, head, fails
                )
            if degraded and (fails1 or (level != 0 and fails)):
                root.annotate(degraded=True)
            root.annotate(found=True, level=level)
            self.stats.lookups += 1
            self.stats.hits += 1
            self.stats.lookup_ios += cost.total_ios
            self.stats.hit_ios += cost.total_ios
            return LookupResult(True, value, cost)

    def insert(self, key: int, value: int = None) -> OpCost:
        self._check_key(key)
        if value is None or not 0 <= value < (1 << self.sigma):
            raise ValueError(
                f"value must be an integer in [0, 2^{self.sigma}), got {value!r}"
            )
        if self.size >= self.capacity and not self.membership.contains(key):
            raise CapacityExceeded(f"dictionary at capacity N={self.capacity}")

        with span(
            self.machine,
            "dynamic_dict.insert",
            op="insert",
            structure="dynamic_dict",
            num_levels=self.num_levels,
            membership_bpb=self.membership.buckets.blocks_per_bucket,
        ) as root:
            degraded = self.machine.faults is not None
            # Retrieval + membership run on disjoint disk groups in parallel.
            with span(self.machine, "dynamic_dict.insert.place", parallel=True):
                with span(self.machine, "dynamic_dict.first_fit") as ret:
                    placed = None
                    probe_failures = 0
                    for level in range(self.num_levels):
                        if degraded:
                            # Unreadable fields count as occupied (see
                            # _free_stripes); a level with faults can still
                            # accept the key if enough *verified-free*
                            # fields remain, so first-fit degrades to
                            # placing one level deeper instead of refusing.
                            locs, fields, fails = self._read_level_degraded(
                                level, key
                            )
                            probe_failures += len(fails)
                        else:
                            locs, fields = self._read_level(level, key)
                            fails = None
                        free = self._free_stripes(locs, fields, fails)
                        if len(free) >= self.m_need:
                            placed = (level, free[: self.m_need], locs)
                            break
                    if probe_failures:
                        ret.annotate(
                            degraded=True, failed_fields=probe_failures
                        )
                    if placed is None:
                        raise CapacityExceeded(
                            f"no level offers {self.m_need} free fields for key "
                            f"{key}; increase stripe_slack or capacity headroom"
                        )
                    level, stripes, locs = placed
                    ret.annotate(level=level)
                    record = BitVector.from_int(value, self.sigma)
                    encoded = encode_chain(record, stripes, self.field_bits)
                    stripe_index = {i: j for (i, j) in locs}
                    self.levels[level].write_fields(
                        {(s, stripe_index[s]): bits for s, bits in encoded.items()}
                    )
                head = stripes[0]

                # Membership phase (its own disk group, runs in parallel).
                was_present, old, mem_cost = self.membership.upsert(
                    key, (level, head)
                )
            cost = OpCost.parallel(ret.cost, mem_cost)

            if was_present:
                # Update of an existing key: clear the superseded chain.
                # Membership already points at the new chain, so a fault
                # here can only leak fields, never corrupt an answer —
                # clear what is reachable and count the rest.
                old_level, old_head = old
                with span(
                    self.machine, "dynamic_dict.clear_chain", level=old_level
                ) as clear:
                    if degraded:
                        leaked, _ = self._clear_chain_best_effort(
                            old_level, key, old_head
                        )
                        if leaked:
                            clear.annotate(degraded=True, leaked_fields=leaked)
                    else:
                        locs_o, fields_o = self._read_level(old_level, key)
                        by_stripe = {s: fields_o[(s, j)] for (s, j) in locs_o}
                        old_stripes = self._chain_stripes(old_head, by_stripe)
                        idx = {i: j for (i, j) in locs_o}
                        self.levels[old_level].write_fields(
                            {(s, idx[s]): None for s in old_stripes}
                        )
                cost = cost + clear.cost
            else:
                self.size += 1

            root.annotate(level=level, was_present=was_present)
            self.stats.inserts += 1
            self.stats.insert_ios += cost.total_ios
            self.stats.level_histogram[level] = (
                self.stats.level_histogram.get(level, 0) + 1
            )
            return cost

    def delete(self, key: int) -> OpCost:
        self._check_key(key)
        with span(
            self.machine,
            "dynamic_dict.delete",
            op="delete",
            structure="dynamic_dict",
            num_levels=self.num_levels,
            membership_bpb=self.membership.buckets.blocks_per_bucket,
        ) as root:
            mem = self.membership.lookup(key)
            if not mem.found:
                root.annotate(found=False)
                return mem.cost
            level, head = mem.value
            if self.machine.faults is not None:
                # Degraded order: retire the membership entry *first* (it
                # refuses upfront when its buckets are unreadable, leaving
                # everything untouched), then clear the chain best-effort.
                # A fault mid-clear leaks fields but the key is already
                # gone — no lookup can ever see the half-cleared chain.
                del_cost = self.membership.delete(key)
                with span(
                    self.machine, "dynamic_dict.clear_chain", level=level
                ) as clear:
                    leaked, fails = self._clear_chain_best_effort(
                        level, key, head
                    )
                    if leaked or fails:
                        clear.annotate(degraded=True, leaked_fields=leaked)
                self.size -= 1
                root.annotate(found=True, level=level)
                return mem.cost + del_cost + clear.cost
            # Membership delete and chain clearing hit disjoint disk groups;
            # the initial membership read is serial (it supplies the level).
            with span(self.machine, "dynamic_dict.delete.apply", parallel=True):
                with span(
                    self.machine, "dynamic_dict.clear_chain", level=level
                ) as clear:
                    locs, fields = self._read_level(level, key)
                    by_stripe = {s: fields[(s, j)] for (s, j) in locs}
                    stripes = self._chain_stripes(head, by_stripe)
                    idx = {i: j for (i, j) in locs}
                    self.levels[level].write_fields(
                        {(s, idx[s]): None for s in stripes}
                    )
                del_cost = self.membership.delete(key)
            self.size -= 1
            root.annotate(found=True, level=level)
            return mem.cost + OpCost.parallel(clear.cost, del_cost)

    # -- batched operations ----------------------------------------------------------
    #
    # The batch paths share the single-op fault discipline (membership-first
    # deletes, fields-then-membership inserts, leak-never-lie) but pack all
    # per-key probes of each phase into round-shared I/Os.  They do NOT
    # update ``self.stats`` — OperationStats counts *single* operations so
    # its per-op averages stay comparable across batch sizes; batches report
    # through spans (``rounds_saved`` et al.) instead.

    def _batch_read_level(self, level: int, keys, handle):
        """One round-packed read of every key's fields on ``level``.

        Returns ``(locs_map, fields, failures)`` where ``fields`` /
        ``failures`` cover the union of all keys' locations.
        """
        locs_map = self.level_graphs[level].batch_striped(
            keys, kernel=self._kernel
        )
        wanted = list(
            dict.fromkeys(loc for locs in locs_map.values() for loc in locs)
        )
        if self.machine.faults is None:
            fields = self.levels[level].read_fields(wanted)
            failures: Dict[Tuple[int, int], Exception] = {}
        else:
            fields, failures = self.levels[level].read_fields_degraded(wanted)
            if failures and handle.span is not None:
                handle.annotate(degraded=True, failed_fields=len(failures))
        annotate_round_packing(
            handle, self.machine, self.levels[level], locs_map.values()
        )
        return locs_map, fields, failures

    def batch_lookup(self, keys):
        """Answer many lookups with round-packed level reads.

        Phase 1 runs the batched membership probe in parallel with one
        speculative batched read of every key's level-1 fields; keys that
        land on deeper levels are grouped and read level by level.  Per-key
        undecidable outcomes become exception values (PR 3 semantics).
        """
        keys = list(dict.fromkeys(keys))
        for key in keys:
            self._check_key(key)
        with span(
            self.machine,
            "dynamic_dict.batch_lookup",
            op="batch_lookup",
            structure="dynamic_dict",
            num_levels=self.num_levels,
            batch_size=len(keys),
        ) as root:
            with span(
                self.machine, "dynamic_dict.batch_lookup.phase1", parallel=True
            ):
                mem_out, mem_cost = self.membership.batch_lookup(keys)
                with span(
                    self.machine, "dynamic_dict.speculative_read", level=0
                ) as spec:
                    locs0, fields0, fails0 = self._batch_read_level(
                        0, keys, spec
                    )
            cost = OpCost.parallel(mem_cost, spec.cost)
            deeper: Dict[int, List[int]] = {}
            for key in keys:
                mem = mem_out[key]
                if isinstance(mem, Exception) or not mem.found:
                    continue
                level, _head = mem.value
                if level != 0:
                    deeper.setdefault(level, []).append(key)
            level_data: Dict[int, Any] = {}
            for level in sorted(deeper):
                with span(
                    self.machine, "dynamic_dict.level_read", level=level
                ) as extra:
                    level_data[level] = self._batch_read_level(
                        level, deeper[level], extra
                    )
                cost = cost + extra.cost
            out: Dict[int, Any] = {}
            found = 0
            for key in keys:
                mem = mem_out[key]
                if isinstance(mem, Exception):
                    out[key] = mem
                    continue
                if not mem.found:
                    out[key] = LookupResult(False, None, cost)
                    continue
                level, head = mem.value
                if level == 0:
                    locs, fields, fails = locs0[key], fields0, fails0
                else:
                    locs_map, fields, fails = level_data[level]
                    locs = locs_map[key]
                mine = {loc: fails[loc] for loc in locs if loc in fails}
                try:
                    value = self._chain_value_degraded(
                        level, key, fields, locs, head, mine
                    )
                except DegradedLookupError as exc:
                    out[key] = exc
                else:
                    out[key] = LookupResult(True, value, cost)
                    found += 1
            root.annotate(batch_found=found)
        return out, cost

    def batch_insert(self, items):
        """Upsert many keys with round-packed level probes and writes.

        First-fit runs level by level over the whole batch at once: one
        batched read per level decides every still-unplaced key, with a
        ``claimed`` set preventing two keys of the same batch from taking
        the same free field.  Chains are written one batched write per
        level, then membership records every pointer in one batched upsert,
        then superseded chains are cleared.  Near capacity the batch admits
        new keys in arrival order, so it can refuse a key a differently
        ordered sequential run would have accepted — it never over-admits.
        """
        items = dict(items)
        for key in items:
            self._check_key(key)
        for key, value in items.items():
            if value is None or not 0 <= value < (1 << self.sigma):
                raise ValueError(
                    f"value must be an integer in [0, 2^{self.sigma}), "
                    f"got {value!r}"
                )
        with span(
            self.machine,
            "dynamic_dict.batch_insert",
            op="batch_insert",
            structure="dynamic_dict",
            num_levels=self.num_levels,
            batch_size=len(items),
        ) as root:
            degraded = self.machine.faults is not None
            mem_out, mem_cost = self.membership.batch_lookup(list(items))
            cost = mem_cost
            out: Dict[int, Any] = {}
            admitted: List[int] = []
            budget_used = 0
            for key in items:
                mem = mem_out[key]
                if isinstance(mem, Exception):
                    out[key] = DegradedModeError(
                        f"insert of key {key}: membership probe undecidable "
                        f"({mem})",
                        key=key,
                        op="insert",
                        failures=getattr(mem, "failures", None) or {key: mem},
                    )
                    continue
                if not mem.found:
                    if self.size + budget_used >= self.capacity:
                        out[key] = CapacityExceeded(
                            f"dictionary at capacity N={self.capacity}"
                        )
                        continue
                    budget_used += 1
                admitted.append(key)

            # First-fit over the whole batch, one packed read per level.
            placements: Dict[int, Tuple[int, List[int], Dict[int, int]]] = {}
            remaining = list(admitted)
            claimed: set = set()
            for level in range(self.num_levels):
                if not remaining:
                    break
                with span(
                    self.machine, "dynamic_dict.first_fit", level=level
                ) as probe:
                    locs_map, fields, fails = self._batch_read_level(
                        level, remaining, probe
                    )
                cost = cost + probe.cost
                still = []
                for key in remaining:
                    locs = locs_map[key]
                    idx = {i: j for (i, j) in locs}
                    free = sorted(
                        stripe
                        for (stripe, j) in locs
                        if (stripe, j) not in fails
                        and fields[(stripe, j)] is None
                        and (level, stripe, j) not in claimed
                    )
                    if len(free) >= self.m_need:
                        stripes = free[: self.m_need]
                        placements[key] = (level, stripes, idx)
                        claimed.update(
                            (level, s, idx[s]) for s in stripes
                        )
                    else:
                        still.append(key)
                remaining = still
            for key in remaining:
                out[key] = CapacityExceeded(
                    f"no level offers {self.m_need} free fields for key "
                    f"{key}; increase stripe_slack or capacity headroom"
                )

            # Write chains, one batched write per level.  write_blocks is
            # atomic per call, so a DiskFailure degrades every key of that
            # level and leaks nothing.
            by_level: Dict[int, List[int]] = {}
            for key in placements:
                by_level.setdefault(placements[key][0], []).append(key)
            written: List[int] = []
            for level in sorted(by_level):
                writes: Dict[Tuple[int, int], Any] = {}
                for key in by_level[level]:
                    _, stripes, idx = placements[key]
                    record = BitVector.from_int(items[key], self.sigma)
                    encoded = encode_chain(record, stripes, self.field_bits)
                    writes.update(
                        {(s, idx[s]): bits for s, bits in encoded.items()}
                    )
                with span(
                    self.machine, "dynamic_dict.batch_chain_write", level=level
                ) as w:
                    try:
                        self.levels[level].write_fields(writes)
                    except DiskFailure as exc:
                        for key in by_level[level]:
                            out[key] = DegradedModeError(
                                f"insert of key {key}: chain write on level "
                                f"{level} failed ({exc})",
                                key=key,
                                op="insert",
                                failures={key: exc},
                            )
                    else:
                        written.extend(by_level[level])
                cost = cost + w.cost

            # Membership phase: one batched upsert of the new pointers.
            # A key whose membership update fails leaks its freshly written
            # chain (fields busy, unreferenced) — capacity, never lies.
            if written:
                pointers = {
                    key: (placements[key][0], placements[key][1][0])
                    for key in written
                }
                up_out, up_cost = self.membership.batch_insert(pointers)
                cost = cost + up_cost
                new_keys = 0
                to_clear: Dict[int, List[Tuple[int, int]]] = {}
                for key in written:
                    res = up_out[key]
                    if isinstance(res, Exception):
                        out[key] = DegradedModeError(
                            f"insert of key {key}: membership update failed "
                            f"({res}); the new chain is leaked, not visible",
                            key=key,
                            op="insert",
                            failures=getattr(res, "failures", None)
                            or {key: res},
                        )
                        continue
                    was_present, old = res
                    out[key] = (was_present, None)
                    if was_present:
                        old_level, old_head = old
                        to_clear.setdefault(old_level, []).append(
                            (key, old_head)
                        )
                    else:
                        new_keys += 1
                self.size += new_keys

                # Clear superseded chains.  Membership already points at the
                # new chains, so faults here only leak fields.
                for old_level in sorted(to_clear):
                    with span(
                        self.machine,
                        "dynamic_dict.clear_chain",
                        level=old_level,
                    ) as clear:
                        if degraded:
                            leaked_total = 0
                            for key, old_head in to_clear[old_level]:
                                leaked, _ = self._clear_chain_best_effort(
                                    old_level, key, old_head
                                )
                                leaked_total += leaked
                            if leaked_total:
                                clear.annotate(
                                    degraded=True, leaked_fields=leaked_total
                                )
                        else:
                            lkeys = [k for k, _ in to_clear[old_level]]
                            locs_map, fields, _ = self._batch_read_level(
                                old_level, lkeys, clear
                            )
                            nones: Dict[Tuple[int, int], Any] = {}
                            for key, old_head in to_clear[old_level]:
                                locs = locs_map[key]
                                idx = {i: j for (i, j) in locs}
                                by_stripe = {
                                    s: fields[(s, j)] for (s, j) in locs
                                }
                                for s in self._chain_stripes(
                                    old_head, by_stripe
                                ):
                                    nones[(s, idx[s])] = None
                            try:
                                self.levels[old_level].write_fields(nones)
                            except DiskFailure:
                                # The new chains and membership entries are
                                # already committed: the upserts stand, the
                                # old fields leak — capacity, never lies.
                                clear.annotate(
                                    degraded=True, leaked_fields=len(nones)
                                )
                    cost = cost + clear.cost
            root.annotate(
                batch_placed=len(written), size=self.size
            )
        return out, cost

    def batch_delete(self, keys):
        """Delete many keys: one batched membership probe + delete, then
        round-packed chain clears grouped by level.

        Keeps the single-op fault ordering — membership entries retire
        first, so a fault mid-clear leaks fields but no lookup can ever see
        a half-cleared chain.
        """
        keys = list(dict.fromkeys(keys))
        for key in keys:
            self._check_key(key)
        with span(
            self.machine,
            "dynamic_dict.batch_delete",
            op="batch_delete",
            structure="dynamic_dict",
            num_levels=self.num_levels,
            batch_size=len(keys),
        ) as root:
            degraded = self.machine.faults is not None
            mem_out, mem_cost = self.membership.batch_lookup(keys)
            cost = mem_cost
            out: Dict[int, Any] = {}
            present: Dict[int, Tuple[int, int]] = {}
            for key in keys:
                mem = mem_out[key]
                if isinstance(mem, Exception):
                    out[key] = mem
                elif not mem.found:
                    out[key] = False
                else:
                    present[key] = mem.value
            removed = 0
            if present:
                del_out, del_cost = self.membership.batch_delete(
                    list(present)
                )
                cost = cost + del_cost
                to_clear: Dict[int, List[Tuple[int, int]]] = {}
                for key in present:
                    res = del_out[key]
                    if isinstance(res, Exception):
                        out[key] = res
                        continue
                    out[key] = True
                    removed += 1
                    level, head = present[key]
                    to_clear.setdefault(level, []).append((key, head))
                for level in sorted(to_clear):
                    with span(
                        self.machine, "dynamic_dict.clear_chain", level=level
                    ) as clear:
                        if degraded:
                            leaked_total = 0
                            for key, head in to_clear[level]:
                                leaked, _ = self._clear_chain_best_effort(
                                    level, key, head
                                )
                                leaked_total += leaked
                            if leaked_total:
                                clear.annotate(
                                    degraded=True, leaked_fields=leaked_total
                                )
                        else:
                            lkeys = [k for k, _ in to_clear[level]]
                            locs_map, fields, _ = self._batch_read_level(
                                level, lkeys, clear
                            )
                            nones: Dict[Tuple[int, int], Any] = {}
                            for key, head in to_clear[level]:
                                locs = locs_map[key]
                                idx = {i: j for (i, j) in locs}
                                by_stripe = {
                                    s: fields[(s, j)] for (s, j) in locs
                                }
                                for s in self._chain_stripes(head, by_stripe):
                                    nones[(s, idx[s])] = None
                            try:
                                self.levels[level].write_fields(nones)
                            except DiskFailure:
                                # Membership already retired these keys: the
                                # deletes stand, the fields leak (capacity,
                                # never correctness).
                                clear.annotate(
                                    degraded=True, leaked_fields=len(nones)
                                )
                    cost = cost + clear.cost
            self.size -= removed
            root.annotate(batch_removed=removed, size=self.size)
        return out, cost

    # -- bulk construction ----------------------------------------------------------

    def bulk_load(self, items: Dict[int, int]) -> OpCost:
        """Load a key -> value map into an EMPTY dictionary.

        §4.3 dynamizes the static structure; going the other way, an
        initial set is best loaded statically: the Theorem 6 unique-
        neighbor assignment places the bulk of the keys on level 1 with
        batched field writes, the membership dictionary is bulk-built, and
        only the (geometrically few) unassignable keys fall back to
        first-fit inserts.
        """
        if self.size:
            raise ValueError("bulk_load requires an empty dictionary")
        if len(items) > self.capacity:
            raise CapacityExceeded(
                f"{len(items)} items exceed capacity N={self.capacity}"
            )
        from repro.core.static_dict import assign_unique_neighbors

        graph = self.level_graphs[0]
        result = assign_unique_neighbors(
            graph, sorted(items), m_need=self.m_need
        )
        with span(
            self.machine,
            "dynamic_dict.bulk_load",
            op="bulk_load",
            structure="dynamic_dict",
            items=len(items),
        ) as m:
            writes = {}
            membership_items = {}
            for key, stripes in result.assignment.items():
                record = BitVector.from_int(items[key], self.sigma)
                encoded = encode_chain(record, list(stripes), self.field_bits)
                idx = {i: j for (i, j) in graph.striped_neighbors(key)}
                for stripe, bits in encoded.items():
                    writes[(stripe, idx[stripe])] = bits
                membership_items[key] = (0, stripes[0])
            self.levels[0].write_fields(writes)
            self.membership.bulk_build(membership_items)
            self.size = len(result.assignment)
            for key in result.overflow:
                self.insert(key, items[key])
        for key in result.assignment:
            self.stats.level_histogram[0] = (
                self.stats.level_histogram.get(0, 0) + 1
            )
        return m.cost

    # -- audits ---------------------------------------------------------------------

    def stored_keys(self):
        return self.membership.stored_keys()

    def recovery_extents(self):
        ext = self.membership.recovery_extents()
        for arr in self.levels:
            ext.extend(arr.extents())
        return ext

    def level_occupancy(self) -> List[int]:
        """Occupied fields per level (audit; no I/O)."""
        return [arr.occupied_fields() for arr in self.levels]

    @property
    def space_bits(self) -> int:
        bits = sum(arr.total_bits for arr in self.levels)
        b = self.membership.buckets
        bits += b.num_buckets * b.blocks_per_bucket * self.machine.block_bits
        return bits

    def __len__(self) -> int:
        return self.size

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"DynamicDictionary(n={self.size}/{self.capacity}, "
            f"d={self.degree}, levels={self.num_levels}, sigma={self.sigma})"
        )
