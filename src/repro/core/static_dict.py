"""The almost-optimal one-probe static dictionary (Section 4.2, Theorem 6).

A striped ``(n, eps)``-expander with ``v = O(n d)`` right vertices indexes an
array ``A`` of fields.  Construction assigns every key ``ceil(2d/3)`` of its
neighbors via *unique neighbor* nodes (Lemmas 4–5): at least half the keys
have that many unique neighbors, they get assigned, and the procedure
recurses on the rest — geometrically fewer each round.

Two layouts, by block size (Theorem 6):

* **Case (b)** (small blocks): every field holds a ``lg n``-bit identifier
  plus a ``3 sigma / (2d)``-bit record fragment.  A lookup reads the ``d``
  fields of ``Γ(x)`` in one parallel I/O and looks for an identifier on a
  strict majority of fields; since no two keys share more than ``eps d``
  neighbors, a majority identifier can only belong to ``x`` itself — no key
  comparison needed.  Space ``O(n log u log n + n sigma)`` bits.
* **Case (a)** (``B = Omega(log n)``): two sub-dictionaries on ``2d`` disks,
  queried in parallel.  A §4.1 membership dictionary stores each key with a
  ``lg d``-bit *head pointer*; the retrieval array stores unary-coded
  relative pointers chaining the assigned fields (see :mod:`repro.bits`),
  with all remaining field space holding record data.  Space
  ``O(n (log u + sigma))`` bits — optimal up to a constant.

Lookups take **one parallel I/O** in both cases.  The structure is static:
:meth:`insert` raises (Section 4.3 dynamizes it).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.bits import (
    BitVector,
    decode_chain,
    encode_chain,
    required_field_bits,
)
from repro.core.basic_dict import BasicDictionary
from repro.core.interface import (
    CapacityExceeded,
    DegradedLookupError,
    Dictionary,
    LookupResult,
    annotate_round_packing,
)
from repro.pdm.errors import BlockCorruption, DiskFailure
from repro.expanders.base import StripedExpander
from repro.expanders.random_graph import SeededRandomExpander
from repro.kernels import resolve_kernel
from repro.pdm.iostats import OpCost
from repro.pdm.machine import AbstractDiskMachine
from repro.pdm.spans import span
from repro.pdm.striping import StripedFieldArray

#: the fraction of a key's neighbors that get assigned: ceil(2d/3).
def fields_needed(degree: int) -> int:
    return -(-2 * degree // 3)


def fault_tolerance(degree: int) -> int:
    """Maximum unreadable assigned fields a degraded lookup survives.

    With ``m = ceil(2d/3)`` assigned fields and a strict-majority-of-``m``
    decode bar, losing ``f <= floor((m - 1) / 2)`` fields still leaves the
    true identifier with more than ``m/2`` votes, while any impostor holds
    at most ``eps * d < d/3 <= m/2`` shared-neighbor fields — so both the
    positive answer and the miss stay sound up to exactly this threshold.
    """
    return (fields_needed(degree) - 1) // 2


@dataclass
class AssignmentResult:
    """Output of the unique-neighbor assignment recursion."""

    assignment: Dict[int, Tuple[int, ...]]  # key -> assigned stripes (sorted)
    rounds: int
    round_sizes: List[int]
    overflow: List[int]  # keys that could not be assigned (should be empty)


def assign_unique_neighbors(
    graph: StripedExpander,
    keys: Sequence[int],
    *,
    m_need: Optional[int] = None,
    max_rounds: int = 64,
) -> AssignmentResult:
    """The recursive assignment of Theorem 6's construction (in-memory form;
    :mod:`repro.core.static_construction` reproduces it through external
    sorting with identical output).

    Each round computes ``Φ(S)`` for the still-unassigned ``S``; keys owning
    at least ``m_need`` unique neighbors take their first ``m_need`` (in
    stripe order), and the rest recurse.  Rounds never conflict: a field
    unique to ``x`` within ``S`` is not a neighbor of any other key of ``S``,
    so later rounds (subsets of ``S``) cannot touch it.
    """
    if m_need is None:
        m_need = fields_needed(graph.degree)
    remaining = list(dict.fromkeys(keys))
    assignment: Dict[int, Tuple[int, ...]] = {}
    round_sizes: List[int] = []
    rounds = 0
    while remaining and rounds < max_rounds:
        owner: Dict[int, Optional[int]] = {}
        for x in remaining:
            for y in dict.fromkeys(graph.neighbors(x)):
                owner[y] = x if y not in owner else None
        assigned_now: List[int] = []
        still: List[int] = []
        for x in remaining:
            uniq_stripes = [
                i
                for (i, j) in graph.striped_neighbors(x)
                if owner.get(i * graph.stripe_size + j) == x
            ]
            if len(uniq_stripes) >= m_need:
                assignment[x] = tuple(sorted(uniq_stripes)[:m_need])
                assigned_now.append(x)
            else:
                still.append(x)
        if not assigned_now:
            break
        round_sizes.append(len(assigned_now))
        remaining = still
        rounds += 1
    return AssignmentResult(
        assignment=assignment,
        rounds=rounds,
        round_sizes=round_sizes,
        overflow=remaining,
    )


@dataclass
class StaticBuildReport:
    """Construction statistics (compared against sort(nd) in benchmarks)."""

    n: int
    case: str
    rounds: int
    cost: OpCost
    membership_cost: OpCost
    space_bits: int
    overflow: int


class StaticDictionary(Dictionary):
    """One-probe static dictionary (build via :meth:`build`)."""

    def __init__(self):  # pragma: no cover - guidance only
        raise TypeError("use StaticDictionary.build(...)")

    @classmethod
    def build(
        cls,
        machine: AbstractDiskMachine,
        items: Mapping[int, int],
        *,
        universe_size: int,
        sigma: int,
        case: str = "a",
        degree: Optional[int] = None,
        stripe_slack: float = 4.0,
        seed: int = 0,
        disk_offset: int = 0,
        graph: Optional[StripedExpander] = None,
        strict: bool = True,
        construction: str = "fast",
        redundancy: str = "standard",
        kernel: Any = None,
    ) -> "StaticDictionary":
        """Construct the dictionary for a fixed key -> value map.

        ``sigma`` is the satellite size in bits; values are integers in
        ``[0, 2^sigma)``.  ``case`` is ``'a'`` or ``'b'`` per Theorem 6.
        ``strict`` controls whether unassignable keys (possible only when
        the graph's expansion is inadequate for the parameters) raise or are
        reported in the build report.  ``construction='extsort'`` runs the
        assignment through the paper's external-sorting procedure
        (:mod:`repro.core.static_construction`) so its ``O(sort(nd))`` I/O
        cost is measured; ``'fast'`` computes the identical assignment in
        host memory and charges only the field/membership writes.

        ``redundancy`` (case 'b' only) selects the fragment layout:
        ``'standard'`` is the paper's — each of the ``m = ceil(2d/3)``
        fields holds a distinct ``ceil(sigma/m)``-bit record fragment, so
        losing any fragment loses record bits (membership stays decidable
        up to :func:`fault_tolerance` lost fields, but the value does not
        survive).  ``'replicate'`` stores the *full* record in every
        assigned field (``m``-way replication, ``field_bits = lg n +
        sigma``): degraded lookups then reconstruct the value from any
        surviving field and can read-repair corrupted ones — the space /
        fault-tolerance trade-off made explicit.
        """
        self = object.__new__(cls)
        if case not in ("a", "b"):
            raise ValueError(f"case must be 'a' or 'b', got {case!r}")
        if redundancy not in ("standard", "replicate"):
            raise ValueError(
                f"redundancy must be 'standard' or 'replicate', got "
                f"{redundancy!r}"
            )
        if redundancy == "replicate" and case != "b":
            raise ValueError(
                "redundancy='replicate' applies to case 'b' only; case 'a' "
                "chains fragments through unary pointers and cannot replicate"
            )
        if sigma < 0:
            raise ValueError(f"sigma must be non-negative, got {sigma}")
        n = len(items)
        if n == 0:
            raise ValueError("cannot build a static dictionary over no keys")
        self.universe_size = universe_size
        self.sigma = sigma
        self.case = case
        self.redundancy = redundancy
        self.machine = machine
        self.n = n
        self._kernel = resolve_kernel(kernel)

        groups = 2 if case == "a" else 1
        if graph is not None:
            degree = graph.degree
        if degree is None:
            degree = (machine.num_disks - disk_offset) // groups
        if degree < 4:
            raise ValueError(
                f"need degree >= 4 (paper: d > 12 for eps = 1/12), got {degree}"
            )
        if disk_offset + groups * degree > machine.num_disks:
            raise ValueError(
                f"case ({case}) needs {groups * degree} disks from offset "
                f"{disk_offset}; machine has {machine.num_disks}"
            )
        self.degree = degree
        self.m_need = fields_needed(degree)
        stripe_size = (
            graph.stripe_size if graph is not None
            else max(1, math.ceil(stripe_slack * n))
        )
        if graph is None:
            graph = SeededRandomExpander(
                left_size=universe_size,
                degree=degree,
                stripe_size=stripe_size,
                seed=seed,
            )
        self.graph = graph

        keys_sorted = sorted(items)
        for key in keys_sorted:
            self._check_key(key)
        for key, value in items.items():
            if not 0 <= value < (1 << max(sigma, 1)):
                raise ValueError(
                    f"value {value} of key {key} does not fit in sigma="
                    f"{sigma} bits"
                )

        snap = machine.stats.snapshot()
        self.external_report = None
        if construction == "extsort":
            from repro.core.static_construction import external_assignment

            assignment, ext_report = external_assignment(
                machine, graph, keys_sorted, m_need=self.m_need
            )
            result = AssignmentResult(
                assignment=assignment,
                rounds=ext_report.rounds,
                round_sizes=ext_report.round_sizes,
                overflow=ext_report.overflow,
            )
            self.external_report = ext_report
        elif construction == "fast":
            result = assign_unique_neighbors(
                graph, keys_sorted, m_need=self.m_need
            )
        else:
            raise ValueError(
                f"construction must be 'fast' or 'extsort', got {construction!r}"
            )
        if result.overflow and strict:
            raise CapacityExceeded(
                f"{len(result.overflow)} keys could not be assigned "
                f"{self.m_need} unique neighbors; enlarge stripe_slack or "
                f"the degree"
            )
        self.assignment = result.assignment

        self.ident_bits = max(1, math.ceil(math.log2(max(n, 2))))
        self._ident = {key: rank for rank, key in enumerate(keys_sorted)}

        membership_cost = OpCost.zero()
        if case == "b":
            self.membership = None
            if redundancy == "replicate":
                frag_bits = sigma
            else:
                frag_bits = math.ceil(sigma / self.m_need) if sigma else 0
            self.field_bits = self.ident_bits + max(frag_bits, 0)
            self.array = StripedFieldArray(
                machine,
                stripes=degree,
                stripe_size=stripe_size,
                field_bits=self.field_bits,
                disk_offset=disk_offset,
            )
            self._fill_case_b(items)
        else:
            self.membership = BasicDictionary(
                machine,
                universe_size=universe_size,
                capacity=n,
                degree=degree,
                disk_offset=disk_offset,
                seed=seed + 1,
                kernel=kernel,
            )
            if sigma > 0:
                self.field_bits = max(
                    math.ceil(3 * sigma / (2 * degree)) + 4,
                    required_field_bits(sigma, self.m_need, degree),
                )
                self.array = StripedFieldArray(
                    machine,
                    stripes=degree,
                    stripe_size=stripe_size,
                    field_bits=self.field_bits,
                    disk_offset=disk_offset + degree,
                )
            else:
                self.field_bits = 0
                self.array = None
            mem_snap = machine.stats.snapshot()
            self._fill_case_a(items)
            membership_cost = machine.stats.since(mem_snap)

        self.report = StaticBuildReport(
            n=n,
            case=case,
            rounds=result.rounds,
            cost=machine.stats.since(snap),
            membership_cost=membership_cost,
            space_bits=self.space_bits,
            overflow=len(result.overflow),
        )
        return self

    # -- construction fills ---------------------------------------------------

    def _record_bits(self, value: int) -> BitVector:
        return BitVector.from_int(value, self.sigma)

    def _fill_case_b(self, items: Mapping[int, int]) -> None:
        replicate = self.redundancy == "replicate"
        frag_w = math.ceil(self.sigma / self.m_need) if self.sigma else 0
        writes: Dict[Tuple[int, int], Tuple[int, BitVector]] = {}
        stripe_index = self._stripe_index_map()
        for key, stripes in self.assignment.items():
            record = self._record_bits(items[key])
            ident = self._ident[key]
            for t, stripe in enumerate(stripes):
                if replicate:
                    frag = record if self.sigma else BitVector()
                else:
                    frag = (
                        record[t * frag_w : (t + 1) * frag_w]
                        if frag_w
                        else BitVector()
                    )
                writes[(stripe, stripe_index[key][stripe])] = (ident, frag)
        self.array.write_fields(writes)

    def _fill_case_a(self, items: Mapping[int, int]) -> None:
        stripe_index = self._stripe_index_map()
        writes: Dict[Tuple[int, int], BitVector] = {}
        heads: Dict[int, int] = {}
        for key, stripes in self.assignment.items():
            heads[key] = stripes[0]
            if self.array is not None:
                record = self._record_bits(items[key])
                encoded = encode_chain(record, list(stripes), self.field_bits)
                for stripe, contents in encoded.items():
                    writes[(stripe, stripe_index[key][stripe])] = contents
        # Static construction: fill the membership dictionary with batched
        # writes rather than n individual 2-I/O inserts.
        self.membership.bulk_build(heads)
        if self.array is not None:
            self.array.write_fields(writes)

    def _stripe_index_map(self) -> Dict[int, Dict[int, int]]:
        """key -> {stripe -> index within stripe} over its neighbors."""
        out: Dict[int, Dict[int, int]] = {}
        for key in self.assignment:
            out[key] = {i: j for (i, j) in self.graph.striped_neighbors(key)}
        return out

    # -- operations -----------------------------------------------------------------

    def lookup(self, key: int) -> LookupResult:
        self._check_key(key)
        if self.case == "b":
            return self._lookup_case_b(key)
        return self._lookup_case_a(key)

    def _lookup_case_b(self, key: int) -> LookupResult:
        with span(
            self.machine,
            "static_dict.lookup",
            op="lookup",
            structure="static_dict",
            case="b",
        ) as m:
            locs = self.graph.striped_neighbors(key)
            if self.machine.faults is None:
                fields = self.array.read_fields(locs)
                failures: Dict[Tuple[int, int], Exception] = {}
            else:
                fields, failures = self.array.read_fields_degraded(locs)
                if failures and m.span is not None:
                    m.annotate(degraded=True, failed_fields=len(failures))
            found, value = self._settle_case_b(key, locs, fields, failures, m)
            if m.span is not None:
                m.annotate(found=found)
        # m.cost is only final once the span has exited.
        return LookupResult(found, value, m.cost)

    def _settle_case_b(
        self,
        key: int,
        locs: List[Tuple[int, int]],
        fields: Dict[Tuple[int, int], Any],
        failures: Dict[Tuple[int, int], Exception],
        m,
    ) -> Tuple[bool, Optional[int]]:
        """Decode one key from prefetched fields (single or batched read).

        ``fields``/``failures`` may cover more locations than this key's;
        only the key's own probes vote and only its own failures count
        against the tolerance.
        """
        mine = {loc: failures[loc] for loc in locs if loc in failures}
        counts: Dict[int, int] = {}
        for loc in locs:
            if loc in mine:
                continue
            val = fields[loc]
            if val is not None:
                ident = val[0]
                counts[ident] = counts.get(ident, 0) + 1
        # Decode bar: a strict majority of the m = ceil(2d/3) *assigned*
        # fields.  On intact data this answers identically to a
        # majority-of-d bar (a present key holds all m > d/2 fields, an
        # impostor at most eps*d < d/3 <= m/2), but it stays correct
        # when fields are legitimately missing — after a fault, or after
        # read-repair scrubbed a field's block slot.
        bar = self.m_need / 2
        majority = None
        for ident, cnt in counts.items():
            if cnt > bar:
                majority = ident
                break
        if majority is None and mine:
            if len(mine) > fault_tolerance(self.degree):
                # A present key could have lost its majority entirely:
                # a miss would be a guess, so fail loudly instead.
                raise DegradedLookupError(
                    f"key {key}: {len(mine)} of {self.degree} fields "
                    f"unreadable exceeds the tolerance of "
                    f"{fault_tolerance(self.degree)}; membership "
                    f"undecidable",
                    key=key,
                    failures=mine,
                )
            # f <= floor((m-1)/2): even a present key keeps > m/2
            # surviving votes, so the absence of a majority proves a
            # genuine miss.
        found = majority is not None
        value: Optional[int] = None
        if found:
            frags = [
                (stripe, fields[(stripe, j)][1])
                for (stripe, j) in locs
                if (stripe, j) not in mine
                and fields[(stripe, j)] is not None
                and fields[(stripe, j)][0] == majority
            ]
            frags.sort()
            if mine:
                value = self._decode_degraded(key, majority, frags, mine)
                self._read_repair(key, majority, value, mine, m)
            elif self.sigma:
                record = BitVector()
                for _, frag in frags:
                    record = record + frag
                value = record[: self.sigma].to_int()
        return found, value

    def _decode_degraded(
        self,
        key: int,
        majority: int,
        frags: List[Tuple[int, BitVector]],
        failures: Dict[Tuple[int, int], Exception],
    ) -> Optional[int]:
        """Reconstruct the record once presence is established.

        Replicated layout: any surviving copy is the whole record.
        Standard layout: all ``m`` distinct fragments are required — if any
        assigned field was lost, membership is known but the value is not,
        and pretending otherwise would return a truncated record.
        """
        if not self.sigma:
            return None
        if self.redundancy == "replicate":
            return frags[0][1][: self.sigma].to_int()
        if len(frags) == self.m_need:
            record = BitVector()
            for _, frag in frags:
                record = record + frag
            return record[: self.sigma].to_int()
        raise DegradedLookupError(
            f"key {key} is present but {self.m_need - len(frags)} of its "
            f"{self.m_need} record fragments are unreadable "
            f"(redundancy='standard' keeps no spare copies; build with "
            f"redundancy='replicate' for value survival)",
            key=key,
            failures=failures,
            membership=True,
        )

    def _read_repair(
        self,
        key: int,
        majority: int,
        value: Optional[int],
        failures: Dict[Tuple[int, int], Exception],
        handle,
    ) -> None:
        """Heal corrupted fields of ``key`` from the reconstructed record.

        Recovery (not the one-probe hot path) may consult the construction
        metadata, the way a scrubber would: only fields the assignment
        actually gave to ``key`` are rewritten, and only for *corruption*
        failures — an outage has nothing to write to, and a transient left
        the medium intact.  Repair I/O is charged as ``repair_ios`` inside
        the lookup span.
        """
        if self.redundancy != "replicate":
            return
        assigned = set(self.assignment.get(key, ()))
        record = (
            BitVector.from_int(value, self.sigma) if self.sigma else BitVector()
        )
        repairs = {
            loc: (majority, record)
            for loc, fault in failures.items()
            if isinstance(fault, BlockCorruption) and loc[0] in assigned
        }
        if not repairs:
            return
        try:
            self.array.repair_fields(repairs)
        except DiskFailure:
            return  # the disk went down between read and repair; next time
        if handle.span is not None:
            handle.annotate(repaired_fields=len(repairs))

    def _lookup_case_a(self, key: int) -> LookupResult:
        # The two sub-dictionaries live on disjoint disk groups and are
        # probed simultaneously: combine costs with `parallel`.
        with span(
            self.machine,
            "static_dict.lookup",
            op="lookup",
            structure="static_dict",
            case="a",
            parallel=True,
        ):
            # Membership handles its own degradation: an undecidable probe
            # raises DegradedLookupError from inside the basic dictionary.
            mem_result = self.membership.lookup(key)
            if self.array is None:
                return mem_result
            with span(self.machine, "static_dict.field_read") as m:
                locs = self.graph.striped_neighbors(key)
                if self.machine.faults is None:
                    fields = self.array.read_fields(locs)
                    failures: Dict[Tuple[int, int], Exception] = {}
                else:
                    fields, failures = self.array.read_fields_degraded(locs)
                    if failures and m.span is not None:
                        m.annotate(degraded=True, failed_fields=len(failures))
        cost = OpCost.parallel(mem_result.cost, m.cost)
        if not mem_result.found:
            # Sound regardless of field failures: membership alone decides
            # absence, and it answered (or raised) on its own redundancy.
            return LookupResult(False, None, cost)
        head = mem_result.value
        if failures:
            assigned = set(self.assignment.get(key, ()))
            lost = [loc for loc in failures if loc[0] in assigned]
            if lost:
                raise DegradedLookupError(
                    f"key {key} is present but {len(lost)} of its chained "
                    f"record fields are unreadable (case 'a' unary chains "
                    f"keep no spare copies)",
                    key=key,
                    failures=failures,
                    membership=True,
                )
        by_stripe = {
            stripe: fields[(stripe, j)]
            for (stripe, j) in locs
            if (stripe, j) not in failures
        }
        record = decode_chain(
            by_stripe, head, self.field_bits, self.sigma, self.degree
        )
        return LookupResult(True, record.to_int(), cost)

    def batch_lookup(self, keys):
        """Answer many lookups with one round-packed field read.

        The assigned fields of every key in the batch are fetched as a
        single batch; shared blocks deduplicate, so ``m`` uniform one-probe
        lookups cost ``⌈m/D⌉ + O(1)`` rounds instead of ``m``.  Per-key
        undecidable outcomes under faults become :class:`DegradedLookupError`
        values (PR 3 semantics); the batch never fails wholesale.
        """
        keys = list(dict.fromkeys(keys))
        for key in keys:
            self._check_key(key)
        if self.case == "b":
            return self._batch_lookup_case_b(keys)
        return self._batch_lookup_case_a(keys)

    def _batch_lookup_case_b(self, keys):
        with span(
            self.machine,
            "static_dict.batch_lookup",
            op="batch_lookup",
            structure="static_dict",
            case="b",
            batch_size=len(keys),
        ) as m:
            all_locs = self.graph.batch_striped(keys, kernel=self._kernel)
            wanted = list(
                dict.fromkeys(loc for locs in all_locs.values() for loc in locs)
            )
            if self.machine.faults is None:
                fields = self.array.read_fields(wanted)
                failures: Dict[Tuple[int, int], Exception] = {}
            else:
                fields, failures = self.array.read_fields_degraded(wanted)
                if failures and m.span is not None:
                    m.annotate(degraded=True, failed_fields=len(failures))
            annotate_round_packing(m, self.machine, self.array, all_locs.values())
            settled: Dict[int, Any] = {}
            for key in keys:
                try:
                    settled[key] = self._settle_case_b(
                        key, all_locs[key], fields, failures, m
                    )
                except DegradedLookupError as exc:
                    settled[key] = exc
        out: Dict[int, Any] = {}
        for key, res in settled.items():
            if isinstance(res, Exception):
                out[key] = res
            else:
                found, value = res
                out[key] = LookupResult(found, value, m.cost)
        return out, m.cost

    def _batch_lookup_case_a(self, keys):
        with span(
            self.machine,
            "static_dict.batch_lookup",
            op="batch_lookup",
            structure="static_dict",
            case="a",
            batch_size=len(keys),
            parallel=True,
        ):
            # Membership batches on its own; per-key undecidable probes come
            # back as exception values from the basic dictionary.
            mem_out, mem_cost = self.membership.batch_lookup(keys)
            if self.array is None:
                return mem_out, mem_cost
            with span(self.machine, "static_dict.batch_field_read") as m:
                all_locs = self.graph.batch_striped(
                    keys, kernel=self._kernel
                )
                wanted = list(
                    dict.fromkeys(
                        loc for locs in all_locs.values() for loc in locs
                    )
                )
                if self.machine.faults is None:
                    fields = self.array.read_fields(wanted)
                    failures: Dict[Tuple[int, int], Exception] = {}
                else:
                    fields, failures = self.array.read_fields_degraded(wanted)
                    if failures and m.span is not None:
                        m.annotate(degraded=True, failed_fields=len(failures))
                annotate_round_packing(
                    m, self.machine, self.array, all_locs.values()
                )
        cost = OpCost.parallel(mem_cost, m.cost)
        out: Dict[int, Any] = {}
        for key in keys:
            mem = mem_out[key]
            if isinstance(mem, Exception):
                out[key] = mem
                continue
            if not mem.found:
                # Sound regardless of field failures: membership alone
                # decides absence on its own redundancy.
                out[key] = LookupResult(False, None, cost)
                continue
            locs = all_locs[key]
            mine = {loc: failures[loc] for loc in locs if loc in failures}
            if mine:
                assigned = set(self.assignment.get(key, ()))
                lost = [loc for loc in mine if loc[0] in assigned]
                if lost:
                    out[key] = DegradedLookupError(
                        f"key {key} is present but {len(lost)} of its "
                        f"chained record fields are unreadable (case 'a' "
                        f"unary chains keep no spare copies)",
                        key=key,
                        failures=mine,
                        membership=True,
                    )
                    continue
            by_stripe = {
                stripe: fields[(stripe, j)]
                for (stripe, j) in locs
                if (stripe, j) not in failures
            }
            record = decode_chain(
                by_stripe, mem.value, self.field_bits, self.sigma, self.degree
            )
            out[key] = LookupResult(True, record.to_int(), cost)
        return out, cost

    def insert(self, key: int, value: int = None) -> OpCost:
        raise NotImplementedError(
            "StaticDictionary is static; use DynamicDictionary (Section 4.3) "
            "or rebuild"
        )

    # -- recovery hooks -----------------------------------------------------

    def recovery_extents(self):
        ext = []
        if self.array is not None:
            ext.extend(self.array.extents())
        if self.membership is not None:
            ext.extend(self.membership.recovery_extents())
        return ext

    def reconstruct_round_bound(self):
        if (
            self.case == "b"
            and self.redundancy == "replicate"
            and self.array is not None
        ):
            # One reconstruction batch touches at most every block of a
            # replica stripe on each surviving disk.
            return self.array.blocks_per_stripe
        return 1

    def _field_owners(self) -> Dict[Tuple[int, int], int]:
        """Reverse of the construction fill: ``(stripe, index) -> key``.
        Built lazily — only recovery walks it, never the one-probe path."""
        owners = getattr(self, "_owner_map", None)
        if owners is None:
            owners = {}
            simap = self._stripe_index_map()
            self._simap = simap
            for key, stripes in self.assignment.items():
                for s in stripes:
                    owners[(s, simap[key][s])] = key
            self._owner_map = owners
        return owners

    def reconstruct_block(self, addr):
        """Rebuild one lost field-array block from replica majority.

        Only the replicated case-'b' layout keeps spare copies: each slot
        of the lost block held some key's full ``(ident, record)`` field,
        and the same pair lives on every *other* stripe the assignment
        gave that key.  Reads go through the degraded path (surviving
        replicas may themselves be faulted) and each slot is restored
        only when an identifier wins a strict majority of the key's
        ``m`` assigned fields — the same decode bar as a lookup, so a
        reconstructed block can never contain data a lookup would not
        have vouched for.  Slots with no surviving majority stay empty
        (loud data loss on next lookup, never silent garbage).

        Callers charge the reads as repair I/O
        (:meth:`~repro.pdm.machine.AbstractDiskMachine.attribute_repair`).
        Returns ``(payload, used_bits)`` or ``None`` if the block is not
        reconstructible from this structure.
        """
        if (
            self.case != "b"
            or self.redundancy != "replicate"
            or self.array is None
        ):
            return None
        arr = self.array
        disk, block_index = addr
        stripe = disk - arr.disk_offset
        if not 0 <= stripe < arr.stripes:
            return None
        base = arr._base[stripe]
        if not base <= block_index < base + arr.blocks_per_stripe:
            return None
        owners = self._field_owners()
        fpb = arr.fields_per_block
        slot_plan: List[Tuple[int, int, List[Tuple[int, int]]]] = []
        wanted: Dict[Tuple[int, int], None] = {}
        for slot in range(fpb):
            index = (block_index - base) * fpb + slot
            if index >= arr.stripe_size:
                break
            key = owners.get((stripe, index))
            if key is None:
                continue
            simap = self._simap[key]
            locs = [
                (s, simap[s]) for s in self.assignment[key] if s != stripe
            ]
            slot_plan.append((slot, key, locs))
            for loc in locs:
                wanted[loc] = None
        if not slot_plan:
            return [None] * fpb, 0
        values, _failures = arr.read_fields_degraded(wanted)
        payload: List[Any] = [None] * fpb
        bar = self.m_need / 2
        for slot, key, locs in slot_plan:
            counts: Dict[int, int] = {}
            sample: Dict[int, Any] = {}
            for loc in locs:
                val = values.get(loc)
                if val is None:
                    continue
                ident = val[0]
                counts[ident] = counts.get(ident, 0) + 1
                sample[ident] = val
            for ident, cnt in counts.items():
                if cnt > bar:
                    payload[slot] = (ident, sample[ident][1])
                    break
        used = sum(1 for v in payload if v is not None) * arr.field_bits
        return payload, used

    # -- audits -------------------------------------------------------------------------

    @property
    def space_bits(self) -> int:
        """Declared external space of the structure."""
        bits = 0
        if self.array is not None:
            bits += self.array.total_bits
        if self.membership is not None:
            b = self.membership.buckets
            bits += (
                b.num_buckets * b.blocks_per_bucket * self.machine.block_bits
            )
        return bits

    def __len__(self) -> int:
        return self.n
