"""Common dictionary interface and result types.

All dictionaries in this library (the paper's constructions and the
randomized baselines) expose the same surface so the Figure 1 benchmark can
drive them interchangeably:

* ``lookup(key) -> LookupResult`` — membership plus satellite data plus the
  parallel-I/O cost of this very operation;
* ``insert(key, value) -> OpCost`` — upsert semantics;
* ``delete(key) -> OpCost`` — where supported.

Keys are integers from the universe ``[0, universe_size)``; the type of
``value`` depends on the structure (arbitrary objects for bucket stores,
``sigma``-bit integers for the bit-packed retrieval structures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, Mapping, Optional, Tuple, Union

from repro.pdm.errors import IOFault
from repro.pdm.iostats import OpCost


class CapacityExceeded(Exception):
    """The structure's declared capacity ``N`` (or a bucket/level bound that
    the paper's lemmas keep safe at proper parameters) would be violated."""


class DegradedModeError(Exception):
    """An operation could not complete correctly under injected faults.

    Raised by the degraded-mode paths when the surviving redundancy is no
    longer sufficient to *guarantee* a correct answer — the loud-failure
    contract: a dictionary under faults either answers correctly or raises
    this (or a typed :class:`repro.pdm.errors.IOFault`), never returns a
    silently wrong result.

    ``failures`` carries the per-location faults that pushed the operation
    past its tolerance, so chaos reports can attribute every failed op.
    """

    def __init__(self, message: str, *, key: Optional[int] = None,
                 op: str = "", failures: Any = None):
        super().__init__(message)
        self.key = key
        self.op = op
        self.failures = failures if failures is not None else {}


class DegradedLookupError(DegradedModeError):
    """A lookup lost too many of its redundant probes.

    For the one-probe static dictionary this means more than
    ``floor((ceil(2d/3) - 1) / 2)`` of the key's assigned fields were
    unreadable, so a majority among the surviving fields is no longer
    decisive.  ``membership`` (when not ``None``) preserves what *is* still
    known soundly: ``True``/``False`` if presence could be decided even
    though the value could not be reconstructed.
    """

    def __init__(self, message: str, *, key: Optional[int] = None,
                 op: str = "lookup", failures: Any = None,
                 membership: Optional[bool] = None):
        super().__init__(message, key=key, op=op, failures=failures)
        self.membership = membership


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one lookup."""

    found: bool
    value: Any
    cost: OpCost

    def __bool__(self) -> bool:
        return self.found


def annotate_round_packing(handle, machine, store, per_key_locs) -> None:
    """Record round-packing telemetry on a batch span.

    ``rounds_batched`` is what the batch's block probes cost packed into
    shared parallel rounds; ``rounds_sequential`` what the same probes cost
    issued one key at a time.  ``store`` is any striped store exposing
    ``block_addrs(locs)``.
    """
    if handle.span is None:
        return
    per_key = [store.block_addrs(locs) for locs in per_key_locs]
    batched = machine.plan_rounds([a for addrs in per_key for a in addrs])
    sequential = sum(machine.batch_rounds(addrs) for addrs in per_key)
    handle.annotate(
        rounds_batched=batched.num_rounds,
        rounds_sequential=sequential,
        rounds_saved=sequential - batched.num_rounds,
        blocks_deduplicated=batched.duplicates,
    )


class Dictionary:
    """Abstract dictionary in the parallel disk model."""

    #: size of the key universe U.
    universe_size: int

    def lookup(self, key: int) -> LookupResult:
        raise NotImplementedError

    def insert(self, key: int, value: Any = None) -> OpCost:
        raise NotImplementedError

    def delete(self, key: int) -> OpCost:
        raise NotImplementedError(
            f"{type(self).__name__} does not support deletions directly; "
            f"wrap it in a RebuildingDictionary"
        )

    def contains(self, key: int) -> bool:
        return self.lookup(key).found

    def __contains__(self, key: int) -> bool:
        return self.contains(key)

    # -- dict-like conveniences (each performs real, charged I/O) ------------

    def __getitem__(self, key: int) -> Any:
        result = self.lookup(key)
        if not result.found:
            raise KeyError(key)
        return result.value

    def __setitem__(self, key: int, value: Any) -> None:
        self.insert(key, value)

    def __delitem__(self, key: int) -> None:
        if not self.lookup(key).found:
            raise KeyError(key)
        self.delete(key)

    def get(self, key: int, default: Any = None) -> Any:
        result = self.lookup(key)
        return result.value if result.found else default

    # -- batched operations --------------------------------------------------
    #
    # The contract shared by every implementation (and relied on by
    # ``repro.batch``): duplicate keys collapse (one outcome per distinct
    # key, last value wins for inserts), and *per-key* fault conditions
    # (degraded reads, capacity, surviving I/O faults) surface as exception
    # values in the result map — a batch never raises wholesale for a
    # condition that only poisons some of its keys.  Programming errors
    # (keys outside the universe) still raise eagerly.
    #
    # These base versions simply loop the single-key operations — correct
    # for every structure, with no round savings.  The paper dictionaries
    # override them with round-packed implementations that batch all
    # per-key block probes into shared parallel I/Os.

    #: exception types that are per-key *outcomes* in a batch, not aborts.
    BATCH_KEY_ERRORS = (CapacityExceeded, DegradedModeError, IOFault)

    def batch_lookup(
        self, keys: Iterable[int]
    ) -> Tuple[Dict[int, Union[LookupResult, Exception]], OpCost]:
        out: Dict[int, Union[LookupResult, Exception]] = {}
        total = OpCost.zero()
        for key in dict.fromkeys(keys):
            try:
                result = self.lookup(key)
            except self.BATCH_KEY_ERRORS as exc:
                out[key] = exc
            else:
                out[key] = result
                total = total + result.cost
        return out, total

    def batch_insert(
        self, items: Mapping[int, Any]
    ) -> Tuple[Dict[int, Union[Tuple[bool, Any], Exception]], OpCost]:
        """Insert/upsert many keys; per-key outcome is ``(was_present,
        old_value)`` or a typed exception."""
        out: Dict[int, Union[Tuple[bool, Any], Exception]] = {}
        total = OpCost.zero()
        for key, value in dict(items).items():
            try:
                was_present = self.lookup(key).found
                cost = self.insert(key, value)
            except self.BATCH_KEY_ERRORS as exc:
                out[key] = exc
            else:
                out[key] = (was_present, None)
                total = total + cost
        return out, total

    def batch_delete(
        self, keys: Iterable[int]
    ) -> Tuple[Dict[int, Union[bool, Exception]], OpCost]:
        """Delete many keys; per-key outcome is ``removed`` or a typed
        exception."""
        out: Dict[int, Union[bool, Exception]] = {}
        total = OpCost.zero()
        for key in dict.fromkeys(keys):
            try:
                found = self.lookup(key).found
                cost = self.delete(key) if found else OpCost.zero()
            except self.BATCH_KEY_ERRORS as exc:
                out[key] = exc
            else:
                out[key] = found
                total = total + cost
        return out, total

    def items(self):
        """Iterate ``(key, value)`` pairs.  Keys come from the audit scan;
        each value is fetched with a real (charged) lookup."""
        for key in self.stored_keys():  # type: ignore[attr-defined]
            yield key, self.lookup(key).value

    # -- recovery hooks ------------------------------------------------------
    #
    # The self-healing layer (repro.recovery) asks a registered structure
    # two things: which block ranges it owns (so a rebuild or scrub knows
    # what to walk), and — where redundancy allows — how to reconstruct a
    # single lost block from surviving replicas.  Structures without
    # redundancy return extents only; their blocks survive transient
    # windows (storage is shared with the wrapper) but a permanently
    # failed disk loses them, which the loud-failure contract reports.

    def recovery_extents(self):
        """Owned block ranges as ``(disk, first_block, count)`` triples.
        Base dictionaries own no registered storage."""
        return []

    def reconstruct_block(self, addr):
        """Rebuild one lost block's ``(payload, used_bits)`` from
        redundancy, or ``None`` when this structure cannot (no replicas,
        or the block is outside its extents)."""
        return None

    def reconstruct_round_bound(self):
        """Upper bound on the read rounds one :meth:`reconstruct_block`
        may charge — the recovery monitor's per-block budget term."""
        return 1

    def _check_key(self, key: int) -> None:
        if not isinstance(key, int):
            raise TypeError(f"keys are integers, got {type(key).__name__}")
        if not 0 <= key < self.universe_size:
            raise KeyError(
                f"key {key} outside universe [0, {self.universe_size})"
            )
