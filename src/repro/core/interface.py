"""Common dictionary interface and result types.

All dictionaries in this library (the paper's constructions and the
randomized baselines) expose the same surface so the Figure 1 benchmark can
drive them interchangeably:

* ``lookup(key) -> LookupResult`` — membership plus satellite data plus the
  parallel-I/O cost of this very operation;
* ``insert(key, value) -> OpCost`` — upsert semantics;
* ``delete(key) -> OpCost`` — where supported.

Keys are integers from the universe ``[0, universe_size)``; the type of
``value`` depends on the structure (arbitrary objects for bucket stores,
``sigma``-bit integers for the bit-packed retrieval structures).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Optional

from repro.pdm.iostats import OpCost


class CapacityExceeded(Exception):
    """The structure's declared capacity ``N`` (or a bucket/level bound that
    the paper's lemmas keep safe at proper parameters) would be violated."""


@dataclass(frozen=True)
class LookupResult:
    """Outcome of one lookup."""

    found: bool
    value: Any
    cost: OpCost

    def __bool__(self) -> bool:
        return self.found


class Dictionary:
    """Abstract dictionary in the parallel disk model."""

    #: size of the key universe U.
    universe_size: int

    def lookup(self, key: int) -> LookupResult:
        raise NotImplementedError

    def insert(self, key: int, value: Any = None) -> OpCost:
        raise NotImplementedError

    def delete(self, key: int) -> OpCost:
        raise NotImplementedError(
            f"{type(self).__name__} does not support deletions directly; "
            f"wrap it in a RebuildingDictionary"
        )

    def contains(self, key: int) -> bool:
        return self.lookup(key).found

    def __contains__(self, key: int) -> bool:
        return self.contains(key)

    # -- dict-like conveniences (each performs real, charged I/O) ------------

    def __getitem__(self, key: int) -> Any:
        result = self.lookup(key)
        if not result.found:
            raise KeyError(key)
        return result.value

    def __setitem__(self, key: int, value: Any) -> None:
        self.insert(key, value)

    def __delitem__(self, key: int) -> None:
        if not self.lookup(key).found:
            raise KeyError(key)
        self.delete(key)

    def get(self, key: int, default: Any = None) -> Any:
        result = self.lookup(key)
        return result.value if result.found else default

    def items(self):
        """Iterate ``(key, value)`` pairs.  Keys come from the audit scan;
        each value is fetched with a real (charged) lookup."""
        for key in self.stored_keys():  # type: ignore[attr-defined]
            yield key, self.lookup(key).value

    def _check_key(self, key: int) -> None:
        if not isinstance(key, int):
            raise TypeError(f"keys are integers, got {type(key).__name__}")
        if not 0 <= key < self.universe_size:
            raise KeyError(
                f"key {key} outside universe [0, {self.universe_size})"
            )
