"""User-facing facade: pick a mode, get a dictionary with sane defaults.

``ParallelDiskDictionary`` owns its machine(s) and wires together the
paper's constructions:

* ``mode="basic"`` — §4.1: O(1) worst-case lookups and updates, one-probe
  lookups when ``B = Omega(log N)`` (which the default geometry ensures);
* ``mode="full-bandwidth"`` — §4.3: ``sigma``-bit satellite records,
  unsuccessful searches in 1 I/O, successful in ``1 + ɛ`` average;
* ``unbounded=True`` — wraps the chosen structure in global rebuilding so
  the capacity grows as needed (each generation gets a fresh machine, the
  paper's constant-factor extra disks).

For the static one-probe structure use
:meth:`repro.core.static_dict.StaticDictionary.build` directly — it needs
the full key set up front.
"""

from __future__ import annotations

import math
from typing import Any, Optional

import os

from repro.core.basic_dict import BasicDictionary
from repro.core.dynamic_dict import DynamicDictionary
from repro.core.interface import Dictionary, LookupResult
from repro.core.rebuilding import RebuildingDictionary
from repro.pdm.executors import create_executor
from repro.pdm.executors.base import RoundExecutor
from repro.pdm.iostats import IOStats, OpCost
from repro.pdm.machine import ParallelDiskMachine


class ParallelDiskDictionary(Dictionary):
    """Convenience wrapper with paper-faithful defaults."""

    MODES = ("basic", "full-bandwidth", "one-probe-recursive", "head-model")

    def __init__(
        self,
        *,
        universe_size: int,
        capacity: int = 1024,
        mode: str = "basic",
        sigma: int = 64,
        block_items: int = 64,
        degree: Optional[int] = None,
        unbounded: bool = False,
        seed: int = 0,
        cache_blocks: Optional[int] = None,
        executor: Any = None,
        executor_dir: Optional[str] = None,
        executor_options: Optional[dict] = None,
    ):
        """``executor`` selects the physical backend for every machine the
        facade creates (:mod:`repro.pdm.executors`): ``None`` for the
        in-memory simulator, an executor *name* (``"file"``/``"process"``,
        with per-machine subdirectories of the required ``executor_dir``
        and ``executor_options`` passed through), a zero/one-argument
        *factory* called per machine, or a ready ``RoundExecutor``
        *instance* (single-machine facades only — executors bind once).
        File-backed facades must be :meth:`close`\\ d before their
        directory goes away.
        """
        if mode not in self.MODES:
            raise ValueError(
                f"mode must be one of {self.MODES}, got {mode!r}"
            )
        self.universe_size = universe_size
        self.mode = mode
        self.seed = seed
        #: buffer-pool size in blocks for every machine this facade creates
        #: (``None`` = uncached; see :mod:`repro.pdm.cache`)
        self.cache_blocks = cache_blocks
        # The paper's D = Omega(log u): default degree 2*ceil(log2 u),
        # at least 8.
        if degree is None:
            degree = max(8, 2 * math.ceil(math.log2(max(universe_size, 2))))
        self.degree = degree
        self.block_items = block_items
        self.sigma = sigma
        self._machines = []
        if isinstance(executor, str):
            if executor != "simulated" and executor_dir is None:
                raise ValueError(
                    f"executor {executor!r} needs executor_dir"
                )
        elif executor_dir is not None or executor_options:
            raise ValueError(
                "executor_dir/executor_options only apply when executor "
                "is selected by name"
            )

        def new_executor() -> Optional[RoundExecutor]:
            if executor is None:
                return None
            if isinstance(executor, RoundExecutor):
                return executor  # binds once; rebuilds need a factory
            if isinstance(executor, str):
                if executor == "simulated":
                    return create_executor("simulated")
                # One subdirectory per machine: generations of an
                # unbounded dictionary each get a fresh physical image.
                sub = os.path.join(
                    str(executor_dir), f"m{len(self._machines):03d}"
                )
                return create_executor(
                    executor, directory=sub, **(executor_options or {})
                )
            return executor()  # factory

        def make(cap: int, generation: int) -> Dictionary:
            inner_seed = seed + 1000 * generation
            if mode == "basic":
                machine = ParallelDiskMachine(
                    degree, block_items, cache_blocks=cache_blocks,
                    executor=new_executor(),
                )
                self._machines.append(machine)
                return BasicDictionary(
                    machine,
                    universe_size=universe_size,
                    capacity=cap,
                    degree=degree,
                    seed=inner_seed,
                )
            if mode == "full-bandwidth":
                machine = ParallelDiskMachine(
                    2 * degree, block_items, cache_blocks=cache_blocks,
                    executor=new_executor(),
                )
                self._machines.append(machine)
                return DynamicDictionary(
                    machine,
                    universe_size=universe_size,
                    capacity=cap,
                    sigma=sigma,
                    degree=degree,
                    seed=inner_seed,
                )
            if mode == "one-probe-recursive":
                from repro.core.recursive_dict import (
                    RecursiveLoadBalancedDictionary,
                )

                levels = 2
                machine = ParallelDiskMachine(
                    (levels + 1) * degree, block_items,
                    cache_blocks=cache_blocks,
                    executor=new_executor(),
                )
                self._machines.append(machine)
                return RecursiveLoadBalancedDictionary(
                    machine,
                    universe_size=universe_size,
                    capacity=cap,
                    sigma=sigma,
                    degree=degree,
                    levels=levels,
                    seed=inner_seed,
                )
            # mode == "head-model"
            from repro.core.head_model_dict import HeadModelDictionary
            from repro.pdm.machine import ParallelDiskHeadMachine

            machine = ParallelDiskHeadMachine(
                degree, block_items, cache_blocks=cache_blocks,
                executor=new_executor(),
            )
            self._machines.append(machine)
            return HeadModelDictionary(
                machine,
                universe_size=universe_size,
                capacity=cap,
                degree=degree,
                seed=inner_seed,
            )

        if unbounded:
            self._inner: Dictionary = RebuildingDictionary(
                make, initial_capacity=capacity
            )
        else:
            self._inner = make(capacity, 0)

    # -- delegation -------------------------------------------------------------

    def lookup(self, key: int) -> LookupResult:
        return self._inner.lookup(key)

    def insert(self, key: int, value: Any = None) -> OpCost:
        return self._inner.insert(key, value)

    def delete(self, key: int) -> OpCost:
        return self._inner.delete(key)

    def batch_lookup(self, keys):
        return self._inner.batch_lookup(keys)

    def batch_insert(self, items):
        return self._inner.batch_insert(items)

    def batch_delete(self, keys):
        return self._inner.batch_delete(keys)

    def stored_keys(self):
        return self._inner.stored_keys()  # type: ignore[attr-defined]

    def recovery_extents(self):
        return self._inner.recovery_extents()

    def reconstruct_block(self, addr):
        return self._inner.reconstruct_block(addr)

    def reconstruct_round_bound(self):
        return self._inner.reconstruct_round_bound()

    def __len__(self) -> int:
        return len(self._inner)  # type: ignore[arg-type]

    def close(self) -> None:
        """Close every machine ever created (releasing executor-held
        threads and file descriptors).  A no-op for simulated backends;
        file-backed facades must be closed before their ``executor_dir``
        goes away.  Idempotent."""
        for machine in self._machines:
            machine.close()

    def __enter__(self) -> "ParallelDiskDictionary":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # -- accounting ---------------------------------------------------------------

    def io_stats(self) -> IOStats:
        """Aggregate cumulative I/O over every machine ever created."""
        total = IOStats()
        for machine in self._machines:
            s = machine.stats
            total.read_ios += s.read_ios
            total.write_ios += s.write_ios
            total.blocks_read += s.blocks_read
            total.blocks_written += s.blocks_written
        return total

    @property
    def num_disks(self) -> int:
        return sum(m.num_disks for m in self._machines)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ParallelDiskDictionary(mode={self.mode!r}, n={len(self)}, "
            f"d={self.degree}, disks={self.num_disks})"
        )
