"""Theorem 6's improved construction, run through external sorting.

The paper's ``O(sort(nd))`` procedure, reproduced operation for operation on
the PDM simulator so its I/O cost is *measured*, not asserted:

1. make an array of all pairs ``(y, x)`` for ``x in S``, ``y in Γ(x)``
   (``nd`` records);
2. sort by ``y``; a scan drops every run longer than one element — what
   remains are the *unique neighbor nodes*, each paired with its owner;
3. sort the survivors by ``x``; a scan groups each key with its unique
   neighbors and keeps the keys owning at least ``ceil(2d/3)`` of them;
4. merge-scan the key-sorted input records with the key-sorted assigned
   list, emitting one ``(field, contents)`` record per assigned field into a
   global array ``B`` and writing the unassigned remainder out as the next
   round's input;
5. recurse on the remainder (geometrically smaller), then sort ``B`` by
   field index — "the most expensive operation in the construction
   algorithm" — and fill the array ``A``.

The resulting assignment is *identical* to the in-memory
:func:`repro.core.static_dict.assign_unique_neighbors` (ties are broken the
same way: unique neighbors ascending by stripe), which tests verify.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.static_dict import fields_needed
from repro.expanders.base import StripedExpander
from repro.extsort.analysis import sort_ios_bound
from repro.extsort.array import ExternalRecordArray
from repro.extsort.mergesort import external_merge_sort
from repro.pdm.iostats import OpCost
from repro.pdm.machine import AbstractDiskMachine


@dataclass
class ExternalBuildReport:
    """I/O accounting of the external construction."""

    n: int
    degree: int
    rounds: int
    round_sizes: List[int] = field(default_factory=list)
    overflow: List[int] = field(default_factory=list)
    cost: OpCost = field(default_factory=OpCost)
    #: the sort(nd) yardstick Theorem 6 compares against.
    sort_nd_bound: int = 0

    @property
    def total_ios(self) -> int:
        return self.cost.total_ios

    @property
    def ios_per_sort_bound(self) -> float:
        """Measured I/Os as a multiple of one sort(nd) — Theorem 6 promises
        this stays O(1)."""
        return self.cost.total_ios / self.sort_nd_bound if self.sort_nd_bound else 0.0


def external_assignment(
    machine: AbstractDiskMachine,
    graph: StripedExpander,
    keys: Sequence[int],
    *,
    m_need: Optional[int] = None,
    max_rounds: int = 64,
    memory_records: Optional[int] = None,
) -> Tuple[Dict[int, Tuple[int, ...]], ExternalBuildReport]:
    """Run steps 1–5 of the construction (without the final field fill,
    which depends on the field layout of the particular case) and return
    ``key -> assigned stripes`` plus the I/O report.
    """
    d = graph.degree
    if m_need is None:
        m_need = fields_needed(d)
    key_bits = max(1, math.ceil(math.log2(max(graph.left_size, 2))))
    y_bits = max(1, math.ceil(math.log2(max(graph.right_size, 2))))
    pair_bits = y_bits + key_bits
    n = len(keys)
    snap = machine.stats.snapshot()

    # Round 0 input: the key set, sorted externally by key (also the order
    # that defines identifiers for case (b)).
    current = ExternalRecordArray(machine, record_bits=key_bits, name="keys")
    current.extend(keys)
    current.flush()
    current, _ = external_merge_sort(
        machine, current, memory_records=memory_records
    )

    assignment: Dict[int, Tuple[int, ...]] = {}
    round_sizes: List[int] = []
    rounds = 0
    while len(current) > 0 and rounds < max_rounds:
        # Step 1: all (y, x) pairs.
        pairs = ExternalRecordArray(
            machine, record_bits=pair_bits, name=f"pairs{rounds}"
        )
        for x in current.scan():
            for y in graph.neighbors(x):
                pairs.append((y, x))
        pairs.flush()

        # Step 2: sort by y, keep singleton runs (the unique neighbors).
        pairs_sorted, _ = external_merge_sort(
            machine, pairs, memory_records=memory_records
        )
        uniq = ExternalRecordArray(
            machine, record_bits=pair_bits, name=f"uniq{rounds}"
        )
        run: List[Tuple[int, int]] = []
        for rec in pairs_sorted.scan():
            if run and rec[0] != run[0][0]:
                if len(run) == 1:
                    uniq.append((run[0][1], run[0][0]))  # (x, y)
                run = []
            run.append(rec)
        if len(run) == 1:
            uniq.append((run[0][1], run[0][0]))
        uniq.flush()

        # Step 3: sort by x; keep keys with >= m_need unique neighbors.
        uniq_sorted, _ = external_merge_sort(
            machine, uniq, memory_records=memory_records
        )
        assigned_round: Dict[int, Tuple[int, ...]] = {}
        group_key: Optional[int] = None
        group_ys: List[int] = []

        def close_group() -> None:
            if group_key is not None and len(group_ys) >= m_need:
                stripes = tuple(
                    sorted(y // graph.stripe_size for y in group_ys)[:m_need]
                )
                assigned_round[group_key] = stripes

        for (x, y) in uniq_sorted.scan():
            if x != group_key:
                close_group()
                group_key = x
                group_ys = []
            group_ys.append(y)
        close_group()

        if not assigned_round:
            break

        # Step 4: merge-scan the sorted input against the assigned keys,
        # splitting into "done" (recorded in `assignment`) and the next
        # round's input.  Both streams are key-sorted, so one pass suffices.
        remainder = ExternalRecordArray(
            machine, record_bits=key_bits, name=f"rest{rounds}"
        )
        for x in current.scan():
            if x in assigned_round:
                assignment[x] = assigned_round[x]
            else:
                remainder.append(x)
        remainder.flush()
        round_sizes.append(len(assigned_round))
        current = remainder
        rounds += 1

    overflow = list(current.scan())
    report = ExternalBuildReport(
        n=n,
        degree=d,
        rounds=rounds,
        round_sizes=round_sizes,
        overflow=overflow,
        cost=machine.stats.since(snap),
        sort_nd_bound=sort_ios_bound(
            n * d,
            max(1, machine.block_bits // pair_bits),
            machine.num_disks,
            (memory_records or 4 * machine.num_disks
             * max(1, machine.block_bits // pair_bits)),
        ),
    )
    return assignment, report


def fill_fields_external(
    machine: AbstractDiskMachine,
    array,
    contents: Mapping[Tuple[int, int], object],
    *,
    field_record_bits: int,
    memory_records: Optional[int] = None,
) -> OpCost:
    """Step 5: route ``(field location, contents)`` records through the
    global array ``B``, sort by location, and fill ``A`` — charging the sort
    and the batched fill."""
    snap = machine.stats.snapshot()
    b_array = ExternalRecordArray(
        machine, record_bits=field_record_bits, name="B"
    )
    for loc, value in contents.items():
        b_array.append((loc, value))
    b_array.flush()
    b_sorted, _ = external_merge_sort(
        machine, b_array, key=lambda rec: rec[0], memory_records=memory_records
    )
    array.write_fields({loc: value for (loc, value) in b_sorted.scan()})
    return machine.stats.since(snap)
