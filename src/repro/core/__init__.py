"""The paper's contribution: deterministic load balancing and dictionaries.

* :mod:`~repro.core.load_balancer` — the Section 3 greedy ``d``-choice
  scheme with the Lemma 3 max-load bound.
* :mod:`~repro.core.basic_dict` — §4.1: O(1) worst-case dictionary,
  one-probe lookups for ``B = Omega(log N)``, satellite ``k = d/2`` variant.
* :mod:`~repro.core.static_dict` — §4.2 / Theorem 6: one-probe static
  dictionary, cases (a) and (b), unique-neighbor assignment.
* :mod:`~repro.core.static_construction` — the Theorem 6 construction run
  through external sorting (cost ``O(sort(nd))``).
* :mod:`~repro.core.dynamic_dict` — §4.3 / Theorem 7: full bandwidth at
  ``1 + ɛ`` average lookup I/Os.
* :mod:`~repro.core.rebuilding` — global rebuilding for unbounded size and
  deletions.
* :mod:`~repro.core.facade` — ``ParallelDiskDictionary`` with sane defaults.
"""

from repro.core.interface import (
    CapacityExceeded,
    Dictionary,
    LookupResult,
)
from repro.core.load_balancer import (
    DChoiceLoadBalancer,
    PlacementReport,
    lemma3_bound,
)
from repro.core.basic_dict import BasicDictionary
from repro.core.static_dict import (
    AssignmentResult,
    StaticBuildReport,
    StaticDictionary,
    assign_unique_neighbors,
    fields_needed,
)
from repro.core.dynamic_dict import DynamicDictionary, OperationStats
from repro.core.rebuilding import RebuildingDictionary, RebuildStats
from repro.core.facade import ParallelDiskDictionary
from repro.core.multi_instance import MultiInstanceDictionary
from repro.core.recursive_dict import RecursiveLoadBalancedDictionary
from repro.core.head_model_dict import HeadModelDictionary
from repro.core.pointer_store import PointerStore

__all__ = [
    "CapacityExceeded",
    "Dictionary",
    "LookupResult",
    "DChoiceLoadBalancer",
    "PlacementReport",
    "lemma3_bound",
    "BasicDictionary",
    "AssignmentResult",
    "StaticBuildReport",
    "StaticDictionary",
    "assign_unique_neighbors",
    "fields_needed",
    "DynamicDictionary",
    "OperationStats",
    "RebuildingDictionary",
    "RebuildStats",
    "ParallelDiskDictionary",
    "MultiInstanceDictionary",
    "RecursiveLoadBalancedDictionary",
    "HeadModelDictionary",
    "PointerStore",
]
