"""Parameter advisor: from requirements to a concrete configuration.

Given the quantities a user actually knows — universe size, expected keys,
record size, block capacity — suggest a machine geometry and structure
parameters, with the paper's predicted per-operation costs attached
(:mod:`repro.bounds`).  The facade uses simpler defaults; this is
the "capacity planning" front door for users sizing a deployment.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

import repro.bounds as bounds


@dataclass(frozen=True)
class Suggestion:
    """A concrete configuration plus its predicted behaviour."""

    mode: str
    disks: int
    degree: int
    block_items: int
    sigma: Optional[int]
    predicted_lookup_avg: float
    predicted_lookup_worst: float
    predicted_update_avg: float
    space_blocks_estimate: int
    notes: str

    def summary(self) -> str:
        lines = [
            f"mode={self.mode}  D={self.disks} disks  d={self.degree}  "
            f"B={self.block_items} items",
            f"predicted lookup: avg {self.predicted_lookup_avg:.3f}, "
            f"worst {self.predicted_lookup_worst:.0f} parallel I/Os",
            f"predicted update: avg {self.predicted_update_avg:.3f}",
            f"estimated footprint: ~{self.space_blocks_estimate} blocks",
        ]
        if self.notes:
            lines.append(self.notes)
        return "\n".join(lines)


def suggest(
    *,
    universe_size: int,
    capacity: int,
    block_items: int = 64,
    sigma: Optional[int] = None,
    item_bits: int = 64,
    level_ratio: float = 0.25,
) -> Suggestion:
    """Pick a structure for the given requirements.

    * no satellite data (``sigma=None``) or records fitting one item →
      the §4.1 dictionary on ``d`` disks: 1/2 I/Os worst case;
    * records up to a modest multiple of the block → §4.3 on ``2d`` disks:
      1 + ɛ average, full bandwidth;
    * records beyond ``B*D`` bits in-line → §4.1 + pointer indirection
      (lookup + 1).
    """
    if universe_size <= 1 or capacity <= 0:
        raise ValueError("universe_size > 1 and capacity > 0 required")
    degree = max(8, 2 * math.ceil(math.log2(universe_size)))
    block_bits = block_items * item_bits

    if sigma is None or sigma <= item_bits:
        buckets = max(degree, math.ceil(2 * capacity / block_items))
        return Suggestion(
            mode="basic",
            disks=degree,
            degree=degree,
            block_items=block_items,
            sigma=sigma,
            predicted_lookup_avg=1.0,
            predicted_lookup_worst=1.0,
            predicted_update_avg=2.0,
            space_blocks_estimate=buckets,
            notes="S4.1: worst-case constants, one-probe lookups.",
        )

    inline_limit = degree * block_bits // 4  # comfortable S4.3 territory
    if sigma <= inline_limit:
        avg = bounds.theorem7_avg_reads(level_ratio)
        levels = bounds.theorem7_num_levels(capacity, level_ratio / 6)
        field_bits = bounds.theorem6_case_a_field_bits(sigma, degree)
        fields = 4 * capacity * degree  # slack-4 arrays, level 1 dominates
        blocks = math.ceil(fields * field_bits / block_bits * 1.4)
        return Suggestion(
            mode="full-bandwidth",
            disks=2 * degree,
            degree=degree,
            block_items=block_items,
            sigma=sigma,
            predicted_lookup_avg=avg,
            predicted_lookup_worst=1 + levels,
            predicted_update_avg=1 + avg,
            space_blocks_estimate=blocks,
            notes=(
                f"S4.3: {levels} levels, misses always 1 I/O, records "
                f"in-line."
            ),
        )

    payload_blocks = capacity * degree  # one superblock per record
    return Suggestion(
        mode="pointer-store",
        disks=2 * degree,
        degree=degree,
        block_items=block_items,
        sigma=sigma,
        predicted_lookup_avg=2.0,
        predicted_lookup_worst=2.0,
        predicted_update_avg=3.0,
        space_blocks_estimate=payload_blocks,
        notes=(
            "records exceed in-line bandwidth: S4.1 index + pointer "
            "indirection (Section 1.1), payload fetched in one extra I/O."
        ),
    )
