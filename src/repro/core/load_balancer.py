"""Deterministic ``d``-choice load balancing over an expander (Section 3).

An unknown set of ``n`` left vertices arrives on-line, each carrying ``k``
items; every item must be assigned to one of the vertex's ``d`` neighboring
buckets.  The greedy strategy — place each item in a currently least-loaded
neighbor, ties broken arbitrarily (we break them by lowest bucket id, making
the scheme fully deterministic) — achieves, by Lemma 3, maximum load

    kn / ((1 - delta) v)  +  log_{(1 - eps) d / k} (v)

on a ``(d, eps, delta)``-expander with ``d > k``.  The scheme *may* place
several of a vertex's items in the same bucket.

This is the deterministic analogue of the "balanced allocations" results
[2, 3], where the random 2-choice graph gives average + O(log log n) whp;
here the fixed expander gives average + O(log v) *always*.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.expanders.base import Expander


def lemma3_bound(
    *, n: int, v: int, k: int, d: int, eps: float, delta: float
) -> float:
    """The Lemma 3 maximum-load bound.

    Requires ``(1 - eps) d / k > 1`` (the expansion must beat the per-vertex
    item count for the overfull-bucket counting to contract).
    """
    if n < 0 or v <= 0 or k <= 0 or d <= 0:
        raise ValueError("n, v, k, d must be positive (n may be 0)")
    base = (1 - eps) * d / k
    if base <= 1:
        raise ValueError(
            f"Lemma 3 needs (1 - eps) d / k > 1, got {base:.3f} "
            f"(d={d}, k={k}, eps={eps})"
        )
    mu = k * n / ((1 - delta) * v)
    return mu + math.log(v, base)


@dataclass(frozen=True)
class PlacementReport:
    """Summary of a finished placement run."""

    n_vertices: int
    items_placed: int
    max_load: int
    avg_load: float
    bound: float | None


class DChoiceLoadBalancer:
    """The greedy on-line scheme of Section 3.

    Pure in-memory combinatorics: the dictionary structures embed the same
    rule into their bucket probes (reading loads costs their I/O); this class
    exists to study the load distribution itself at scale (Lemma 3 bench).
    """

    def __init__(self, graph: Expander, *, k: int = 1):
        if k <= 0:
            raise ValueError(f"k must be positive, got {k}")
        if k >= graph.degree:
            raise ValueError(
                f"Lemma 3 requires d > k, got d={graph.degree}, k={k}"
            )
        self.graph = graph
        self.k = k
        self.loads = np.zeros(graph.right_size, dtype=np.int64)
        self.placements: Dict[int, Tuple[int, ...]] = {}  # detlint: guarded(owner-lane) -- balancer is confined to its structure's executor lane

    @property
    def n_vertices(self) -> int:
        return len(self.placements)

    @property
    def items_placed(self) -> int:
        return self.k * len(self.placements)

    def place(self, x: int) -> Tuple[int, ...]:
        """Assign the ``k`` items of vertex ``x``; returns the chosen bucket
        ids (repeats allowed).  Re-placing a vertex is an error: the scheme
        is on-line over a *set*."""
        if x in self.placements:
            raise ValueError(f"vertex {x} was already placed")
        neigh = np.fromiter(
            self.graph.neighbors(x), dtype=np.int64, count=self.graph.degree
        )
        chosen: List[int] = []
        local = self.loads[neigh]
        for _ in range(self.k):
            # Least-loaded neighbor; ties to the lowest bucket id (np.argmin
            # picks the first minimum, and `neigh` is in stripe order).
            pick = int(np.argmin(local))
            chosen.append(int(neigh[pick]))
            local[pick] += 1
        for b in chosen:
            self.loads[b] += 1
        out = tuple(chosen)
        self.placements[x] = out
        return out

    def place_all(self, xs: Sequence[int]) -> PlacementReport:
        for x in xs:
            self.place(x)
        return self.report()

    @property
    def max_load(self) -> int:
        return int(self.loads.max()) if len(self.loads) else 0

    def report(
        self, *, eps: float | None = None, delta: float | None = None
    ) -> PlacementReport:
        bound = None
        if eps is not None and delta is not None:
            bound = lemma3_bound(
                n=self.n_vertices,
                v=self.graph.right_size,
                k=self.k,
                d=self.graph.degree,
                eps=eps,
                delta=delta,
            )
        return PlacementReport(
            n_vertices=self.n_vertices,
            items_placed=self.items_placed,
            max_load=self.max_load,
            avg_load=(
                self.items_placed / self.graph.right_size
                if self.graph.right_size
                else 0.0
            ),
            bound=bound,
        )

    def load_histogram(self) -> Dict[int, int]:
        """Map load value -> number of buckets with that load."""
        values, counts = np.unique(self.loads, return_counts=True)
        return {int(val): int(cnt) for val, cnt in zip(values, counts)}

    def load_profile(self) -> Dict[str, object]:
        """Deterministic telemetry snapshot for the observability layer:
        the :class:`PlacementReport` numbers plus the full load
        distribution — the lens the balanced-allocation literature uses to
        compare schemes (max, average, gap, histogram)."""
        report = self.report()
        return {
            "n_vertices": report.n_vertices,
            "items_placed": report.items_placed,
            "num_buckets": self.graph.right_size,
            "max_load": report.max_load,
            "avg_load": report.avg_load,
            "gap": report.max_load - report.avg_load,
            "histogram": self.load_histogram(),
        }
