"""Parallel instances (Section 4, dynamization observations).

"We can make any constant number of parallel instances of our dictionaries.
This allows insertions of a constant number of elements in the same number
of parallel I/Os as one insertion, and does not influence lookup time.  The
amount of space used and the number of disks increase by a constant factor
compared to the basic structure."

:class:`MultiInstanceDictionary` keeps ``c`` capacity-bounded instances on
``c`` disjoint disk groups (their own machines).  A batch of up to ``c``
*new* insertions is routed one-per-instance and executed simultaneously, so
the batch costs ``max`` over instances — the I/Os of a single insertion,
exactly the paper's claim.  A lookup probes every instance simultaneously
(same disjoint disk groups), so lookup time is one instance's cost.

The paper's setting is insertions into a *set* (upserts are handled by
global rebuilding, not here), so a batch must consist of keys not already
stored.  The wrapper keeps a host-side guard set to catch violations of
that contract loudly; the guard is bookkeeping of the *caller's promise*,
never consulted to answer queries, and therefore charged no I/O.  Callers
who cannot promise freshness use ``insert`` (single upsert: one parallel
probe phase plus the instance's insert).
"""

from __future__ import annotations

from typing import Any, Callable, Iterator, List, Sequence, Set, Tuple

from repro.core.interface import Dictionary, LookupResult
from repro.pdm.iostats import OpCost

#: builds instance ``i`` of ``c`` (on its own machine / disk group).
InstanceFactory = Callable[[int], Dictionary]


class MultiInstanceDictionary(Dictionary):
    """``c`` parallel instances, queried simultaneously."""

    def __init__(self, factory: InstanceFactory, *, instances: int = 2):
        if instances < 1:
            raise ValueError(f"need at least one instance, got {instances}")
        self.instances: List[Dictionary] = [
            factory(i) for i in range(instances)
        ]
        self.universe_size = self.instances[0].universe_size
        if any(
            inst.universe_size != self.universe_size for inst in self.instances
        ):
            raise ValueError("instances must share one universe")
        self._guard: Set[int] = set()  # detlint: guarded(owner-lane) -- reentrancy guard; one batch runs per wrapper at a time

    @property
    def c(self) -> int:
        return len(self.instances)

    # -- operations ---------------------------------------------------------------

    def lookup(self, key: int) -> LookupResult:
        results = [inst.lookup(key) for inst in self.instances]
        cost = OpCost.parallel(*(r.cost for r in results))
        for r in results:
            if r.found:
                return LookupResult(True, r.value, cost)
        return LookupResult(False, None, cost)

    def insert_batch(self, items: Sequence[Tuple[int, Any]]) -> OpCost:
        """Insert up to ``c`` NEW elements in the parallel I/Os of one
        insert: each element goes to a distinct (least-loaded) instance and
        the per-instance inserts run simultaneously."""
        if len(items) > self.c:
            raise ValueError(
                f"a batch of {len(items)} exceeds the {self.c} parallel "
                f"instances; split it"
            )
        keys = [k for k, _ in items]
        if len(set(keys)) != len(keys):
            raise ValueError("duplicate keys in one batch")
        stale = [k for k in keys if k in self._guard]
        if stale:
            raise ValueError(
                f"batch inserts require new keys (the paper's set "
                f"semantics); already present: {stale[:5]}"
            )
        # Route to the c least-loaded instances, one element each.
        order = sorted(self.instances, key=lambda inst: len(inst))  # type: ignore[arg-type]
        costs = []
        for (key, value), inst in zip(items, order):
            costs.append(inst.insert(key, value))
            self._guard.add(key)
        return OpCost.parallel(*costs)

    def insert(self, key: int, value: Any = None) -> OpCost:
        """Single upsert: a parallel probe locates the owner (1 I/O-ish),
        then that instance's insert runs (its usual cost)."""
        results = [inst.lookup(key) for inst in self.instances]
        probe = OpCost.parallel(*(r.cost for r in results))
        owner = next(
            (inst for inst, r in zip(self.instances, results) if r.found),
            None,
        )
        if owner is None:
            owner = min(self.instances, key=lambda inst: len(inst))  # type: ignore[arg-type]
        cost = owner.insert(key, value)
        self._guard.add(key)
        return probe + cost

    def delete(self, key: int) -> OpCost:
        costs = [inst.delete(key) for inst in self.instances]
        self._guard.discard(key)
        return OpCost.parallel(*costs)

    # -- audits ----------------------------------------------------------------------

    def stored_keys(self) -> Iterator[int]:
        for inst in self.instances:
            yield from inst.stored_keys()  # type: ignore[attr-defined]

    def __len__(self) -> int:
        return sum(len(inst) for inst in self.instances)  # type: ignore[arg-type]
