"""Theorem 9 stand-in: certified base expanders found in preprocessing.

Theorem 9 (Capalbo et al. [6]) supplies slightly-unbalanced ``(N, eps)``-
expanders whose neighbor function is computable from ``s = poly(u/v, 1/eps)``
bits of advice, where the advice "can be found probabilistically in time
poly(s)".  We reproduce exactly that interface:

* :func:`find_base_expander` samples random left-regular graphs and
  *certifies* each candidate (exact subset enumeration when feasible, dense
  sampling otherwise) until one passes — the probabilistic preprocessing;
* the result is a :class:`TabulatedExpander` whose neighbor table lives in
  internal memory with its word count charged to the machine's
  :class:`~repro.pdm.memory.InternalMemory`, so the space claims of
  Corollary 1 / Theorem 12 are measurable.

The table has ``u * d`` entries; for the slightly-unbalanced bases of the
telescope product (``u / v = u^{beta/c}`` small) this matches the spirit of
Theorem 9's ``poly(u/v, 1/eps)`` advice at our simulation scales.
"""

from __future__ import annotations

import math
import random
from typing import List, Optional, Tuple

from repro.expanders.base import Expander
from repro.expanders.verify import (
    verify_expansion_exact,
    verify_expansion_sampled,
)
from repro.pdm import InternalMemory


class TabulatedExpander(Expander):
    """An expander stored as an explicit neighbor table in internal memory."""

    def __init__(
        self,
        table: List[Tuple[int, ...]],
        right_size: int,
        *,
        memory: Optional[InternalMemory] = None,
    ):
        if not table:
            raise ValueError("empty neighbor table")
        degree = len(table[0])
        if any(len(row) != degree for row in table):
            raise ValueError("ragged neighbor table")
        for row in table:
            for y in row:
                if not 0 <= y < right_size:
                    raise ValueError(
                        f"neighbor {y} out of range [0, {right_size})"
                    )
        self.left_size = len(table)
        self.degree = degree
        self.right_size = right_size
        self._table = [tuple(row) for row in table]
        self._memory = memory
        if memory is not None:
            memory.charge(self.memory_words)

    @property
    def memory_words(self) -> int:
        """Advice size in words: one word per table entry."""
        return self.left_size * self.degree

    def neighbors(self, x: int) -> Tuple[int, ...]:
        self._check_left(x)
        return self._table[x]

    def release(self) -> None:
        """Return the advice space to the internal-memory accountant."""
        if self._memory is not None:
            self._memory.release(self.memory_words)
            self._memory = None


def _random_table(
    u: int, v: int, d: int, rng: random.Random
) -> List[Tuple[int, ...]]:
    return [tuple(rng.randrange(v) for _ in range(d)) for _ in range(u)]


def find_base_expander(
    *,
    u: int,
    v: int,
    d: int,
    N: int,
    eps: float,
    seed: int = 0,
    max_attempts: int = 64,
    memory: Optional[InternalMemory] = None,
    exact_limit: int = 200_000,
    sample_trials: int = 4000,
) -> TabulatedExpander:
    """Probabilistic preprocessing: sample graphs until one certifies as an
    ``(N, eps)``-expander; return it as a tabulated (fully explicit) object.

    Certification is exact when the subset count ``sum C(u, s)`` is within
    ``exact_limit``; otherwise a dense Monte-Carlo check is used (a sampled
    pass mirrors Theorem 9's "found probabilistically" preprocessing, which
    likewise only succeeds with high probability).
    """
    subset_count = sum(math.comb(u, s) for s in range(1, min(N, u) + 1))
    rng = random.Random(seed)
    for attempt in range(max_attempts):
        table = _random_table(u, v, d, rng)
        candidate = TabulatedExpander(table, v)
        if subset_count <= exact_limit:
            report = verify_expansion_exact(candidate, N, eps)
        else:
            report = verify_expansion_sampled(
                candidate, N, eps, trials=sample_trials, seed=seed + attempt
            )
        if report.is_expander:
            return TabulatedExpander(table, v, memory=memory)
    raise RuntimeError(
        f"no (N={N}, eps={eps})-expander found in {max_attempts} samples for "
        f"u={u}, v={v}, d={d}; the parameters are likely infeasible "
        f"(try a larger degree or a larger right part)"
    )
