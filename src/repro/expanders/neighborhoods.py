"""Per-dictionary neighborhood memoization, charged to internal memory.

Every dictionary operation begins by evaluating ``Γ(key)`` — ``degree``
splitmix64 mixes per key on the seeded expanders.  The paper's model makes
this free ("access to certain expander graphs for free"), and the PDM
grants ``M`` words of internal memory; :class:`NeighborhoodMemo` spends
some of that memory to make repeated evaluations *actually* free at the
wall clock: the local bucket indices of each evaluated key land in a flat
``array('I')`` (``degree`` unsigned ints per key, plus the key's offset —
``degree + 1`` words, charged against the machine's
:class:`~repro.pdm.memory.InternalMemory`), and the hot path returns the
memoized ``(stripe, index)`` tuple without re-mixing.

Honesty rules:

* the charge is per *memoized key*, taken when the key is first seen and
  released when the memo resets — the memo never uses memory the model
  did not grant;
* when a charge would exceed ``M`` the memo freezes (stops memoizing)
  instead of raising: memoization is an optimisation, never a
  correctness requirement, so the dictionary keeps working at the
  uncached speed;
* at ``max_keys`` the memo resets wholesale (deterministically — no
  clocks, no randomness), matching the seeded expanders' own overflow
  policy.
"""

from __future__ import annotations

from array import array
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.expanders.base import StripedExpander
from repro.pdm import InternalMemory, InternalMemoryExceeded

#: default memo bound when internal memory is unbounded (matches the
#: seeded expanders' own neighbor-cache bound)
DEFAULT_MAX_KEYS = 1 << 16


class NeighborhoodMemo:
    """Memoized ``striped_neighbors`` for one dictionary's expander."""

    __slots__ = (
        "graph",
        "degree",
        "memory",
        "max_keys",
        "words_per_key",
        "hits",
        "misses",
        "resets",
        "_tuples",
        "_offsets",
        "_flat",
        "_charged_words",
        "_frozen",
    )

    def __init__(
        self,
        graph: StripedExpander,
        *,
        memory: Optional[InternalMemory] = None,
        max_keys: Optional[int] = None,
    ) -> None:
        self.graph = graph
        self.degree = graph.degree
        self.memory = memory
        self.words_per_key = self.degree + 1
        if max_keys is None:
            max_keys = DEFAULT_MAX_KEYS
            if memory is not None and memory.capacity_words is not None:
                free = memory.capacity_words - memory.used_words
                max_keys = min(max_keys, free // self.words_per_key)
        self.max_keys = max(0, max_keys)
        self.hits = 0
        self.misses = 0
        self.resets = 0
        #: key -> the exact tuple the expander returned (hot-path store)
        self._tuples: Dict[int, Tuple[Tuple[int, int], ...]] = {}  # detlint: guarded(owner-lane) -- memo + memory charge must stay single-writer; see docs/static_analysis.md
        #: key -> offset of its ``degree`` local indices in ``_flat``
        self._offsets: Dict[int, int] = {}  # detlint: guarded(owner-lane) -- indexes _flat; consistent only under the same single writer
        #: flat local-index store — ``degree`` entries per memoized key, in
        #: memoization order; the array-shaped view batch planners consume
        self._flat = array("I")  # detlint: guarded(owner-lane) -- append-only under the owner; readers see a prefix
        self._charged_words = 0
        self._frozen = self.max_keys == 0

    def __len__(self) -> int:
        return len(self._tuples)

    @property
    def charged_words(self) -> int:
        return self._charged_words

    @property
    def frozen(self) -> bool:
        """True when internal memory is exhausted and memoization stopped."""
        return self._frozen

    def striped(self, key: int) -> Tuple[Tuple[int, int], ...]:
        """``graph.striped_neighbors(key)``, memoized."""
        t = self._tuples.get(key)
        if t is not None:
            self.hits += 1
            return t
        self.misses += 1
        t = self.graph.striped_neighbors(key)
        self._memoize(key, t)
        return t

    def local_indices(self, key: int) -> array:
        """The ``degree`` local (per-stripe) bucket indices of ``key`` as a
        flat ``array('I')`` slice — computed and memoized on demand."""
        off = self._offsets.get(key)
        if off is None:
            self.striped(key)
            off = self._offsets.get(key)
            if off is None:  # frozen memo: build the array transiently
                return array(
                    "I", (j for _, j in self.graph.striped_neighbors(key))
                )
        return self._flat[off : off + self.degree]

    # -- batch evaluation --------------------------------------------------
    #
    # The batch forms are *replays* of the scalar loop against live memo
    # state: misses are pre-evaluated in one (kernel-accelerated) graph
    # call, but hits, counters, memory charges, freezes and the wholesale
    # reset all happen key by key exactly as a sequence of scalar calls
    # would.  A reset mid-batch can turn a pre-classified hit into a miss;
    # the replay honors that (the rare re-miss falls back to one scalar
    # graph evaluation), so memo state after a batch is indistinguishable
    # from the sequential path.

    def batch_striped(
        self, keys: Sequence[int], kernel=None
    ) -> Dict[int, Tuple[Tuple[int, int], ...]]:
        """:meth:`striped` for many keys — ``{key: striped(key)}`` with
        one batched graph evaluation for the misses."""
        tuples = self._tuples
        missing = [x for x in keys if x not in tuples]
        evaluated = (
            self.graph.batch_striped(missing, kernel=kernel)
            if missing
            else {}
        )
        out: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        for key in keys:
            t = tuples.get(key)
            if t is not None:
                self.hits += 1
                out[key] = t
                continue
            self.misses += 1
            t = evaluated.get(key)
            if t is None:  # re-miss after a mid-batch reset
                t = self.graph.striped_neighbors(key)
            self._memoize(key, t)
            out[key] = t
        return out

    def batch_local_indices(self, keys: Sequence[int], kernel=None) -> array:
        """The local bucket indices of many keys as one flat ``array('I')``
        (``degree`` entries per key, key-major — the :attr:`_flat` layout).

        Counter/charge/freeze parity with sequential :meth:`striped` calls;
        frozen memos compute transient chunks without memoizing."""
        d = self.degree
        offsets = self._offsets
        missing = [x for x in keys if x not in offsets]
        if missing:
            flat_missing = self.graph.batch_local_indices(
                missing, kernel=kernel
            )
            mpos = {x: i for i, x in enumerate(missing)}
        else:
            flat_missing = None
            mpos = {}
        out = array("I")
        flat = self._flat
        for key in keys:
            off = offsets.get(key)
            if off is not None:
                self.hits += 1
                out.extend(flat[off : off + d])
                continue
            self.misses += 1
            i = mpos.get(key)
            if i is None:  # re-miss after a mid-batch reset
                chunk = array(
                    "I", (j for _, j in self.graph.striped_neighbors(key))
                )
            else:
                chunk = flat_missing[i * d : (i + 1) * d]
            out.extend(chunk)
            self._memoize(key, tuple(enumerate(chunk)))
        return out

    def precompute(self, keys: Iterable[int]) -> int:
        """Memoize a key set up front (bulk build / bench warm-up);
        returns how many keys are memoized afterwards."""
        for key in keys:
            self.striped(key)
        return len(self._tuples)

    def _memoize(self, key: int, t: Tuple[Tuple[int, int], ...]) -> None:
        if self._frozen:
            return
        if len(self._tuples) >= self.max_keys:
            self.reset()
        if self.memory is not None:
            try:
                self.memory.charge(self.words_per_key)
            except InternalMemoryExceeded:
                # The model's M is spoken for elsewhere (buffer pool,
                # hash descriptions): stop memoizing, stay correct.
                self._frozen = True
                return
            self._charged_words += self.words_per_key
        self._offsets[key] = len(self._flat)
        self._flat.extend(j for _, j in t)
        self._tuples[key] = t

    def reset(self) -> None:
        """Deterministic wholesale reset; releases every charged word."""
        self._tuples.clear()
        self._offsets.clear()
        del self._flat[:]
        if self.memory is not None and self._charged_words:
            self.memory.release(self._charged_words)
        self._charged_words = 0
        self.resets += 1
        self._frozen = self.max_keys == 0

    def stats(self) -> Dict[str, int]:
        return {
            "keys": len(self._tuples),
            "hits": self.hits,
            "misses": self.misses,
            "resets": self.resets,
            "charged_words": self._charged_words,
            "frozen": int(self._frozen),
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"NeighborhoodMemo({len(self._tuples)}/{self.max_keys} keys, "
            f"d={self.degree}, hits={self.hits}, misses={self.misses})"
        )
