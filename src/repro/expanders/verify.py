"""Expansion verification and the unique-neighbor quantities of Section 4.2.

The dictionary proofs never use expansion directly; they use derived
quantities:

* ``Γ(S)`` — the neighbor set (Definition 1/2);
* ``Φ(S)`` — the *unique neighbor* nodes: right vertices adjacent to exactly
  one element of ``S`` (Lemma 4: ``|Φ(S)| >= (1 - 2 eps) d |S|``);
* ``S'`` — the keys owning at least ``(1 - lambda) d`` unique neighbors
  (Lemma 5: ``|S'| >= (1 - 2 eps / lambda) |S|``).

This module computes all three exactly for concrete graphs and sets, plus
exact (subset-enumerating) and sampled expansion certification, so tests and
benchmarks can compare the lemma bounds against measured values on the
seeded graphs the dictionaries actually run on.
"""

from __future__ import annotations

import itertools
import math
import random
from collections import Counter
from dataclasses import dataclass
from typing import Iterable, List, Sequence, Set, Tuple

from repro.expanders.base import Expander


def neighbor_set(graph: Expander, S: Iterable[int]) -> Set[int]:
    """``Γ(S)`` as a set of flat right-vertex ids."""
    out: Set[int] = set()
    for x in S:
        out.update(graph.neighbors(x))
    return out


def unique_neighbor_set(graph: Expander, S: Iterable[int]) -> Set[int]:
    """``Φ(S)``: right vertices with exactly one neighbor in ``S``.

    A vertex reached twice *by the same key* (a multi-edge) still counts as
    unique to that key — uniqueness is about ownership, which is what the
    assignment procedure of Theorem 6 needs.
    """
    owner_count: Counter = Counter()
    for x in S:
        for y in dict.fromkeys(graph.neighbors(x)):
            owner_count[y] += 1
    return {y for y, c in owner_count.items() if c == 1}


def unique_neighbors_of(
    graph: Expander, x: int, phi: Set[int]
) -> Tuple[int, ...]:
    """The members of ``Γ(x)`` that lie in ``Φ(S)`` (given precomputed Φ)."""
    return tuple(y for y in dict.fromkeys(graph.neighbors(x)) if y in phi)


def well_assignable_subset(
    graph: Expander, S: Sequence[int], lam: float
) -> List[int]:
    """Lemma 5's ``S' = { x in S : |Γ(x) ∩ Φ(S)| >= (1 - lam) d }``."""
    phi = unique_neighbor_set(graph, S)
    threshold = (1 - lam) * graph.degree
    out = []
    for x in S:
        count = sum(1 for y in dict.fromkeys(graph.neighbors(x)) if y in phi)
        if count >= threshold:
            out.append(x)
    return out


def lemma4_bound(d: int, eps: float, n: int) -> float:
    """Lemma 4: ``|Φ(S)| >= (1 - 2 eps) d n``."""
    return (1 - 2 * eps) * d * n


def lemma5_bound(n: int, eps: float, lam: float) -> float:
    """Lemma 5: ``|S'| >= (1 - 2 eps / lam) n``."""
    return (1 - 2 * eps / lam) * n


@dataclass(frozen=True)
class ExpansionReport:
    """Result of an expansion check."""

    is_expander: bool
    worst_set: Tuple[int, ...]
    worst_ratio: float  # |Γ(S)| / (d |S|) for the worst set examined
    sets_checked: int

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.is_expander


def verify_expansion_exact(
    graph: Expander, N: int, eps: float, *, max_sets: int = 2_000_000
) -> ExpansionReport:
    """Exhaustively check Definition 2 over all subsets of size ``<= N``.

    Only feasible for tiny graphs; raises if the subset count exceeds
    ``max_sets`` (use :func:`verify_expansion_sampled` instead).
    """
    u, d = graph.left_size, graph.degree
    total = sum(math.comb(u, s) for s in range(1, min(N, u) + 1))
    if total > max_sets:
        raise ValueError(
            f"{total} subsets to check exceeds max_sets={max_sets}; "
            f"use verify_expansion_sampled"
        )
    worst_ratio = float("inf")
    worst_set: Tuple[int, ...] = ()
    checked = 0
    ok = True
    for s in range(1, min(N, u) + 1):
        need = math.ceil((1 - eps) * d * s)
        for S in itertools.combinations(range(u), s):
            checked += 1
            got = len(neighbor_set(graph, S))
            ratio = got / (d * s)
            if ratio < worst_ratio:
                worst_ratio = ratio
                worst_set = S
            if got < need:
                ok = False
    return ExpansionReport(ok, worst_set, worst_ratio, checked)


def verify_expansion_sampled(
    graph: Expander,
    N: int,
    eps: float,
    *,
    trials: int = 2000,
    seed: int = 0,
) -> ExpansionReport:
    """Monte-Carlo spot check of Definition 2: random subsets of random sizes
    up to ``N``.  A failure is conclusive; a pass is evidence (the existence
    bounds of :mod:`repro.expanders.existence` carry the actual guarantee).
    """
    u, d = graph.left_size, graph.degree
    rng = random.Random(seed)
    worst_ratio = float("inf")
    worst_set: Tuple[int, ...] = ()
    ok = True
    for _ in range(trials):
        s = rng.randint(1, min(N, u))
        S = tuple(rng.sample(range(u), s))
        got = len(neighbor_set(graph, S))
        need = math.ceil((1 - eps) * d * s)
        ratio = got / (d * s)
        if ratio < worst_ratio:
            worst_ratio = ratio
            worst_set = S
        if got < need:
            ok = False
    return ExpansionReport(ok, worst_set, worst_ratio, trials)


def verify_definition1_sampled(
    graph: Expander,
    params,
    *,
    trials: int = 1000,
    max_set_size: int | None = None,
    seed: int = 0,
) -> ExpansionReport:
    """Monte-Carlo check of **Definition 1**: every sampled ``S`` has at
    least ``min((1-eps) d |S|, (1-delta) v)`` neighbors.

    This is the form Lemma 3's load-balancing proof consumes (the
    ``(1-delta) v`` branch is what caps the bucket count ``B(mu)``).
    ``params`` is an :class:`~repro.expanders.base.ExpanderParams`.
    """
    import random as _random

    u, d, v = graph.left_size, graph.degree, graph.right_size
    rng = _random.Random(seed)
    cap = min(u, max_set_size) if max_set_size else u
    worst_ratio = float("inf")
    worst_set: Tuple[int, ...] = ()
    ok = True
    for _ in range(trials):
        s = rng.randint(1, cap)
        S = rng.sample(range(u), s)
        got = len(neighbor_set(graph, S))
        need = params.guaranteed_neighbors(s, v)
        ratio = got / need if need else float("inf")
        if ratio < worst_ratio:
            worst_ratio = ratio
            worst_set = tuple(S)
        if got < need:
            ok = False
    return ExpansionReport(ok, worst_set, worst_ratio, trials)


def max_pairwise_overlap(graph: Expander, S: Sequence[int]) -> int:
    """``max |Γ(x) ∩ Γ(y)|`` over distinct ``x, y`` in ``S``.

    Theorem 6(b)'s majority decoding relies on "no two keys from U can have
    more than eps*d common neighbors"; this measures the quantity for a
    concrete set so tests can check the decoding margin.
    """
    neigh = {x: set(graph.neighbors(x)) for x in S}
    best = 0
    items = list(S)
    for idx, x in enumerate(items):
        nx = neigh[x]
        for y in items[idx + 1 :]:
            common = len(nx & neigh[y])
            if common > best:
                best = common
    return best
