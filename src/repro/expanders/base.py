"""Expander interfaces and parameter records.

Two equivalent views from the paper:

* **Definition 1**: a bipartite, left-``d``-regular graph ``G = (U, V, E)``
  is a ``(d, eps, delta)``-expander if any ``S ⊆ U`` has at least
  ``min((1 - eps) d |S|, (1 - delta) |V|)`` neighbors.
* **Definition 2**: ``G`` is an ``(N, eps)``-expander if any ``S ⊆ U`` with
  ``|S| <= N`` has at least ``(1 - eps) d |S|`` neighbors.

A *striped* graph partitions ``V`` into ``d`` equal stripes with exactly one
neighbor of every left vertex in each stripe; its neighbor function returns
``(stripe, index)`` pairs, matching the addressing of
:class:`~repro.pdm.striping.StripedFieldArray`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class ExpanderParams:
    """Definition 1 parameters of a ``(d, eps, delta)``-expander."""

    d: int
    eps: float
    delta: float

    def __post_init__(self):
        if self.d <= 0:
            raise ValueError(f"degree must be positive, got {self.d}")
        if not 0 < self.eps < 1:
            raise ValueError(f"eps must lie in (0, 1), got {self.eps}")
        if not 0 < self.delta < 1:
            raise ValueError(f"delta must lie in (0, 1), got {self.delta}")
        if self.eps < 1.0 / self.d:
            # The paper notes eps cannot be smaller than 1/d once v < d*u.
            raise ValueError(
                f"eps={self.eps} is below 1/d={1.0 / self.d}; no such "
                f"expander exists for a compressing graph"
            )

    def guaranteed_neighbors(self, s: int, v: int) -> int:
        """Definition 1's lower bound on ``|Γ(S)|`` for ``|S| = s``."""
        return min(
            math.ceil((1 - self.eps) * self.d * s),
            math.ceil((1 - self.delta) * v),
        )


@dataclass(frozen=True)
class NEpsParams:
    """Definition 2 parameters of an ``(N, eps)``-expander."""

    N: int
    eps: float

    def __post_init__(self):
        if self.N <= 0:
            raise ValueError(f"N must be positive, got {self.N}")
        if not 0 < self.eps < 1:
            raise ValueError(f"eps must lie in (0, 1), got {self.eps}")

    def guaranteed_neighbors(self, s: int, d: int) -> int:
        """Definition 2's lower bound on ``|Γ(S)|`` for ``|S| = s <= N``."""
        if s > self.N:
            raise ValueError(f"Definition 2 only covers |S| <= N={self.N}")
        return math.ceil((1 - self.eps) * d * s)


class Expander:
    """A bipartite, left-``d``-regular graph given by its neighbor function.

    Subclasses implement :meth:`neighbors`; everything else in the library
    consumes only that method (plus the size attributes), mirroring the
    paper's "access to the expander for free" abstraction.
    """

    #: |U| — size of the left part (the key universe).
    left_size: int
    #: left degree d.
    degree: int
    #: |V| — size of the right part (the array of buckets/fields).
    right_size: int

    def neighbors(self, x: int) -> Tuple[int, ...]:
        """The multiset ``Γ(x)`` as a tuple of ``degree`` right-vertex ids."""
        raise NotImplementedError

    def neighbor(self, x: int, i: int) -> int:
        """``F(x, i)`` — the ``i``-th neighbor of ``x``."""
        return self.neighbors(x)[i]

    def batch_neighbors(self, keys, kernel=None):
        """``{key: neighbors(key)}`` for many keys (distinct, order
        preserved).  Seeded graphs override with one kernel call."""
        return {x: self.neighbors(x) for x in keys}

    def _check_left(self, x: int) -> None:
        if not 0 <= x < self.left_size:
            raise IndexError(
                f"left vertex {x} out of range [0, {self.left_size})"
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(u={self.left_size}, d={self.degree}, "
            f"v={self.right_size})"
        )


class StripedExpander(Expander):
    """An expander whose right part is partitioned into ``degree`` equal
    stripes, one neighbor per stripe.

    ``right_size == degree * stripe_size``; flat right-vertex id of stripe
    pair ``(i, j)`` is ``i * stripe_size + j``.
    """

    #: size of each stripe (v / d).
    stripe_size: int

    def striped_neighbors(self, x: int) -> Tuple[Tuple[int, int], ...]:
        """``Γ(x)`` as ``degree`` pairs ``(stripe, index)``, one per stripe,
        in stripe order."""
        raise NotImplementedError

    def neighbors(self, x: int) -> Tuple[int, ...]:
        return tuple(
            i * self.stripe_size + j for (i, j) in self.striped_neighbors(x)
        )

    def striped_neighbor(self, x: int, i: int) -> Tuple[int, int]:
        return self.striped_neighbors(x)[i]

    # -- batch evaluation --------------------------------------------------
    #
    # The generic forms loop over striped_neighbors, so every striped
    # graph supports batching; seeded graphs with a closed-form neighbor
    # map override them with one kernel call.  Both forms are value- and
    # side-effect-identical to the per-key calls they replace (cache
    # fills, counters) — the batch kernels must never change an answer.

    def batch_local_indices(self, keys, kernel=None):
        """The local (per-stripe) bucket indices of many keys as one flat
        ``array('I')`` — ``degree`` entries per key, key-major (the
        ``NeighborhoodMemo`` layout)."""
        from array import array

        out = array("I")
        for x in keys:
            out.extend(j for _, j in self.striped_neighbors(x))
        return out

    def batch_striped(self, keys, kernel=None):
        """``{key: striped_neighbors(key)}`` for many keys (keys should be
        distinct; insertion order is preserved)."""
        return {x: self.striped_neighbors(x) for x in keys}
