"""Trivial striping of a non-striped expander (Section 5, closing remark).

Explicit constructions (including the telescope product) do not yield
*striped* expanders, which the parallel disk model needs so that one probe
touches one block per disk.  The paper's fix: "we may stripe an expander
``F : U x [d] -> V`` in a trivial manner by making a copy ``V_i`` of the
right side for each disk ``i``.  In order to find the neighbor of ``x`` we
calculate ``F(x, i)`` and return the corresponding vertex in ``V_i``.  This
incurs a factor ``d`` increase in the size of the right part, and hence a
factor ``d`` larger external memory space usage."

Expansion carries over: distinct neighbors stay distinct (each stripe is a
faithful copy), and vertices that collided across different edge indices
become distinct, so ``|Γ_striped(S)| >= |Γ(S)|`` for every ``S``.
"""

from __future__ import annotations

from typing import Tuple

from repro.expanders.base import Expander, StripedExpander


class TriviallyStripedExpander(StripedExpander):
    """Striping-by-copying adapter around any :class:`Expander`."""

    def __init__(self, inner: Expander):
        self.inner = inner
        self.left_size = inner.left_size
        self.degree = inner.degree
        self.stripe_size = inner.right_size
        self.right_size = inner.degree * inner.right_size

    def striped_neighbors(self, x: int) -> Tuple[Tuple[int, int], ...]:
        self._check_left(x)
        return tuple(enumerate(self.inner.neighbors(x)))

    @property
    def space_blowup(self) -> int:
        """Factor increase of the right part: exactly ``d``."""
        return self.degree

    @property
    def memory_words(self) -> int:
        return getattr(self.inner, "memory_words", 0)
