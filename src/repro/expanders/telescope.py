"""The telescope product (Lemma 10) and its recursion (Lemma 11).

Lemma 10: if ``F1 : U1 x [d1] -> V1`` is a ``(c1 v1 / d1, eps1)``-expander
and ``F2 : V1 x [d2] -> V2`` is a ``(c2 v2 / d2, eps2)``-expander with
``c1 >= c2`` (after scaling), then ``F2(F1(x, e1), e2)`` — with multi-edges
re-mapped in a fixed manner — is a
``(c2 v2 / (d1 d2), 1 - (1 - eps1)(1 - eps2))``-expander of degree
``d1 * d2``.

Composing a family recursively (Lemma 11) telescopes an almost-balanced base
into an arbitrarily unbalanced expander whose degree multiplies and whose
error compounds as ``1 - prod(1 - eps_i)``.

The multi-edge re-map: duplicates among the ``d1*d2`` evaluated neighbors
are re-routed to the lexicographically next unused right vertex.  Re-mapping
only ever *adds* distinct neighbors to any ``Γ(S)``, so (as the paper notes)
it cannot decrease the expansion factor.  As in the paper, evaluating one
neighbor evaluates all of them — which is free for the dictionaries, since
they always evaluate the full neighbor set anyway.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.expanders.base import Expander


def _remap_multi_edges(raw: Sequence[int], right_size: int) -> Tuple[int, ...]:
    """Replace duplicate neighbors by the next unused vertex (mod v).

    Deterministic and independent of evaluation order, so the composed graph
    is a fixed object.
    """
    seen = set()
    out: List[int] = []
    for y in raw:
        if y not in seen:
            seen.add(y)
            out.append(y)
            continue
        z = (y + 1) % right_size
        while z in seen and z != y:
            z = (z + 1) % right_size
        # If every vertex is taken (degree >= v) keep the duplicate; the
        # graph is then trivially non-compressing anyway.
        seen.add(z)
        out.append(z)
    return tuple(out)


class TelescopeProduct(Expander):
    """The composition ``F_k ∘ ... ∘ F_1`` of a chain of expanders.

    ``stages[i].right_size`` must equal ``stages[i+1].left_size``.  Degree is
    the product of stage degrees; error compounds as
    ``1 - prod(1 - eps_i)`` (Lemma 10, by induction as in Lemma 11).
    """

    def __init__(self, stages: Sequence[Expander]):
        if not stages:
            raise ValueError("telescope product needs at least one stage")
        for a, b in zip(stages, stages[1:]):
            if a.right_size != b.left_size:
                raise ValueError(
                    f"stage mismatch: right size {a.right_size} feeds a stage "
                    f"with left size {b.left_size}"
                )
        self.stages = list(stages)
        self.left_size = stages[0].left_size
        self.right_size = stages[-1].right_size
        degree = 1
        for s in stages:
            degree *= s.degree
        self.degree = degree

    def neighbors(self, x: int) -> Tuple[int, ...]:
        self._check_left(x)
        frontier: List[int] = [x]
        for stage in self.stages:
            nxt: List[int] = []
            for y in frontier:
                nxt.extend(stage.neighbors(y))
            frontier = nxt
        return _remap_multi_edges(frontier, self.right_size)

    @staticmethod
    def composed_eps(stage_epsilons: Sequence[float]) -> float:
        """Lemma 10/11 error: ``1 - prod(1 - eps_i)``."""
        acc = 1.0
        for e in stage_epsilons:
            acc *= 1.0 - e
        return 1.0 - acc

    @property
    def memory_words(self) -> int:
        """Total advice words across stages (0 for seed-based stages)."""
        return sum(getattr(s, "memory_words", 0) for s in self.stages)
