"""One-call expansion audits.

Benchmarks and notebooks keep re-deriving the same quartet of measured
quantities for a concrete (graph, key set) pair; :func:`expansion_audit`
computes them all at once:

* ``gamma`` — ``|Γ(S)|`` and the implied measured ``eps``;
* ``phi`` — ``|Φ(S)|`` with the Lemma 4 bound at the measured eps;
* the Lemma 5 assignable fractions for a sweep of ``lambda`` values;
* the pairwise-overlap maximum that Theorem 6(b)'s majority decoding
  relies on (optional — quadratic in ``|S|``).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional, Sequence, Tuple

from repro.expanders.base import Expander
from repro.expanders.verify import (
    lemma4_bound,
    lemma5_bound,
    max_pairwise_overlap,
    neighbor_set,
    unique_neighbor_set,
    well_assignable_subset,
)


@dataclass(frozen=True)
class ExpansionAudit:
    """Every measured expansion quantity for one (graph, S) pair."""

    n: int
    degree: int
    right_size: int
    gamma: int
    phi: int
    eps_measured: float
    lemma4_bound: float
    #: lambda -> (|S'| measured, Lemma 5 bound)
    assignable: Dict[float, Tuple[int, float]] = field(default_factory=dict)
    max_overlap: Optional[int] = None

    @property
    def lemma4_holds(self) -> bool:
        return self.phi >= self.lemma4_bound - 1e-9

    @property
    def lemma5_holds(self) -> bool:
        return all(
            measured >= bound - 1e-9
            for measured, bound in self.assignable.values()
        )

    @property
    def majority_margin(self) -> Optional[float]:
        """How far pairwise overlaps sit below the d/2 majority threshold
        (None when overlap was not computed)."""
        if self.max_overlap is None:
            return None
        return self.degree / 2 - self.max_overlap

    def summary(self) -> str:
        lines = [
            f"n={self.n} d={self.degree} v={self.right_size}",
            f"gamma=|Γ(S)|={self.gamma}  eps_meas={self.eps_measured:.4f}",
            f"phi=|Φ(S)|={self.phi}  lemma4>={self.lemma4_bound:.1f} "
            f"({'OK' if self.lemma4_holds else 'VIOLATED'})",
        ]
        for lam, (measured, bound) in sorted(self.assignable.items()):
            lines.append(
                f"lambda={lam:.3f}: |S'|={measured}  lemma5>={bound:.1f} "
                f"({'OK' if measured >= bound - 1e-9 else 'VIOLATED'})"
            )
        if self.max_overlap is not None:
            lines.append(
                f"max pairwise overlap={self.max_overlap} "
                f"(majority margin {self.majority_margin:.1f})"
            )
        return "\n".join(lines)


def expansion_audit(
    graph: Expander,
    S: Sequence[int],
    *,
    lambdas: Sequence[float] = (1 / 3,),
    with_overlap: bool = False,
) -> ExpansionAudit:
    """Measure Γ, Φ, eps, and the Lemma 4/5 quantities for ``S``."""
    S = list(dict.fromkeys(S))
    n = len(S)
    if n == 0:
        raise ValueError("cannot audit an empty set")
    d = graph.degree
    gamma = len(neighbor_set(graph, S))
    phi = len(unique_neighbor_set(graph, S))
    eps = max(0.0, 1 - gamma / (d * n))
    assignable = {}
    for lam in lambdas:
        measured = len(well_assignable_subset(graph, S, lam))
        bound = lemma5_bound(n, eps, lam) if eps > 0 else float(n)
        assignable[lam] = (measured, max(0.0, bound))
    overlap = max_pairwise_overlap(graph, S) if with_overlap else None
    return ExpansionAudit(
        n=n,
        degree=d,
        right_size=graph.right_size,
        gamma=gamma,
        phi=phi,
        eps_measured=eps,
        lemma4_bound=max(0.0, lemma4_bound(d, eps, n)),
        assignable=assignable,
        max_overlap=overlap,
    )
