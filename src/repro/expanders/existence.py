"""Probabilistic-method parameter selection.

The paper (Section 2) cites the standard counting argument: ``(d, eps,
delta)``-expanders with ``d = O(log(u / v))`` exist for any positive
constants ``eps, delta``, and ``(N, eps)``-expanders exist with
``v = Theta(N d)``.  These are the calculations behind that sentence,
exposed so that dictionaries can pick degrees/array sizes for which a seeded
random graph fails to expand with probability ``2^-40`` or less — i.e. for
which a fixed seed is, for every practical purpose, a fixed good expander.

The union bound: a uniformly random striped left-``d``-regular graph fails
to be an ``(N, eps)``-expander with probability at most::

    sum_{s=2}^{N}  C(u, s) * C(v, t_s) * (t_s / v)^(d*s)

where ``t_s = ceil((1 - eps) d s) - 1`` is the largest deficient neighbor
count for a set of size ``s`` (all ``d*s`` edge endpoints must land inside
some ``t_s``-subset of ``V``).  We compute everything in log2 space.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def log2_comb(n: int, k: int) -> float:
    """``log2(C(n, k))`` computed stably via lgamma."""
    if k < 0 or k > n:
        return float("-inf")
    if k == 0 or k == n:
        return 0.0
    return (
        math.lgamma(n + 1) - math.lgamma(k + 1) - math.lgamma(n - k + 1)
    ) / math.log(2)


def _log2_add(a: float, b: float) -> float:
    """``log2(2^a + 2^b)`` without overflow."""
    if a == float("-inf"):
        return b
    if b == float("-inf"):
        return a
    hi, lo = (a, b) if a >= b else (b, a)
    return hi + math.log2(1 + 2 ** (lo - hi))


def expansion_failure_log2_prob(
    u: int, v: int, d: int, N: int, eps: float
) -> float:
    """``log2`` of the union-bound probability that a uniformly random
    left-``d``-regular graph ``[u] -> [v]`` is *not* an ``(N, eps)``-expander.

    The bound counts *redundant edges*: if a set ``S`` of size ``s`` has at
    most ``ds - k`` distinct neighbors, then some ``k`` of its ``ds`` edges
    end inside the image of the other ``ds - k`` edges; union over the
    ``C(ds, k)`` choices, each with probability at most ``(ds / v)^k`` by
    edge independence.  With ``k = floor(eps d s) + 1`` (the smallest
    deficiency violating Definition 2)::

        P <= sum_s  C(u, s) * C(ds, k_s) * (ds / v)^{k_s}

    Consequences worth knowing (visible in the numbers this returns): a
    certified guarantee needs ``v >~ (e / eps) * d * N`` **and**
    ``eps * d >~ log2(u e / N)`` — i.e. the paper's ``d = O(log u)`` and
    ``v = Theta(N d)`` carry constants that scale like ``1 / eps``.

    Returns ``-inf`` when the bound is 0 (no deficient set is possible).
    """
    if not 0 < eps < 1:
        raise ValueError(f"eps must lie in (0, 1), got {eps}")
    if N <= 0 or u <= 0 or v <= 0 or d <= 0:
        raise ValueError("u, v, d, N must be positive")
    total = float("-inf")
    for s in range(2, min(N, u) + 1):
        if math.ceil((1 - eps) * d * s) > v:
            # Definition 2 would demand more neighbors than |V| has; no
            # graph can satisfy it, so the "failure" is certain.
            return 0.0
        k = math.floor(eps * d * s) + 1
        if k > d * s:
            continue  # cannot lose more edges than exist
        term = log2_comb(u, s) + log2_comb(d * s, k) + k * math.log2(d * s / v)
        total = _log2_add(total, term)
    return total


def recommended_degree(
    u: int, v: int, N: int, eps: float, *, target_log2_prob: float = -40.0
) -> int:
    """Smallest degree ``d`` for which the union bound is below the target.

    This realises the ``d = O(log u)`` of the paper's theorems with the
    constant made concrete for finite sizes.
    """
    for d in range(max(2, math.ceil(1 / eps)), 4096):
        if expansion_failure_log2_prob(u, v, d, N, eps) <= target_log2_prob:
            return d
    raise ValueError(
        f"no degree up to 4096 achieves failure prob 2^{target_log2_prob} "
        f"for u={u}, v={v}, N={N}, eps={eps}"
    )


@dataclass(frozen=True)
class RecommendedParams:
    """A (degree, stripe_size) pair plus its certified failure bound."""

    degree: int
    stripe_size: int
    eps: float
    failure_log2_prob: float

    @property
    def right_size(self) -> int:
        return self.degree * self.stripe_size


def recommended_params(
    u: int,
    N: int,
    eps: float,
    *,
    slack: float | None = None,
    target_log2_prob: float = -40.0,
    min_degree: int = 2,
    max_degree: int = 512,
) -> RecommendedParams:
    """Pick ``(d, stripe_size)`` for an ``(N, eps)``-expander with
    ``v = slack * N * d`` — the paper's ``v = Theta(N d)``, where the Theta
    constant necessarily scales like ``1/eps``.

    Why: a set of size ``N`` has ``dN`` edge endpoints; even a perfectly
    random graph keeps ``(1 - eps)`` of them distinct only when
    ``dN / v <~ 2 eps`` (birthday bound), i.e. ``v >~ dN / (2 eps)``.  With
    ``slack=None`` the search starts at ``1/eps`` per-``Nd`` slack and grows
    it geometrically until the union bound clears the target.
    """
    if N <= 0:
        raise ValueError(f"N must be positive, got {N}")
    base_slack = slack if slack is not None else 1.0 / eps
    cur_slack = base_slack
    for _ in range(24):
        d = max(min_degree, math.ceil(1 / eps) + 1, 3)
        while d <= max_degree:
            stripe_size = max(1, math.ceil(cur_slack * N))
            v = d * stripe_size
            log2p = expansion_failure_log2_prob(u, v, d, N, eps)
            if log2p <= target_log2_prob:
                return RecommendedParams(
                    degree=d,
                    stripe_size=stripe_size,
                    eps=eps,
                    failure_log2_prob=log2p,
                )
            d += 1
        if slack is not None:
            break  # caller pinned the slack; do not silently change it
        cur_slack *= 1.5
    raise ValueError(
        f"no parameters found for u={u}, N={N}, eps={eps}, slack={slack}"
    )


def practical_params(
    u: int,
    N: int,
    eps: float,
    *,
    slack: float | None = None,
    min_degree: int = 2,
) -> RecommendedParams:
    """Expectation-grade parameters for running on a concrete seeded graph.

    :func:`recommended_params` certifies the *adversarial* guarantee (every
    subset of ``U`` expands), which forces ``eps * d >= log2(u e / N)`` —
    degrees in the hundreds at realistic sizes.  Dictionaries operating on a
    *fixed* key set drawn without reference to the graph behave according to
    the expectation calculation instead: with ``v = slack * d * N`` the
    expected fraction of distinct neighbors of an ``N``-set is
    ``(v / dN)(1 - e^{-dN/v})``, which exceeds ``1 - eps`` as soon as
    ``dN / v <= 2 eps`` (second-order Taylor), i.e. ``slack >= 1/(2 eps)``.
    We default to ``slack = 1/eps`` (double the birthday floor) and
    ``d = 2 ceil(log2 u)`` — the paper's ``D = Omega(log u)`` with a
    concrete constant — so measured unique-neighbor fractions clear the
    Lemma 4/5 thresholds with margin.  Benchmarks confirm this empirically;
    the certified story lives in :func:`recommended_params`.
    """
    if N <= 0:
        raise ValueError(f"N must be positive, got {N}")
    if not 0 < eps < 1:
        raise ValueError(f"eps must lie in (0, 1), got {eps}")
    slack = (1.0 / eps) if slack is None else slack
    d = max(min_degree, 2 * math.ceil(math.log2(max(u, 2))), math.ceil(1 / eps) + 1)
    stripe_size = max(1, math.ceil(slack * N))
    v = d * stripe_size
    return RecommendedParams(
        degree=d,
        stripe_size=stripe_size,
        eps=eps,
        failure_log2_prob=expansion_failure_log2_prob(u, v, d, N, eps),
    )
