"""The Theorem 12 semi-explicit construction for ``u = poly(N)``.

Section 5 shows: for any constant ``0 < beta < 1`` and ``u = poly(N)`` there
is a semi-explicit ``(N, eps)``-expander ``F : U x [d] -> V`` with
``d = polylog(u)``, ``v = O(N d)``, requiring ``O(N^beta)`` words of
pre-processed internal memory.  The recipe:

1. Corollary 1 instantiates Theorem 9 (Capalbo et al.) base expanders that
   shrink the right side by a factor ``u^{beta/c}`` per application, each
   using ``O(u^beta / eps^c)`` words of advice.
2. Lemma 11 telescopes ``k = O(1)`` of them; degrees multiply, errors
   compound as ``1 - (1 - eps')^k``.
3. Splitting the target error evenly, ``eps' = 1 - (1 - eps)^{1/k}``.

**Substitution note** (see DESIGN.md): Theorem 9's base objects are beyond
present-day explicit constructions — the paper itself invokes advice "found
probabilistically in time poly(s)".  We realise each stage by a certified
seeded pseudo-random graph and charge its advice cost by Theorem 9's formula
``poly(u_i / v_{i+1}, 1/eps')`` to the internal-memory accountant.  Every
*behavioural* property of the construction — the stage-wise shrinkage, the
multiplied degree, the compounded error, the neighbor evaluation with no
external I/O, and the resulting dictionary performance — is exercised for
real; only the advice *content* is simulated.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional

from repro.expanders.base import Expander
from repro.expanders.existence import expansion_failure_log2_prob
from repro.expanders.random_graph import SeededFlatExpander
from repro.expanders.telescope import TelescopeProduct
from repro.expanders.verify import verify_expansion_sampled
from repro.pdm import InternalMemory


def theorem9_advice_words(u: int, v: int, eps: float, *, c: float = 2.0) -> int:
    """Theorem 9 advice size: ``poly(u/v, 1/eps)`` — we take ``(u/(v*eps))^c``
    words, the form used in Corollary 1's space computation."""
    if v <= 0 or u <= 0:
        raise ValueError("u and v must be positive")
    return max(1, math.ceil((u / (v * eps)) ** c))


@dataclass(frozen=True)
class StageReport:
    """One telescoped stage."""

    left_size: int
    right_size: int
    degree: int
    eps: float
    advice_words: int
    certified: bool


@dataclass
class SemiExplicitExpander:
    """The composed Theorem 12 expander plus its resource report."""

    expander: Expander
    N: int
    eps: float
    beta: float
    stages: List[StageReport] = field(default_factory=list)

    @property
    def degree(self) -> int:
        return self.expander.degree

    @property
    def right_size(self) -> int:
        return self.expander.right_size

    @property
    def memory_words(self) -> int:
        """Total advice across stages — Theorem 12's ``O(N^beta)``."""
        return sum(s.advice_words for s in self.stages)

    @property
    def composed_eps(self) -> float:
        return TelescopeProduct.composed_eps([s.eps for s in self.stages])

    @classmethod
    def build(
        cls,
        *,
        u: int,
        N: int,
        eps: float,
        beta: float = 0.5,
        c: float = 2.0,
        slack: float = 2.0,
        seed: int = 0,
        memory: Optional[InternalMemory] = None,
        certify: bool = True,
        certify_trials: int = 500,
        max_stages: int = 8,
    ) -> "SemiExplicitExpander":
        """Telescope base expanders from ``[u]`` down to ``v = O(N * d)``.

        Stage ``i`` maps ``[u_i] -> [u_{i+1}]`` with
        ``u_{i+1} ~ u_i^{1 - beta/c}`` (Corollary 1's shrinkage), but never
        below the feasibility floor ``slack * M_i * d_i`` where
        ``M_i = N * prod_{t<i} d_t`` is the largest set stage ``i`` must
        expand (the image, under earlier stages, of an ``N``-set — this is
        the ``c1 >= c2`` bookkeeping of Lemma 10).  Construction stops when
        the right side reaches ``O(N * total_degree)``.
        """
        if not 0 < beta < 1:
            raise ValueError(f"beta must lie in (0, 1), got {beta}")
        if u < N:
            raise ValueError(f"need u >= N, got u={u} < N={N}")

        # Estimate the stage count to split the error budget, then build.
        shrink = 1.0 - beta / c
        est_stages = 1
        size = float(u)
        while size ** shrink > 4 * N and est_stages < max_stages:
            size = size ** shrink
            est_stages += 1
        eps_stage = 1.0 - (1.0 - eps) ** (1.0 / est_stages)

        stages: List[Expander] = []
        reports: List[StageReport] = []
        cur_u = u
        total_degree = 1
        for stage_index in range(max_stages):
            M = N * total_degree  # largest set this stage must expand
            target_v = math.ceil(cur_u ** shrink)
            # Stage degree: the paper's poly(log u / eps'); concretely the
            # practical log2-scale degree with the 1/eps' minimum.
            d = max(
                2,
                math.ceil(1 / eps_stage) + 1,
                math.ceil(math.log2(max(cur_u, 2))),
            )
            # Birthday floor: keeping a (1 - eps') fraction of d*M edge
            # endpoints distinct needs v >~ d*M / (2 eps'); `slack`
            # multiplies that.  Once the floor exceeds the u^{1-beta/c}
            # shrink schedule, the right side is capacity-bound at
            # Theta(N * total_degree / eps) = Theta(N d) -- the Theorem 12
            # target -- and telescoping further cannot help.
            v_floor = math.ceil(slack * d * M / (2 * eps_stage))
            v_next = max(target_v, v_floor)
            if v_next >= cur_u:
                if stage_index == 0:
                    raise RuntimeError(
                        f"u={u} is too small relative to N={N} for "
                        f"beta={beta}: the first stage cannot shrink"
                    )
                break
            stage = SeededFlatExpander(
                left_size=cur_u,
                degree=d,
                right_size=v_next,
                seed=seed + 7919 * stage_index,
            )
            certified = False
            if certify:
                report = verify_expansion_sampled(
                    stage,
                    min(M, cur_u),
                    eps_stage,
                    trials=certify_trials,
                    seed=seed + stage_index,
                )
                if not report.is_expander:
                    raise RuntimeError(
                        f"stage {stage_index} failed certification; "
                        f"retry with a different seed"
                    )
                certified = True
            advice = theorem9_advice_words(cur_u, v_next, eps_stage, c=c)
            if memory is not None:
                memory.charge(advice)
            stages.append(stage)
            reports.append(
                StageReport(
                    left_size=cur_u,
                    right_size=v_next,
                    degree=d,
                    eps=eps_stage,
                    advice_words=advice,
                    certified=certified,
                )
            )
            total_degree *= d
            cur_u = v_next
            if cur_u <= slack * N * total_degree or v_next == v_floor:
                break
        composed = TelescopeProduct(stages)
        return cls(
            expander=composed, N=N, eps=eps, beta=beta, stages=reports
        )
