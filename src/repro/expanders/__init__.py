"""Unbalanced bipartite expander graphs.

All dictionaries of the paper consume an expander only through its neighbor
function ``F(x, i)``; everything else (construction, verification, striping)
lives here.

* :mod:`~repro.expanders.base` — interfaces and the parameter records of
  Definitions 1 and 2.
* :mod:`~repro.expanders.random_graph` — seeded pseudo-random striped
  left-regular graphs.  The paper assumes access to a fixed optimal expander
  "for free" (such graphs exist, e.g. random ones, whp); fixing a seed fixes
  a graph, and the dictionaries then run fully deterministically on it.
* :mod:`~repro.expanders.existence` — probabilistic-method bounds used to
  pick parameters for which a random graph is an expander whp.
* :mod:`~repro.expanders.verify` — expansion checking: exact subset
  enumeration for tiny graphs, sampling otherwise, plus the unique-neighbor
  quantities of Lemmas 4 and 5 that the dictionary proofs actually consume.
* :mod:`~repro.expanders.explicit` — Theorem 9 stand-in: preprocessing
  search for certified small base expanders, stored as internal-memory
  tables with space accounting.
* :mod:`~repro.expanders.telescope` — the telescope product (Lemma 10) and
  its recursion (Lemma 11).
* :mod:`~repro.expanders.semi_explicit` — the Theorem 12 construction for
  ``u = poly(N)``.
* :mod:`~repro.expanders.striping` — the trivial striping transform (copy
  the right side per disk; factor-``d`` space, Section 5 closing remark).
"""

from repro.expanders.base import (
    Expander,
    StripedExpander,
    ExpanderParams,
    NEpsParams,
)
from repro.expanders.random_graph import SeededRandomExpander
from repro.expanders.existence import (
    log2_comb,
    expansion_failure_log2_prob,
    recommended_degree,
    recommended_params,
)
from repro.expanders.verify import (
    neighbor_set,
    unique_neighbor_set,
    well_assignable_subset,
    lemma4_bound,
    lemma5_bound,
    verify_expansion_exact,
    verify_expansion_sampled,
    max_pairwise_overlap,
)
from repro.expanders.audit import ExpansionAudit, expansion_audit
from repro.expanders.explicit import TabulatedExpander, find_base_expander
from repro.expanders.guv import GUVExpander
from repro.expanders.telescope import TelescopeProduct
from repro.expanders.semi_explicit import SemiExplicitExpander
from repro.expanders.striping import TriviallyStripedExpander

__all__ = [
    "Expander",
    "StripedExpander",
    "ExpanderParams",
    "NEpsParams",
    "SeededRandomExpander",
    "log2_comb",
    "expansion_failure_log2_prob",
    "recommended_degree",
    "recommended_params",
    "neighbor_set",
    "unique_neighbor_set",
    "well_assignable_subset",
    "lemma4_bound",
    "lemma5_bound",
    "verify_expansion_exact",
    "verify_expansion_sampled",
    "max_pairwise_overlap",
    "ExpansionAudit",
    "expansion_audit",
    "TabulatedExpander",
    "find_base_expander",
    "GUVExpander",
    "TelescopeProduct",
    "SemiExplicitExpander",
    "TriviallyStripedExpander",
]
