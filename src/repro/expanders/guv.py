"""A truly explicit striped expander, from Parvaresh–Vardy codes
(Guruswami–Umans–Vadhan).

Section 6 of the paper: "Obviously, improved expander constructions would
be highly interesting in the context of the algorithms presented in this
paper.  It seems possible that practical and truly simple constructions
could exist."  One year after SPAA 2006, Guruswami, Umans and Vadhan
(CCC 2007 / J.ACM 2009) delivered exactly that; we include their
construction because it is (a) genuinely simple, (b) fully deterministic —
no seeds anywhere — and (c) **naturally striped**, the property Section 2
demands and no earlier explicit construction had:

    Left vertices:  polynomials ``f`` of degree < ``n`` over ``F_q``
                    (universe ``u = q^n``);
    Degree:         ``d = q`` — one neighbor per evaluation point
                    ``y ∈ F_q``;
    Neighbor:       ``Γ(f, y) = (y; f_0(y), f_1(y), ..., f_{m-1}(y))``
                    where ``f_0 = f`` and ``f_{i+1} = f_i^h mod E`` for a
                    fixed irreducible ``E`` of degree ``n``;
    Right side:     ``q^{m+1}``, which is *striped by construction*: the
                    first coordinate ``y`` is the stripe, the remaining
                    ``m`` coordinates the index within it.

Guarantee (GUV; see also Vadhan, *Pseudorandomness*, Thm 5.35): the graph
is an ``(h^m, A)`` vertex expander with ``A ≥ q - (n-1)(h-1)m``; in the
paper's Definition 2 terms, an ``(N = h^m, ε)``-expander with
``ε ≤ (n-1)(h-1)m / q``.  We expose the slightly more conservative
``ε = n·h·m/q`` and let :mod:`repro.expanders.verify` certify concrete
instances.

Trade-off vs the paper's target parameters: the degree ``q`` must beat
``n·h·m/ε`` (polynomial in ``log u``, good) but the right side is
``q^{m+1}`` rather than ``O(N d)`` — truly explicit, space-suboptimal,
precisely the state of the art the paper describes.  Evaluation needs
``O(n m)`` field elements of internal memory and no I/O.
"""

from __future__ import annotations

import math
from typing import Dict, List, Sequence, Tuple

from repro.expanders.base import StripedExpander

# ---------------------------------------------------------------------------
# Arithmetic in F_p[X] (p prime), polynomials as low-to-high coefficient
# tuples.
# ---------------------------------------------------------------------------


def _is_prime(p: int) -> bool:
    if p < 2:
        return False
    if p % 2 == 0:
        return p == 2
    f = 3
    while f * f <= p:
        if p % f == 0:
            return False
        f += 2
    return True


def _poly_trim(a: Sequence[int]) -> Tuple[int, ...]:
    a = list(a)
    while a and a[-1] == 0:
        a.pop()
    return tuple(a)


def _poly_mul(a: Sequence[int], b: Sequence[int], p: int) -> Tuple[int, ...]:
    if not a or not b:
        return ()
    out = [0] * (len(a) + len(b) - 1)
    for i, ai in enumerate(a):
        if ai:
            for j, bj in enumerate(b):
                out[i + j] = (out[i + j] + ai * bj) % p
    return _poly_trim(out)


def _poly_mod(a: Sequence[int], e: Sequence[int], p: int) -> Tuple[int, ...]:
    """``a mod e`` where ``e`` is monic."""
    a = list(a)
    de = len(e) - 1
    while len(a) - 1 >= de and any(a):
        if a[-1] == 0:
            a.pop()
            continue
        coef = a[-1]
        shift = len(a) - 1 - de
        for i, ei in enumerate(e):
            a[shift + i] = (a[shift + i] - coef * ei) % p
        while a and a[-1] == 0:
            a.pop()
    return _poly_trim(a)


def _poly_powmod(
    f: Sequence[int], exp: int, e: Sequence[int], p: int
) -> Tuple[int, ...]:
    result: Tuple[int, ...] = (1,)
    base = _poly_mod(f, e, p)
    while exp:
        if exp & 1:
            result = _poly_mod(_poly_mul(result, base, p), e, p)
        base = _poly_mod(_poly_mul(base, base, p), e, p)
        exp >>= 1
    return result


def _poly_gcd(a: Sequence[int], b: Sequence[int], p: int) -> Tuple[int, ...]:
    a, b = _poly_trim(a), _poly_trim(b)
    while b:
        # a mod b with b made monic.
        inv = pow(b[-1], p - 2, p)
        monic = tuple((c * inv) % p for c in b)
        a, b = b, _poly_mod(a, monic, p)
    return a


def _poly_sub(a: Sequence[int], b: Sequence[int], p: int) -> Tuple[int, ...]:
    out = [0] * max(len(a), len(b))
    for i, c in enumerate(a):
        out[i] = c % p
    for i, c in enumerate(b):
        out[i] = (out[i] - c) % p
    return _poly_trim(out)


def is_irreducible(e: Sequence[int], p: int) -> bool:
    """Rabin's test: ``E`` (monic, degree n) is irreducible over ``F_p``
    iff ``X^{p^n} ≡ X (mod E)`` and ``gcd(X^{p^{n/t}} - X, E) = 1`` for
    every prime ``t | n``."""
    e = tuple(c % p for c in e)
    n = len(e) - 1
    if n <= 0 or e[-1] != 1:
        return False
    x = (0, 1)

    def x_pow_p_i(i: int) -> Tuple[int, ...]:
        # X^(p^i) mod E by iterated Frobenius.
        out = x
        for _ in range(i):
            out = _poly_powmod(out, p, e, p)
        return out

    # Condition 2 first (cheaper failures).
    factors = set()
    m = n
    f = 2
    while f * f <= m:
        if m % f == 0:
            factors.add(f)
            while m % f == 0:
                m //= f
        f += 1
    if m > 1:
        factors.add(m)
    for t in sorted(factors):
        g = _poly_gcd(_poly_sub(x_pow_p_i(n // t), x, p), e, p)
        if len(g) - 1 != 0:
            return False
    return _poly_sub(x_pow_p_i(n), x, p) == ()


def find_irreducible(p: int, n: int) -> Tuple[int, ...]:
    """Deterministic search: the lexicographically first monic irreducible
    of degree ``n`` over ``F_p`` (constant-first enumeration)."""
    if n == 1:
        return (0, 1)
    # Enumerate lower coefficients in base-p counting order.
    for code in range(p**n):
        coeffs = []
        rem = code
        for _ in range(n):
            coeffs.append(rem % p)
            rem //= p
        candidate = tuple(coeffs) + (1,)
        if is_irreducible(candidate, p):
            return candidate
    raise ArithmeticError(
        f"no irreducible of degree {n} over F_{p} (impossible)"
    )


# ---------------------------------------------------------------------------
# The expander.
# ---------------------------------------------------------------------------


class GUVExpander(StripedExpander):
    """The Parvaresh–Vardy-code expander, striped by its ``y`` coordinate."""

    def __init__(
        self,
        *,
        p: int,
        n: int,
        m: int,
        h: int,
        cache_size: int = 1 << 14,
    ):
        if not _is_prime(p):
            raise ValueError(f"p must be prime, got {p}")
        if n < 1 or m < 1:
            raise ValueError("n and m must be at least 1")
        if h < 2:
            raise ValueError(f"h must be at least 2, got {h}")
        if h >= p:
            raise ValueError(f"need h < p (got h={h}, p={p})")
        self.p = p
        self.n = n
        self.m = m
        self.h = h
        self.E = find_irreducible(p, n)
        self.left_size = p**n
        self.degree = p
        self.stripe_size = p**m
        self.right_size = self.degree * self.stripe_size
        self._cache: Dict[int, Tuple[Tuple[int, int], ...]] = {}  # detlint: guarded(owner-lane) -- idempotent memo of a pure function; recompute races are benign but the lane owns it
        self._cache_size = cache_size

    # -- guarantees ----------------------------------------------------------

    @property
    def N_guarantee(self) -> int:
        """Sets up to ``h^m`` are guaranteed to expand."""
        return self.h**self.m

    @property
    def eps_guarantee(self) -> float:
        """Conservative Definition-2 error: ``n h m / p``."""
        return min(1.0, self.n * self.h * self.m / self.p)

    @property
    def is_truly_explicit(self) -> bool:
        """No random bits anywhere: field, modulus and map are canonical."""
        return True

    def evaluation_memory_words(self) -> int:
        """Internal memory to evaluate neighbors: E plus the m folded
        polynomials (O(n m) field elements)."""
        return (self.n + 1) + self.n * self.m

    # -- neighbor function -----------------------------------------------------

    def _decode(self, x: int) -> Tuple[int, ...]:
        coeffs = []
        for _ in range(self.n):
            coeffs.append(x % self.p)
            x //= self.p
        return _poly_trim(coeffs)

    def striped_neighbors(self, x: int) -> Tuple[Tuple[int, int], ...]:
        self._check_left(x)
        cached = self._cache.get(x)
        if cached is not None:
            return cached
        p, m = self.p, self.m
        f = self._decode(x)
        folded: List[Tuple[int, ...]] = [f]
        for _ in range(m - 1):
            folded.append(_poly_powmod(folded[-1], self.h, self.E, p))
        out = []
        for y in range(p):
            index = 0
            power = 1
            for fi in folded:
                # Horner evaluation of fi at y.
                val = 0
                for c in reversed(fi):
                    val = (val * y + c) % p
                index += val * power
                power *= p
            out.append((y, index))
        result = tuple(out)
        if len(self._cache) >= self._cache_size:
            self._cache.clear()
        self._cache[x] = result
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"GUVExpander(p={self.p}, n={self.n}, m={self.m}, h={self.h}: "
            f"u={self.left_size}, d={self.degree}, N={self.N_guarantee}, "
            f"eps<={self.eps_guarantee:.3f})"
        )

    @classmethod
    def design(
        cls,
        *,
        min_universe: int,
        min_N: int,
        max_eps: float,
        max_degree: int = 1024,
    ) -> "GUVExpander":
        """Smallest-degree instance with ``u >= min_universe``,
        ``N_guarantee >= min_N`` and ``eps_guarantee <= max_eps``."""
        best = None
        for h in (2, 3, 4):
            m = max(1, math.ceil(math.log(max(min_N, 2), h)))
            for n in range(1, 13):
                p_min = math.ceil(n * h * m / max_eps)
                p = max(p_min, h + 1, 2)
                while not _is_prime(p):
                    p += 1
                if p > max_degree:
                    continue
                if p**n < min_universe:
                    continue
                if best is None or p < best[0]:
                    best = (p, n, m, h)
        if best is None:
            raise ValueError(
                f"no GUV instance with degree <= {max_degree} meets the "
                f"requirements (u >= {min_universe}, N >= {min_N}, "
                f"eps <= {max_eps})"
            )
        p, n, m, h = best
        return cls(p=p, n=n, m=m, h=h)
