"""Seeded pseudo-random striped expanders.

The paper's algorithms assume "access to certain expander graphs for free":
random left-regular graphs achieve the optimal parameters with high
probability — including *striped* random graphs (Section 2) — but no optimal
explicit construction is known.  Our stand-in is a graph whose neighbor
function is a strong deterministic 64-bit mix of ``(seed, x, stripe)``:

* once the seed is fixed the graph is a fixed object, so every dictionary
  built on it runs fully deterministically, exactly as the paper prescribes
  for an arbitrary fixed good expander;
* the graph is striped by construction (one neighbor per stripe);
* its expansion can be certified after the fact with
  :mod:`repro.expanders.verify`, and parameters chosen with
  :mod:`repro.expanders.existence` make failure probabilities negligible.

The mix is splitmix64 (Steele et al.), a measurably well-distributed
permutation of the 64-bit integers; evaluation needs no I/O and ``O(1)``
words, satisfying the paper's explicitness requirement *operationally*
(the construction is of course not explicit in the complexity-theoretic
sense — that is precisely the gap Section 5 addresses).
"""

from __future__ import annotations

from typing import Dict, Tuple

from repro.bits.mix import splitmix64
from repro.expanders.base import Expander, StripedExpander

__all__ = ["SeededRandomExpander", "SeededFlatExpander", "splitmix64"]


class SeededRandomExpander(StripedExpander):
    """A striped left-``d``-regular graph with pseudo-random neighbors.

    ``F(x, i) = (i, splitmix64(seed' + x*d + i) mod stripe_size)`` where
    ``seed'`` itself is a mix of the user seed — distinct seeds give
    essentially independent graphs, which Section 4.3 needs (one expander
    per level, "all expander graphs have the same left set U, the same
    degree d" but independent edge sets).
    """

    def __init__(
        self,
        *,
        left_size: int,
        degree: int,
        stripe_size: int,
        seed: int = 0,
        cache_size: int = 1 << 16,
    ):
        if left_size <= 0:
            raise ValueError(f"universe size must be positive, got {left_size}")
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        if stripe_size <= 0:
            raise ValueError(f"stripe size must be positive, got {stripe_size}")
        self.left_size = left_size
        self.degree = degree
        self.stripe_size = stripe_size
        self.right_size = degree * stripe_size
        self.seed = seed
        self._base = splitmix64(seed ^ 0xA5A5_A5A5_DEAD_BEEF)
        self._cache: Dict[int, Tuple[Tuple[int, int], ...]] = {}  # detlint: guarded(owner-lane) -- idempotent memo of a seeded pure function
        self._cache_size = cache_size

    def striped_neighbors(self, x: int) -> Tuple[Tuple[int, int], ...]:
        self._check_left(x)
        cached = self._cache.get(x)
        if cached is not None:
            return cached
        base = self._base + x * self.degree
        out = tuple(
            (i, splitmix64(base + i) % self.stripe_size)
            for i in range(self.degree)
        )
        if len(self._cache) >= self._cache_size:
            self._cache.clear()
        self._cache[x] = out
        return out

    def batch_local_indices(self, keys, kernel=None):
        """One kernel evaluation of the neighbor map for many keys.

        Bit-identical to the per-key form (same mix, same reduction); the
        graph's tuple cache is bypassed — the callers that batch
        (:class:`~repro.expanders.neighborhoods.NeighborhoodMemo`) hold
        their own memo above this level.
        """
        if kernel is None:
            return super().batch_local_indices(keys)
        for x in keys:
            self._check_left(x)
        return kernel.stripe_local_indices(
            self._base, self.degree, self.stripe_size, keys
        )

    def batch_striped(self, keys, kernel=None):
        """Batched :meth:`striped_neighbors`: cache hits are served as
        usual, misses are evaluated in one kernel call and cached with the
        same wholesale-clear overflow policy as the scalar path."""
        if kernel is None:
            return super().batch_striped(keys)
        out: Dict[int, Tuple[Tuple[int, int], ...]] = {}
        missing = []
        cache = self._cache
        for x in keys:
            cached = cache.get(x)
            if cached is not None:
                out[x] = cached
            else:
                out[x] = ()  # placeholder keeps insertion order
                missing.append(x)
        if missing:
            flat = self.batch_local_indices(missing, kernel=kernel)
            d = self.degree
            limit = self._cache_size
            for pos, x in enumerate(missing):
                t = tuple(enumerate(flat[pos * d : (pos + 1) * d]))
                if len(cache) >= limit:
                    cache.clear()
                cache[x] = t
                out[x] = t
        return out

    def evaluation_memory_words(self) -> int:
        """Words of internal memory the neighbor function needs: O(1)."""
        return 2  # the seed and the derived base constant


class SeededFlatExpander(Expander):
    """A non-striped left-``d``-regular graph with pseudo-random neighbors.

    ``F(x, i) = splitmix64(seed' + x*d + i) mod v``.  Used as the stage
    graphs of the telescope product (Section 5), whose intermediate
    expanders are not striped — only the final composition is adapted to the
    PDM via :class:`~repro.expanders.striping.TriviallyStripedExpander` (or
    used directly in the parallel disk head model).
    """

    def __init__(
        self,
        *,
        left_size: int,
        degree: int,
        right_size: int,
        seed: int = 0,
        cache_size: int = 1 << 16,
    ):
        if left_size <= 0:
            raise ValueError(f"universe size must be positive, got {left_size}")
        if degree <= 0:
            raise ValueError(f"degree must be positive, got {degree}")
        if right_size <= 0:
            raise ValueError(f"right size must be positive, got {right_size}")
        self.left_size = left_size
        self.degree = degree
        self.right_size = right_size
        self.seed = seed
        self._base = splitmix64(seed ^ 0x0F0F_F0F0_1234_5678)
        self._cache: Dict[int, Tuple[int, ...]] = {}  # detlint: guarded(owner-lane) -- idempotent memo of a seeded pure function
        self._cache_size = cache_size

    def neighbors(self, x: int) -> Tuple[int, ...]:
        self._check_left(x)
        cached = self._cache.get(x)
        if cached is not None:
            return cached
        base = self._base + x * self.degree
        out = tuple(
            splitmix64(base + i) % self.right_size for i in range(self.degree)
        )
        if len(self._cache) >= self._cache_size:
            self._cache.clear()
        self._cache[x] = out
        return out

    def batch_neighbors(self, keys, kernel=None):
        """Batched :meth:`neighbors` via one kernel evaluation; cache
        semantics mirror the scalar path exactly."""
        if kernel is None:
            return super().batch_neighbors(keys)
        out: Dict[int, Tuple[int, ...]] = {}
        missing = []
        cache = self._cache
        for x in keys:
            cached = cache.get(x)
            if cached is not None:
                out[x] = cached
            else:
                out[x] = ()
                missing.append(x)
        if missing:
            for x in missing:
                self._check_left(x)
            flat = kernel.flat_neighbors(
                self._base, self.degree, self.right_size, missing
            )
            d = self.degree
            limit = self._cache_size
            for pos, x in enumerate(missing):
                t = tuple(flat[pos * d : (pos + 1) * d])
                if len(cache) >= limit:
                    cache.clear()
                cache[x] = t
                out[x] = t
        return out

    def evaluation_memory_words(self) -> int:
        """Words of internal memory the neighbor function needs: O(1)."""
        return 2
