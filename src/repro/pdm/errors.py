"""Typed I/O fault errors.

The fault-injection layer (:mod:`repro.pdm.faults`, driven by
:mod:`repro.faults`) makes :meth:`~repro.pdm.machine.AbstractDiskMachine.
read_blocks` / ``write_blocks`` surface failures as *typed* exceptions, so
recovery code can distinguish the paper-relevant failure modes:

* :class:`DiskFailure` — a device is down (outage window of a fault plan);
  every block on it is unreachable until the outage ends.  The structures'
  intrinsic redundancy — ``d`` candidate disks per bucket (Lemma 3),
  ``ceil(2d/3)`` fields per key across ``d`` stripes (Lemma 5) — is what
  makes lookups survivable despite this.
* :class:`TransientIOError` — a read attempt failed but retrying later
  (a later round) may succeed.  The machine retries these itself up to
  its ``retry_budget``, charging the extra rounds as ``retry_ios``.
* :class:`BlockCorruption` — a block's contents no longer match its
  checksum (silent corruption made detectable by verify-on-read; see
  :mod:`repro.pdm.block`).  Degraded dictionary reads treat the block as
  lost and may *read-repair* it from redundancy.

All three derive from :class:`IOFault`; catching that one class is the
"any injected fault" handler.  Exceptions carry the failing addresses and
the logical round clock so failures are reproducible bit-for-bit.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

Addr = Tuple[int, int]


class IOFault(Exception):
    """Base class of every injected/detected I/O failure."""

    def __init__(
        self,
        message: str,
        *,
        addrs: Sequence[Addr] = (),
        disk: Optional[int] = None,
        clock: Optional[int] = None,
    ):
        super().__init__(message)
        self.addrs: Tuple[Addr, ...] = tuple(addrs)
        self.disk = disk
        self.clock = clock

    @property
    def kind(self) -> str:
        return type(self).__name__


class DiskFailure(IOFault):
    """The addressed disk is down (fault-plan outage window)."""


class TransientIOError(IOFault):
    """A read attempt failed; a retry in a later round may succeed."""


class BlockCorruption(IOFault):
    """A block's payload does not match its stored checksum."""
