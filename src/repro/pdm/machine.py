"""The parallel disk model machines.

Two cost models from the paper:

* :class:`ParallelDiskMachine` — the parallel disk model [19].  One parallel
  I/O touches at most one block on each of the ``D`` disks; a batch that
  needs ``m_i`` blocks from disk ``i`` costs ``max_i m_i`` rounds.
* :class:`ParallelDiskHeadMachine` — the parallel disk *head* model [1]: one
  disk with ``D`` independent heads, so any ``D`` blocks can be touched per
  round and a batch of ``m`` distinct blocks costs ``ceil(m / D)`` rounds.
  This model is strictly stronger; Section 5's non-striped expanders need it
  (or a factor-``d`` space blow-up from trivial striping).

Addresses are ``(disk_id, block_index)`` pairs.  Blocks are read and written
whole, as in the model.
"""

from __future__ import annotations

import math
from typing import Any, Dict, Iterable, List, Sequence, Tuple

from repro.pdm.block import Block
from repro.pdm.disk import Disk
from repro.pdm.iostats import IOStats
from repro.pdm.memory import InternalMemory

Addr = Tuple[int, int]


class AbstractDiskMachine:
    """Shared plumbing of the two cost models.

    Parameters
    ----------
    num_disks:
        ``D``, the number of storage devices (or heads).
    block_items:
        ``B``, the capacity of a block in data items.
    item_bits:
        Size of one data item in bits.  The paper assumes a data item is
        large enough to hold a pointer or a key; 64 is a realistic default.
    memory_words:
        Optional internal-memory capacity in items/words (``None`` means
        unbounded but still tracked).
    """

    model_name = "abstract"

    def __init__(
        self,
        num_disks: int,
        block_items: int,
        *,
        item_bits: int = 64,
        memory_words: int | None = None,
    ):
        if num_disks <= 0:
            raise ValueError(f"need at least one disk, got {num_disks}")
        if block_items <= 0:
            raise ValueError(f"block capacity must be positive, got {block_items}")
        if item_bits <= 0:
            raise ValueError(f"item size must be positive, got {item_bits}")
        self.num_disks = num_disks
        self.block_items = block_items
        self.item_bits = item_bits
        self.block_bits = block_items * item_bits
        self.disks: List[Disk] = [
            Disk(i, self.block_bits) for i in range(num_disks)
        ]
        self.stats = IOStats()
        self.memory = InternalMemory(capacity_words=memory_words)
        self._next_free: List[int] = [0] * num_disks
        #: optional :class:`repro.pdm.trace.TraceRecorder`
        self.tracer = None
        #: optional :class:`repro.pdm.spans.SpanRecorder` (hierarchical
        #: operation spans; attach with :func:`repro.pdm.spans.attach_spans`)
        self.spans = None

    # -- allocation ---------------------------------------------------------

    def allocate(self, disk_id: int, count: int) -> int:
        """Reserve ``count`` consecutive block indices on ``disk_id`` and
        return the first.  A bump allocator: structures sharing a machine
        claim disjoint address ranges up front."""
        if not 0 <= disk_id < self.num_disks:
            raise IndexError(f"disk {disk_id} out of range")
        if count < 0:
            raise ValueError(f"cannot allocate a negative count ({count})")
        start = self._next_free[disk_id]
        self._next_free[disk_id] = start + count
        return start

    # -- addressing -------------------------------------------------------

    @property
    def D(self) -> int:
        """Alias matching the paper's notation for the number of disks."""
        return self.num_disks

    @property
    def B(self) -> int:
        """Alias matching the paper's notation for the block capacity."""
        return self.block_items

    def _check_addr(self, addr: Addr) -> None:
        disk_id, block_index = addr
        if not 0 <= disk_id < self.num_disks:
            raise IndexError(
                f"disk {disk_id} out of range for machine with "
                f"{self.num_disks} disks"
            )
        if block_index < 0:
            raise IndexError(f"negative block index {block_index}")

    def block_at(self, addr: Addr) -> Block:
        """Direct block access *without* charging I/O (simulator internals,
        verification and space audits only — algorithms must go through
        :meth:`read_blocks` / :meth:`write_blocks`)."""
        self._check_addr(addr)
        disk_id, block_index = addr
        return self.disks[disk_id].block(block_index)

    # -- cost model (specialised by subclasses) ---------------------------

    def _batch_rounds(self, addrs: Sequence[Addr]) -> int:
        raise NotImplementedError

    # -- I/O operations ----------------------------------------------------

    def read_blocks(self, addrs: Iterable[Addr]) -> Dict[Addr, Block]:
        """Read a batch of blocks; charges the model-specific round count.

        Duplicate addresses are collapsed: a block is transferred once.
        """
        unique = list(dict.fromkeys(tuple(a) for a in addrs))
        if not unique:
            return {}
        for addr in unique:
            self._check_addr(addr)
        rounds = self._batch_rounds(unique)
        self.stats.read_ios += rounds
        self.stats.blocks_read += len(unique)
        if self.tracer is not None:
            self.tracer.record("read", unique, rounds)
        return {addr: self.disks[addr[0]].block(addr[1]) for addr in unique}

    def write_blocks(self, writes: Iterable[Tuple[Addr, Any, int]]) -> None:
        """Write a batch of blocks.

        Each element of ``writes`` is ``(addr, payload, used_bits)``.  The
        same rounds accounting as for reads applies.  Writing the same
        address twice in one batch is an error (the model writes blocks
        atomically once per round).
        """
        writes = list(writes)
        if not writes:
            return
        addrs = [tuple(w[0]) for w in writes]
        if len(set(addrs)) != len(addrs):
            raise ValueError("duplicate address in one write batch")
        for addr in addrs:
            self._check_addr(addr)
        rounds = self._batch_rounds(addrs)
        self.stats.write_ios += rounds
        self.stats.blocks_written += len(addrs)
        if self.tracer is not None:
            self.tracer.record("write", addrs, rounds)
        for (addr, payload, used_bits) in writes:
            self.disks[addr[0]].block(addr[1]).store(payload, used_bits)

    # -- convenience single-block forms ------------------------------------

    def read_block(self, addr: Addr) -> Block:
        return self.read_blocks([addr])[addr]

    def write_block(self, addr: Addr, payload: Any, used_bits: int) -> None:
        self.write_blocks([(addr, payload, used_bits)])

    # -- space audit --------------------------------------------------------

    @property
    def touched_blocks(self) -> int:
        return sum(d.touched_blocks for d in self.disks)

    @property
    def used_bits(self) -> int:
        return sum(d.used_bits for d in self.disks)

    @property
    def footprint_bits(self) -> int:
        """Space by the external-memory convention: every block ever touched
        counts fully, whether or not its payload fills it."""
        return self.touched_blocks * self.block_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(D={self.num_disks}, B={self.block_items}, "
            f"ios={self.stats.total_ios})"
        )


class ParallelDiskMachine(AbstractDiskMachine):
    """The parallel disk model of Vitter and Shriver [19].

    One round moves at most one block per disk, so a batch costs the maximum
    per-disk multiplicity.  Striped layouts (one block per disk) therefore
    finish in a single parallel I/O — this is what makes the paper's striped
    expanders essential.
    """

    model_name = "parallel-disk"

    def _batch_rounds(self, addrs: Sequence[Addr]) -> int:
        per_disk: Dict[int, int] = {}
        for disk_id, _ in addrs:
            per_disk[disk_id] = per_disk.get(disk_id, 0) + 1
        return max(per_disk.values())


class ParallelDiskHeadMachine(AbstractDiskMachine):
    """The parallel disk head model of Aggarwal and Vitter [1].

    One disk with ``D`` read/write heads: any ``D`` blocks per round
    regardless of placement, so a batch of ``m`` blocks costs
    ``ceil(m / D)``.  Strictly stronger than the PDM (and, as the paper
    notes, it "fails to model existing hardware" — we provide it because the
    non-striped expanders of Section 5 are only directly usable here).
    """

    model_name = "parallel-disk-head"

    def _batch_rounds(self, addrs: Sequence[Addr]) -> int:
        return math.ceil(len(addrs) / self.num_disks)
