"""The parallel disk model machines.

Two cost models from the paper:

* :class:`ParallelDiskMachine` — the parallel disk model [19].  One parallel
  I/O touches at most one block on each of the ``D`` disks; a batch that
  needs ``m_i`` blocks from disk ``i`` costs ``max_i m_i`` rounds.
* :class:`ParallelDiskHeadMachine` — the parallel disk *head* model [1]: one
  disk with ``D`` independent heads, so any ``D`` blocks can be touched per
  round and a batch of ``m`` distinct blocks costs ``ceil(m / D)`` rounds.
  This model is strictly stronger; Section 5's non-striped expanders need it
  (or a factor-``d`` space blow-up from trivial striping).

Addresses are ``(disk_id, block_index)`` pairs.  Blocks are read and written
whole, as in the model.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from dataclasses import dataclass, replace
from typing import Any, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.bits.mix import derive
from repro.pdm.block import Block
from repro.pdm.cache import attach_cache
from repro.pdm.disk import Disk
from repro.pdm.errors import BlockCorruption, DiskFailure, IOFault, TransientIOError
from repro.pdm.executors.base import RoundExecutor, SimulatedExecutor
from repro.pdm.health import RetryPolicy
from repro.pdm.iostats import IOStats
from repro.pdm.memory import InternalMemory

Addr = Tuple[int, int]


@dataclass(frozen=True, slots=True)
class RoundPlan:
    """An explicit parallel-round schedule for one batched I/O.

    ``rounds[r]`` lists the block requests served in parallel round ``r``.
    Under the PDM discipline every round touches at most one block per disk
    and at most ``D`` blocks total; under the head model only the ``D``-
    blocks-per-round cap applies.  The plan is what the model's batch cost
    *means* operationally: ``read_blocks`` charges exactly ``num_rounds``
    rounds for the same address set (asserted by the round-packing tests).
    """

    rounds: Tuple[Tuple[Addr, ...], ...]
    requested: int  # request count before dedup

    @property
    def num_rounds(self) -> int:
        return len(self.rounds)

    @property
    def unique_blocks(self) -> int:
        return sum(len(r) for r in self.rounds)

    @property
    def duplicates(self) -> int:
        """Requests collapsed by dedup — blocks shared between batch keys."""
        return self.requested - self.unique_blocks

    @property
    def max_width(self) -> int:
        return max((len(r) for r in self.rounds), default=0)

    def to_dict(self) -> Dict[str, int]:
        return {
            "requested": self.requested,
            "unique_blocks": self.unique_blocks,
            "duplicates": self.duplicates,
            "num_rounds": self.num_rounds,
            "max_width": self.max_width,
        }


def pack_rounds(
    addrs: Iterable[Addr],
    *,
    num_disks: int,
    distinct_disks: bool = True,
    salt: int = 0,
    kernel=None,
    priorities: Optional[Sequence[int]] = None,
) -> RoundPlan:
    """Pack block requests into parallel I/O rounds.

    Duplicate addresses collapse first (a block is transferred once).  The
    surviving requests are ordered deterministically by a
    :func:`repro.bits.mix.derive`-keyed priority — the schedule depends only
    on the address set and ``salt``, never on caller iteration order — and
    placed greedily: each request goes to the earliest round that still has
    a free slot, where *conflict* means the round already touches the same
    disk (``distinct_disks=True``, the PDM rule) or is already ``num_disks``
    wide (both models).  A conflicting request spills to the next round.

    For the PDM the greedy schedule is optimal: disk ``i``'s requests
    occupy a prefix of rounds, so ``num_rounds`` equals the max per-disk
    multiplicity — exactly what :meth:`ParallelDiskMachine._batch_rounds`
    charges.  For the head model it yields ``ceil(unique / D)``.

    The priority stream can be supplied in bulk instead of derived per
    address: ``kernel`` evaluates it in one :meth:`~repro.kernels.base.
    Kernel.derive_pairs` call, or ``priorities`` passes it precomputed
    (one value per *deduplicated* address, first-appearance order — i.e.
    pass already-unique addresses when using it).  Both are bit-identical
    to the per-address ``derive`` (the kernel suite pins this), so the
    schedule never depends on which path produced it.
    """
    if num_disks <= 0:
        raise ValueError(f"need at least one disk, got {num_disks}")
    requests = [tuple(a) for a in addrs]
    unique = list(dict.fromkeys(requests))
    if priorities is None and kernel is not None:
        priorities = kernel.derive_pairs(salt, unique)
    if priorities is not None:
        if len(priorities) != len(unique):
            raise ValueError(
                f"got {len(priorities)} priorities for {len(unique)} "
                f"unique addresses"
            )
        order = sorted(
            range(len(unique)), key=lambda i: (priorities[i], unique[i])
        )
        ordered = [unique[i] for i in order]
    else:
        ordered = sorted(
            unique, key=lambda a: (derive(salt, a[0], a[1]), a)
        )
    rounds: List[List[Addr]] = []
    widths: List[int] = []
    next_free: Dict[int, int] = {}
    for addr in ordered:
        if distinct_disks:
            # Disk addr[0] occupies a prefix of rounds: its next free round
            # is tracked directly (spilling past every same-disk conflict).
            r = next_free.get(addr[0], 0)
            while r < len(rounds) and widths[r] >= num_disks:
                r += 1
            next_free[addr[0]] = r + 1
        else:
            r = 0
            while r < len(rounds) and widths[r] >= num_disks:
                r += 1
        while len(rounds) <= r:
            rounds.append([])
            widths.append(0)
        rounds[r].append(addr)
        widths[r] += 1
    return RoundPlan(
        rounds=tuple(tuple(r) for r in rounds),
        requested=len(requests),
    )


class AbstractDiskMachine:
    """Shared plumbing of the two cost models.

    Parameters
    ----------
    num_disks:
        ``D``, the number of storage devices (or heads).
    block_items:
        ``B``, the capacity of a block in data items.
    item_bits:
        Size of one data item in bits.  The paper assumes a data item is
        large enough to hold a pointer or a key; 64 is a realistic default.
    memory_words:
        Optional internal-memory capacity in items/words (``None`` means
        unbounded but still tracked).
    cache_blocks:
        Optional buffer-pool size in blocks (:mod:`repro.pdm.cache`).
        Charged against internal memory at ``B`` words per block, so with
        ``memory_words=M`` the pool is bounded by ``⌊M/B⌋`` blocks.  Cached
        reads cost zero I/Os; writes are absorbed and flushed on eviction.
        ``None`` (the default) keeps the machine uncached — the mode the
        theorem-bound monitors assume.
    executor:
        Optional physical backend (:mod:`repro.pdm.executors`).  ``None``
        means the in-memory :class:`~repro.pdm.executors.base.SimulatedExecutor`
        — exactly the pre-seam behavior.  The machine keeps every charge,
        plan, fault, cache and health decision regardless of executor, so
        ``IOStats``/``OpCost``/``RoundPlan`` accounting is bit-identical
        across backends (see ``docs/executors.md``).
    """

    model_name = "abstract"

    def __init__(
        self,
        num_disks: int,
        block_items: int,
        *,
        item_bits: int = 64,
        memory_words: int | None = None,
        cache_blocks: int | None = None,
        executor: RoundExecutor | None = None,
    ):
        if num_disks <= 0:
            raise ValueError(f"need at least one disk, got {num_disks}")
        if block_items <= 0:
            raise ValueError(f"block capacity must be positive, got {block_items}")
        if item_bits <= 0:
            raise ValueError(f"item size must be positive, got {item_bits}")
        self.num_disks = num_disks
        self.block_items = block_items
        self.item_bits = item_bits
        self.block_bits = block_items * item_bits
        self.disks: List[Disk] = [  # detlint: guarded(machine-op) -- slot swaps (attach/detach faults, replace_disk) happen only on the single machine-op lane; executor worker lanes never touch the list
            Disk(i, self.block_bits) for i in range(num_disks)
        ]
        self.stats = IOStats()
        self.memory = InternalMemory(capacity_words=memory_words)
        self._next_free: List[int] = [0] * num_disks
        #: optional :class:`repro.pdm.trace.TraceRecorder`
        self.tracer = None
        #: optional :class:`repro.pdm.spans.SpanRecorder` (hierarchical
        #: operation spans; attach with :func:`repro.pdm.spans.attach_spans`)
        self.spans = None
        #: optional :class:`repro.pdm.faults.FaultInjector` (attach with
        #: :func:`repro.pdm.faults.attach_faults`); same one-``None``-check
        #: hot-path contract as ``tracer``/``spans``
        self.faults = None
        #: optional :class:`repro.pdm.cache.BufferPool` (M-bounded write-back
        #: block cache; attach with :func:`repro.pdm.cache.attach_cache` or
        #: the ``cache_blocks`` constructor knob).  Same one-``None``-check
        #: hot-path contract as ``tracer``/``spans``/``faults``.
        self.cache = None
        #: when True, writes seal a per-block checksum and reads verify it
        #: (:mod:`repro.pdm.block`); silent corruption becomes a typed
        #: :class:`~repro.pdm.errors.BlockCorruption`
        self.checksums = False
        #: deterministic retry/backoff policy for transient read faults
        #: (:class:`repro.pdm.health.RetryPolicy`).  The default — three
        #: extra attempts, zero backoff — reproduces the legacy flat
        #: ``retry_budget`` accounting exactly.
        self.retry_policy = RetryPolicy()
        #: optional :class:`repro.pdm.health.HealthTracker` (attach with
        #: :func:`repro.pdm.health.attach_health`); same one-``None``-check
        #: contract as ``tracer``/``spans``/``faults``/``cache``
        self.health = None
        #: optional ``{disk_id: Disk}`` rebuild mirror installed by the
        #: recovery manager: while a failed disk rebuilds onto a spare,
        #: foreground writes addressed to it land on the spare (same
        #: charges) instead of raising, so the swapped-in disk is current
        self.rebuild_mirror = None
        # Shared stand-in for reads of never-written blocks: read paths use
        # Disk.peek so read-only probes don't materialise storage (and don't
        # inflate touched_blocks/footprint).  Callers treat read results as
        # immutable — all mutation goes through write_blocks.
        self._void_block = Block(self.block_bits)
        #: the physical backend (:mod:`repro.pdm.executors`); the logical
        #: store above stays authoritative, so every charge is computed
        #: before the executor moves a byte
        self.executor: RoundExecutor = (
            executor if executor is not None else SimulatedExecutor()
        )
        self.executor.bind(self)
        if cache_blocks is not None:
            attach_cache(self, cache_blocks)

    # -- retry policy ------------------------------------------------------

    @property
    def retry_budget(self) -> int:
        """Extra read attempts allowed per batch (compatibility view of
        :attr:`retry_policy`'s ``max_attempts``)."""
        return self.retry_policy.max_attempts

    @retry_budget.setter
    def retry_budget(self, value: int) -> None:
        if value < 0:
            raise ValueError(f"retry budget must be non-negative, got {value}")
        self.retry_policy = replace(self.retry_policy, max_attempts=value)

    # -- repair attribution ------------------------------------------------

    @contextmanager
    def attribute_repair(self) -> Iterator[None]:
        """Charge every fresh round inside the block to ``repair_ios``.

        Rounds already attributed (``retry_ios`` from retries/backoff,
        ``repair_ios`` from explicit repair writes) are not double-
        counted.  This is how recovery work — rebuild reads, scrub
        passes, journal replays — stays inside the fault-attributable
        overhead channel: the theorem monitors subtract ``retry_ios`` and
        ``repair_ios`` from foreground budgets, so repair I/O metered
        through this context never inflates a charged-cost bound.
        """
        stats = self.stats
        before_total = stats.read_ios + stats.write_ios
        before_attr = stats.retry_ios + stats.repair_ios
        try:
            yield
        finally:
            fresh = (stats.read_ios + stats.write_ios - before_total) - (
                stats.retry_ios + stats.repair_ios - before_attr
            )
            if fresh > 0:
                stats.repair_ios += fresh

    def repair_read_blocks(
        self, addrs: Iterable[Addr]
    ) -> Tuple[Dict[Addr, Block], Dict[Addr, "IOFault"]]:
        """Degraded batch read whose rounds are charged as repair I/O —
        the read half of rebuild and scrubbing."""
        with self.attribute_repair():
            return self.read_blocks_degraded(addrs)

    def provision_spare(self, disk_id: int) -> Disk:
        """A fresh, empty disk with this machine's block geometry, taking
        over ``disk_id``'s address slot.  Provisioning itself is free; the
        rebuild that populates the spare pays for every block through
        ``write_blocks(repair=True)``."""
        return Disk(disk_id, self.block_bits)

    def replace_disk(self, disk_id: int, disk: Disk) -> Disk:
        """Install ``disk`` in address slot ``disk_id``, returning the
        displaced disk.

        The structural half of a rebuild's final swap (the recovery
        manager calls this with the respawned spare): the logical store
        changes hands without any charged I/O — every block on the spare
        was already paid for via ``write_blocks(repair=True)`` — and a
        physical backend rewrites the slot's image from the new logical
        contents so a real-file medium never serves the dead disk's data.
        """
        if not 0 <= disk_id < self.num_disks:
            raise IndexError(f"disk {disk_id} out of range")
        old = self.disks[disk_id]
        self.disks[disk_id] = disk
        executor = self.executor
        if not executor.inline:
            executor.resync_disk(disk_id)
        return old

    def close(self) -> None:
        """Release executor-held physical resources (worker threads, file
        descriptors).  A no-op for the in-memory simulator; file- and
        process-backed machines must be closed before their directory
        goes away.  Idempotent."""
        self.executor.close()

    # -- allocation ---------------------------------------------------------

    def allocate(self, disk_id: int, count: int) -> int:
        """Reserve ``count`` consecutive block indices on ``disk_id`` and
        return the first.  A bump allocator: structures sharing a machine
        claim disjoint address ranges up front."""
        if not 0 <= disk_id < self.num_disks:
            raise IndexError(f"disk {disk_id} out of range")
        if count < 0:
            raise ValueError(f"cannot allocate a negative count ({count})")
        start = self._next_free[disk_id]
        self._next_free[disk_id] = start + count
        return start

    # -- addressing -------------------------------------------------------

    @property
    def D(self) -> int:
        """Alias matching the paper's notation for the number of disks."""
        return self.num_disks

    @property
    def B(self) -> int:
        """Alias matching the paper's notation for the block capacity."""
        return self.block_items

    def _check_addr(self, addr: Addr) -> None:
        disk_id, block_index = addr
        if not 0 <= disk_id < self.num_disks:
            raise IndexError(
                f"disk {disk_id} out of range for machine with "
                f"{self.num_disks} disks"
            )
        if block_index < 0:
            raise IndexError(f"negative block index {block_index}")

    def block_at(self, addr: Addr) -> Block:
        """Direct block access *without* charging I/O (simulator internals,
        verification and space audits only — algorithms must go through
        :meth:`read_blocks` / :meth:`write_blocks`)."""
        self._check_addr(addr)
        disk_id, block_index = addr
        return self.disks[disk_id].block(block_index)

    def peek_at(self, addr: Addr) -> Block | None:
        """Like :meth:`block_at` but returns ``None`` for a never-written
        block instead of materialising it — audits and read-modify-write
        staging don't inflate ``touched_blocks``.

        With a buffer pool attached the pool is consulted first: under
        write-back the pool holds the logical latest contents, so staging
        and audits must see it.  The fault layer invalidates cached copies
        it corrupts, so a peek never resurrects pre-corruption data."""
        self._check_addr(addr)
        disk_id, block_index = addr
        cache = self.cache
        if cache is not None:
            blk = cache.peek((disk_id, block_index))
            if blk is not None:
                return blk
        return self.disks[disk_id].peek(block_index)

    # -- cost model (specialised by subclasses) ---------------------------

    def _batch_rounds(self, addrs: Sequence[Addr]) -> int:
        raise NotImplementedError

    def rounds_for_counts(self, unique_count: int, max_per_disk: int) -> int:
        """The model's round charge from batch *summary statistics* alone.

        Equals ``_batch_rounds(unique)`` for any deduplicated batch with
        ``unique_count`` blocks of which at most ``max_per_disk`` share a
        disk — the two numbers the kernels' probe planner already computes,
        so batch callers can price a fetch without rebuilding per-disk
        tallies in Python.
        """
        raise NotImplementedError

    def batch_rounds(self, addrs: Iterable[Addr]) -> int:
        """Rounds one batched transfer of ``addrs`` would charge (after
        dedup) — the model-specific cost without performing any I/O.
        Batch schedulers use this to price the sequential baseline."""
        unique = list(dict.fromkeys(tuple(a) for a in addrs))
        if not unique:
            return 0
        return self._batch_rounds(unique)

    def plan_rounds(
        self, addrs: Iterable[Addr], *, salt: int = 0, kernel=None,
        priorities: Optional[Sequence[int]] = None,
    ) -> RoundPlan:
        """Explicit round schedule for a batch under this cost model.

        ``plan_rounds(addrs).num_rounds == batch_rounds(addrs)`` always —
        the plan is the constructive witness of the charged cost.  A batch
        kernel (or a precomputed ``priorities`` stream, see
        :func:`pack_rounds`) evaluates the packing priorities in bulk
        without changing the schedule."""
        return pack_rounds(
            addrs,
            num_disks=self.num_disks,
            distinct_disks=self.rounds_need_distinct_disks,
            salt=salt,
            kernel=kernel,
            priorities=priorities,
        )

    #: PDM rounds may touch each disk once; the head model has no such rule.
    rounds_need_distinct_disks = True

    def read_rounds(
        self, addrs: Iterable[Addr], *, salt: int = 0
    ) -> Tuple[Dict[Addr, Block], RoundPlan]:
        """Batched read returning both the blocks and the round schedule.

        Identical cost and fault semantics to :meth:`read_blocks`; the plan
        sees the raw request list so its ``duplicates`` counter reports the
        dedup savings to the batch dictionary operations.  With a buffer
        pool attached, cached addresses are dropped from the plan *before*
        rounds are packed — hits cost zero I/Os, so the schedule covers
        only the misses the machine will actually charge."""
        requests = [tuple(a) for a in addrs]
        plan = self.plan_rounds(self._plan_requests(requests), salt=salt)
        return self.read_blocks(requests), plan

    def read_rounds_degraded(
        self, addrs: Iterable[Addr], *, salt: int = 0
    ) -> Tuple[Dict[Addr, Block], Dict[Addr, "IOFault"], RoundPlan]:
        """Fault-tolerant :meth:`read_rounds`; see
        :meth:`read_blocks_degraded` for the ``(blocks, failures)`` split."""
        requests = [tuple(a) for a in addrs]
        plan = self.plan_rounds(self._plan_requests(requests), salt=salt)
        blocks, failures = self.read_blocks_degraded(requests)
        return blocks, failures, plan

    def _plan_requests(self, requests: List[Addr]) -> List[Addr]:
        """The requests a round plan should cover: all of them uncached,
        only the (to-be-charged) misses when a buffer pool is attached."""
        cache = self.cache
        if cache is None:
            return requests
        return [a for a in requests if not cache.contains(a)]

    # -- I/O operations ----------------------------------------------------

    def read_blocks(self, addrs: Iterable[Addr]) -> Dict[Addr, Block]:
        """Read a batch of blocks; charges the model-specific round count.

        Duplicate addresses are collapsed: a block is transferred once.
        Blocks never written read back empty without materialising storage
        (``Disk.peek``); treat results as immutable — all mutation goes
        through :meth:`write_blocks`.

        With a fault injector attached, transient errors are retried within
        ``retry_budget`` (charged as ``retry_ios``); any failure that
        survives retries raises its typed :class:`~repro.pdm.errors.IOFault`
        (first failing address in batch order).  Callers prepared to recover
        use :meth:`read_blocks_degraded` instead.
        """
        cache = self.cache
        if (
            cache is None
            and self.faults is None
            and self.tracer is None
            and not self.checksums
            and self.executor.inline
        ):
            # Fast path: nothing attached and the physical store is the
            # logical store, so skip the retry/fault/fill machinery
            # entirely.  Same charges as the general path — rounds for
            # the deduped set, one blocks_read per block.
            unique = dict.fromkeys(map(tuple, addrs))
            if not unique:
                return {}
            blocks: Dict[Addr, Block] = {}
            disks = self.disks
            num_disks = self.num_disks
            void = self._void_block
            for addr in unique:
                disk_id = addr[0]
                if not 0 <= disk_id < num_disks or addr[1] < 0:
                    self._check_addr(addr)
                blk = disks[disk_id]._blocks.get(addr[1])
                blocks[addr] = void if blk is None else blk
            self.stats.read_ios += self._batch_rounds(list(unique))
            self.stats.blocks_read += len(unique)
            return blocks
        unique = list(dict.fromkeys(tuple(a) for a in addrs))
        if not unique:
            return {}
        for addr in unique:
            self._check_addr(addr)
        if cache is not None:
            blocks, failures = self._read_cached(unique)
        else:
            blocks, failures = self._read_batch(unique)
        if failures:
            for addr in unique:
                fault = failures.get(addr)
                if fault is not None:
                    raise fault
        return blocks

    def read_planned_blocks(
        self, unique: Sequence[Addr], rounds: int
    ) -> List[Block]:
        """Charged batch read of an *already planned* fetch.

        ``unique`` must be deduplicated and ``rounds`` must equal
        ``_batch_rounds(unique)`` — callers get both from the kernels'
        :meth:`~repro.kernels.base.Kernel.plan_unique_probe` plus
        :meth:`rounds_for_counts` (the differential suite pins the
        equality).  Returns blocks aligned with ``unique`` — no dict
        build, no payload copies.  Charges are identical to
        :meth:`read_blocks` on the same set; with anything attached
        (cache, faults, tracer, checksums, non-inline executor) it simply
        funnels through :meth:`read_blocks`, recomputing the charge there.
        """
        if not unique:
            return []
        if (
            self.cache is None
            and self.faults is None
            and self.tracer is None
            and not self.checksums
            and self.executor.inline
        ):
            out: List[Block] = []
            disks = self.disks
            num_disks = self.num_disks
            void = self._void_block
            append = out.append
            for addr in unique:
                disk_id = addr[0]
                if not 0 <= disk_id < num_disks or addr[1] < 0:
                    self._check_addr(addr)
                blk = disks[disk_id]._blocks.get(addr[1])
                append(void if blk is None else blk)
            self.stats.read_ios += rounds
            self.stats.blocks_read += len(unique)
            return out
        fetched = self.read_blocks(unique)
        return [fetched[addr] for addr in unique]

    def read_blocks_degraded(
        self, addrs: Iterable[Addr]
    ) -> Tuple[Dict[Addr, Block], Dict[Addr, "IOFault"]]:
        """Fault-tolerant batch read: never raises for injected faults.

        Returns ``(blocks, failures)`` — every requested address appears in
        exactly one of the two maps.  Transients are retried exactly as in
        :meth:`read_blocks`; what remains in ``failures`` is what recovery
        logic (majority decode, choice fallback, read-repair) must absorb.
        """
        unique = list(dict.fromkeys(tuple(a) for a in addrs))
        if not unique:
            return {}, {}
        for addr in unique:
            self._check_addr(addr)
        if self.cache is not None:
            return self._read_cached(unique)
        return self._read_batch(unique)

    def _read_cached(
        self, unique: List[Addr]
    ) -> Tuple[Dict[Addr, Block], Dict[Addr, "IOFault"]]:
        """Cache-aware batch read: hits are served from the pool for free,
        misses go through the ordinary charged path and fill the pool.

        Fault parity with the uncached machine: corruption due at this
        round lands (and invalidates cached copies) *before* hits are
        served, and a hit on a disk that is not ``"ok"`` right now is
        discarded and re-requested through the charged fault machinery —
        a cached copy must never mask an outage or a transient window.
        """
        cache = self.cache
        faults = self.faults
        hits: Dict[Addr, Block] = {}
        misses: List[Addr] = []
        if faults is None:
            for addr in unique:
                blk = cache.get(addr)
                if blk is None:
                    misses.append(addr)
                else:
                    hits[addr] = blk
        else:
            clock = self.stats.total_ios
            faults.apply_due_corruption(clock, self)
            disks = self.disks
            for addr in unique:
                if disks[addr[0]].status_at(clock) != "ok":
                    cache.invalidate(addr)
                    cache.stats.misses += 1
                    misses.append(addr)
                    continue
                blk = cache.get(addr)
                if blk is None:
                    misses.append(addr)
                else:
                    hits[addr] = blk
        if not misses:
            return hits, {}
        blocks, failures = self._read_batch(misses)
        void = self._void_block
        for addr in misses:
            blk = blocks.get(addr)
            if blk is not None and blk is not void:
                # Install the fetched block; callers get the pool-owned
                # copy so later in-place disk corruption can't reach them.
                blocks[addr] = cache.fill(addr, blk, self)
        blocks.update(hits)
        return blocks, failures

    def _read_batch(
        self, unique: List[Addr]
    ) -> Tuple[Dict[Addr, Block], Dict[Addr, "IOFault"]]:
        faults = self.faults
        checksums = self.checksums
        blocks: Dict[Addr, Block] = {}
        failures: Dict[Addr, IOFault] = {}
        pending = list(unique)
        attempt = 0
        while pending:
            clock = self.stats.total_ios
            if faults is not None:
                faults.apply_due_corruption(clock, self)
            rounds = self._batch_rounds(pending)
            extra = 0
            if faults is not None:
                for d in dict.fromkeys(a[0] for a in pending):
                    e = self.disks[d].extra_rounds_at(clock)
                    if e > extra:
                        extra = e
                if extra:
                    faults.count("straggler_rounds", extra)
            self.stats.read_ios += rounds + extra
            # Straggler penalties and full re-issued rounds are real reads,
            # but retry_ios isolates them as fault-attributable overhead.
            self.stats.retry_ios += extra + (rounds if attempt > 0 else 0)
            if self.tracer is not None:
                self.tracer.record("read", pending, rounds + extra)
            health = self.health
            err_kinds: Dict[int, str] = {}
            retry: List[Addr] = []
            # Triage first (fault status is machine policy), then hand the
            # surviving addresses to the executor in one physical batch —
            # that single call is what a file-backed executor parallelises
            # across its per-disk lanes.
            statuses: Optional[List[str]] = None
            to_fetch: List[Addr] = pending
            if faults is not None:
                statuses = [self.disks[a[0]].status_at(clock) for a in pending]
                to_fetch = [
                    a for a, s in zip(pending, statuses) if s == "ok"
                ]
            physical = self.executor.run_read(to_fetch) if to_fetch else {}
            for i, addr in enumerate(pending):
                status = "ok" if statuses is None else statuses[i]
                if status == "down":
                    faults.count("disk_failure")
                    if health is not None:
                        err_kinds[addr[0]] = "down"
                    failures[addr] = DiskFailure(
                        f"disk {addr[0]} is down at round {clock}",
                        addrs=[addr], disk=addr[0], clock=clock,
                    )
                    continue
                if status == "transient":
                    faults.count("transient")
                    if health is not None:
                        err_kinds[addr[0]] = "transient"
                    if attempt < self.retry_budget:
                        retry.append(addr)
                    else:
                        failures[addr] = TransientIOError(
                            f"read of block {addr} still failing after "
                            f"{attempt} retries (budget "
                            f"{self.retry_budget})",
                            addrs=[addr], disk=addr[0], clock=clock,
                        )
                    continue
                blk = physical.get(addr)
                if blk is None:
                    blocks[addr] = self._void_block
                    continue
                if isinstance(blk, IOFault):
                    # The physical medium itself failed the address (torn
                    # frame, lost file) — routed like an injected fault.
                    if health is not None:
                        if isinstance(blk, DiskFailure):
                            err_kinds.setdefault(addr[0], "down")
                        elif isinstance(blk, TransientIOError):
                            err_kinds.setdefault(addr[0], "transient")
                        else:
                            err_kinds.setdefault(addr[0], "corruption")
                    failures[addr] = blk
                    continue
                if checksums and not blk.verify():
                    if health is not None:
                        err_kinds.setdefault(addr[0], "corruption")
                    failures[addr] = BlockCorruption(
                        f"block {addr} failed checksum verification at "
                        f"round {clock}",
                        addrs=[addr], disk=addr[0], clock=clock,
                    )
                    continue
                blocks[addr] = blk
            self.stats.blocks_read += len(to_fetch)
            if health is not None:
                # One observation per disk per round: errors by priority
                # (down > transient > corruption), a clean round otherwise.
                for d, kind in err_kinds.items():
                    health.observe_error(d, kind, clock)
                for d in dict.fromkeys(a[0] for a in pending):
                    if d not in err_kinds:
                        health.observe_ok(d, clock)
            pending = retry
            attempt += 1
            if pending:
                # Deterministic backoff: idle rounds advance the logical
                # clock (so a bounded transient window can expire before
                # the next attempt), charged entirely as retry overhead.
                wait = self.retry_policy.backoff_rounds(attempt - 1)
                if wait:
                    self.stats.read_ios += wait
                    self.stats.retry_ios += wait
        return blocks, failures

    def write_blocks(
        self, writes: Iterable[Tuple[Addr, Any, int]], *, repair: bool = False
    ) -> None:
        """Write a batch of blocks.

        Each element of ``writes`` is ``(addr, payload, used_bits)``.  The
        same rounds accounting as for reads applies.  Writing the same
        address twice in one batch is an error (the model writes blocks
        atomically once per round).

        With a fault injector attached, a write touching a down disk raises
        :class:`~repro.pdm.errors.DiskFailure` *before* any mutation or
        charge — the batch is atomic.  ``repair=True`` marks the rounds as
        ``repair_ios`` (read-repair after detected corruption).

        With a buffer pool attached (and healthy — no injector, so the pool
        is in write-back mode) the batch is *absorbed*: stored in the pool,
        marked dirty, charged nothing now.  The charged write happens when
        the entry is evicted or flushed, through :meth:`flush_writes`.  In
        write-through mode (fault injector attached) and for repair writes
        the disk write happens immediately and cached copies are refreshed.
        """
        writes = list(writes)
        if not writes:
            return
        addrs = [tuple(w[0]) for w in writes]
        if len(set(addrs)) != len(addrs):
            raise ValueError("duplicate address in one write batch")
        for addr in addrs:
            self._check_addr(addr)
        faults = self.faults
        if faults is not None:
            clock = self.stats.total_ios
            mirror = self.rebuild_mirror
            for addr in addrs:
                if self.disks[addr[0]].status_at(clock) == "down":
                    if mirror is not None and addr[0] in mirror:
                        # Disk is rebuilding onto a spare: the write is
                        # diverted there by flush_writes (same charges),
                        # keeping the swapped-in disk current.
                        continue
                    faults.count("disk_failure")
                    if self.health is not None:
                        self.health.observe_error(addr[0], "down", clock)
                    raise DiskFailure(
                        f"cannot write block {addr}: disk {addr[0]} is down "
                        f"at round {clock}",
                        addrs=[addr], disk=addr[0], clock=clock,
                    )
        cache = self.cache
        if cache is not None and not cache.write_through and not repair:
            spill: List[Tuple[Addr, Any, int]] = []
            absorbed: List[Addr] = []
            for addr, (_, payload, used_bits) in zip(addrs, writes):
                if cache.put(addr, payload, used_bits, self):
                    absorbed.append(addr)
                else:  # pool full of pinned entries: write through
                    spill.append((addr, payload, used_bits))
            if absorbed and self.tracer is not None:
                # Zero-round event keeps the write-footprint analysis
                # aware of every logical write, charged or absorbed.
                self.tracer.record("write", absorbed, 0)
            if spill:
                self.flush_writes(spill)
            return
        self.flush_writes(writes, repair=repair)
        if cache is not None:
            for addr, (_, payload, used_bits) in zip(addrs, writes):
                cache.refresh(addr, payload, used_bits)
            cache.stats.write_through_writes += len(writes)

    def flush_writes(
        self, writes: Iterable[Tuple[Addr, Any, int]], *, repair: bool = False
    ) -> None:
        """The charged-write core: rounds, counters, trace event, store
        (and seal under checksums).

        :meth:`write_blocks` funnels here after its validation and cache
        preamble, and the buffer pool calls it directly for evictions and
        :meth:`~repro.pdm.cache.BufferPool.flush` — routing those back
        through ``write_blocks`` would re-absorb the very blocks the pool
        is cleaning.
        """
        writes = list(writes)
        if not writes:
            return
        addrs = [tuple(w[0]) for w in writes]
        rounds = self._batch_rounds(addrs)
        self.stats.write_ios += rounds
        self.stats.blocks_written += len(addrs)
        if repair:
            self.stats.repair_ios += rounds
        if self.tracer is not None:
            self.tracer.record("write", addrs, rounds)
        checksums = self.checksums
        mirror = self.rebuild_mirror
        executor = self.executor
        stored: Optional[List[Tuple[Addr, Block]]] = (
            None if executor.inline else []
        )
        for (addr, payload, used_bits) in writes:
            target = self.disks[addr[0]]
            if mirror is not None:
                spare = mirror.get(addr[0])
                if spare is not None:
                    # Rebuild in progress: the live copy is the spare.
                    target = spare
            blk = target.block(addr[1])
            blk.store(payload, used_bits)
            if checksums:
                blk.seal()
            if stored is not None:
                # addr is the physical slot even when the live copy was
                # diverted to a rebuild spare — the medium's image always
                # tracks the slot the block will be served from.
                stored.append((addr, blk))
        if stored:
            executor.run_write(stored)

    # -- convenience single-block forms ------------------------------------

    def read_block(self, addr: Addr) -> Block:
        return self.read_blocks([addr])[addr]

    def write_block(self, addr: Addr, payload: Any, used_bits: int) -> None:
        self.write_blocks([(addr, payload, used_bits)])

    # -- space audit --------------------------------------------------------

    @property
    def touched_blocks(self) -> int:
        return sum(d.touched_blocks for d in self.disks)

    @property
    def used_bits(self) -> int:
        return sum(d.used_bits for d in self.disks)

    @property
    def footprint_bits(self) -> int:
        """Space by the external-memory convention: every block ever touched
        counts fully, whether or not its payload fills it."""
        return self.touched_blocks * self.block_bits

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"{type(self).__name__}(D={self.num_disks}, B={self.block_items}, "
            f"ios={self.stats.total_ios})"
        )


class ParallelDiskMachine(AbstractDiskMachine):
    """The parallel disk model of Vitter and Shriver [19].

    One round moves at most one block per disk, so a batch costs the maximum
    per-disk multiplicity.  Striped layouts (one block per disk) therefore
    finish in a single parallel I/O — this is what makes the paper's striped
    expanders essential.
    """

    model_name = "parallel-disk"

    def _batch_rounds(self, addrs: Sequence[Addr]) -> int:
        per_disk: Dict[int, int] = {}
        for disk_id, _ in addrs:
            per_disk[disk_id] = per_disk.get(disk_id, 0) + 1
        return max(per_disk.values())

    def rounds_for_counts(self, unique_count: int, max_per_disk: int) -> int:
        return max_per_disk


class ParallelDiskHeadMachine(AbstractDiskMachine):
    """The parallel disk head model of Aggarwal and Vitter [1].

    One disk with ``D`` read/write heads: any ``D`` blocks per round
    regardless of placement, so a batch of ``m`` blocks costs
    ``ceil(m / D)``.  Strictly stronger than the PDM (and, as the paper
    notes, it "fails to model existing hardware" — we provide it because the
    non-striped expanders of Section 5 are only directly usable here).
    """

    model_name = "parallel-disk-head"
    rounds_need_distinct_disks = False

    def _batch_rounds(self, addrs: Sequence[Addr]) -> int:
        return math.ceil(len(addrs) / self.num_disks)

    def rounds_for_counts(self, unique_count: int, max_per_disk: int) -> int:
        return math.ceil(unique_count / self.num_disks)
