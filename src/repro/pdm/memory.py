"""Internal-memory accounting.

The paper's hash-function and expander discussions hinge on what fits in
internal memory: a hash function description must fit (Section 1.1), and the
semi-explicit expanders of Section 5 spend ``O(N^beta)`` words of internal
memory to buy explicitness.  :class:`InternalMemory` tracks word-granular
charges with peak-usage reporting and an optional hard capacity.
"""

from __future__ import annotations


class InternalMemoryExceeded(Exception):
    """Raised when a charge would exceed the configured capacity."""


class InternalMemory:
    """Word-granular internal memory accountant.

    ``capacity_words=None`` means unbounded (usage still tracked, so tests
    and benchmarks can assert the paper's space bounds after the fact).
    """

    __slots__ = ("capacity_words", "used_words", "peak_words")

    def __init__(self, capacity_words: int | None = None):
        if capacity_words is not None and capacity_words <= 0:
            raise ValueError(
                f"memory capacity must be positive, got {capacity_words}"
            )
        self.capacity_words = capacity_words
        self.used_words = 0
        self.peak_words = 0

    def charge(self, words: int) -> None:
        """Allocate ``words`` words of internal memory."""
        if words < 0:
            raise ValueError(f"cannot charge a negative amount ({words})")
        new_used = self.used_words + words
        if self.capacity_words is not None and new_used > self.capacity_words:
            raise InternalMemoryExceeded(
                f"charge of {words} words would use {new_used} of "
                f"{self.capacity_words} available"
            )
        self.used_words = new_used
        if new_used > self.peak_words:
            self.peak_words = new_used

    def release(self, words: int) -> None:
        """Free ``words`` words previously charged."""
        if words < 0:
            raise ValueError(f"cannot release a negative amount ({words})")
        if words > self.used_words:
            raise ValueError(
                f"releasing {words} words but only {self.used_words} are in use"
            )
        self.used_words -= words

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        cap = "inf" if self.capacity_words is None else str(self.capacity_words)
        return (
            f"InternalMemory(used={self.used_words}, peak={self.peak_words}, "
            f"capacity={cap})"
        )
