"""Striped storage layouts.

Every dictionary in Section 4 stores its right-hand-side array (of *fields*
or of *buckets*) split across ``d`` disks according to the stripes of a
striped expander: stripe ``s`` lives entirely on disk ``disk_offset + s``,
so fetching one field/bucket from each stripe is a single parallel I/O.

Two layouts:

* :class:`StripedFieldArray` — sub-block fields of a fixed bit width, packed
  ``block_bits // field_bits`` to a block (Theorem 6's array ``A``).
* :class:`StripedItemBuckets` — one bucket per block, holding up to ``B``
  items (the Section 4.1 load-balanced bucket dictionary).
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.pdm.machine import AbstractDiskMachine

FieldLoc = Tuple[int, int]  # (stripe, index within stripe)


class StripedFieldArray:
    """An array of ``d * stripe_size`` fields of ``field_bits`` bits each,
    laid out in ``d`` stripes with stripe ``s`` on disk ``disk_offset + s``.

    Fields are addressed by ``(stripe, index)`` — exactly the form a striped
    expander's neighbor function returns.  A batch touching at most one
    *block* per stripe costs one parallel I/O; since consecutive indices of a
    stripe share blocks, even several fields of one stripe may still be one
    block.
    """

    def __init__(
        self,
        machine: AbstractDiskMachine,
        *,
        stripes: int,
        stripe_size: int,
        field_bits: int,
        disk_offset: int = 0,
    ):
        if stripes <= 0:
            raise ValueError(f"need at least one stripe, got {stripes}")
        if stripe_size <= 0:
            raise ValueError(f"stripe size must be positive, got {stripe_size}")
        if field_bits <= 0:
            raise ValueError(f"field width must be positive, got {field_bits}")
        if disk_offset < 0 or disk_offset + stripes > machine.num_disks:
            raise ValueError(
                f"stripes [{disk_offset}, {disk_offset + stripes}) do not fit "
                f"on a machine with {machine.num_disks} disks"
            )
        if field_bits > machine.block_bits:
            raise ValueError(
                f"a {field_bits}-bit field does not fit in a "
                f"{machine.block_bits}-bit block"
            )
        self.machine = machine
        self.stripes = stripes
        self.stripe_size = stripe_size
        self.field_bits = field_bits
        self.disk_offset = disk_offset
        self.fields_per_block = machine.block_bits // field_bits
        self.blocks_per_stripe = -(-stripe_size // self.fields_per_block)
        # Claim a disjoint block range on each stripe's disk.
        self._base = [
            machine.allocate(disk_offset + s, self.blocks_per_stripe)
            for s in range(stripes)
        ]

    # -- geometry -----------------------------------------------------------

    @property
    def num_fields(self) -> int:
        return self.stripes * self.stripe_size

    def _check_loc(self, loc: FieldLoc) -> None:
        stripe, index = loc
        if not 0 <= stripe < self.stripes:
            raise IndexError(f"stripe {stripe} out of range [0, {self.stripes})")
        if not 0 <= index < self.stripe_size:
            raise IndexError(
                f"field index {index} out of range [0, {self.stripe_size})"
            )

    def _block_addr(self, loc: FieldLoc) -> Tuple[Tuple[int, int], int]:
        """Map a field location to ``((disk, block), slot)``."""
        stripe, index = loc
        block_index = self._base[stripe] + index // self.fields_per_block
        slot = index % self.fields_per_block
        return (self.disk_offset + stripe, block_index), slot

    def block_addrs(self, locs: Iterable[FieldLoc]) -> List[Tuple[int, int]]:
        """Block addresses backing the given field locations (duplicates
        preserved — round planners deduplicate).  Used by the batch layer
        to price and pack multi-key probes."""
        out = []
        for loc in locs:
            loc = tuple(loc)
            self._check_loc(loc)
            out.append(self._block_addr(loc)[0])
        return out

    def extents(self) -> List[Tuple[int, int, int]]:
        """Owned block ranges as ``(disk, first_block, count)`` — the
        registration unit of the recovery layer (rebuild and scrub walk
        these ranges)."""
        return [
            (self.disk_offset + s, self._base[s], self.blocks_per_stripe)
            for s in range(self.stripes)
        ]

    # -- I/O ------------------------------------------------------------------

    def read_fields(self, locs: Iterable[FieldLoc]) -> Dict[FieldLoc, Any]:
        """Fetch the given fields; ``None`` denotes an empty field.

        Cost: one batched read on the underlying machine (1 parallel I/O when
        at most one block per stripe is involved).
        """
        locs = [tuple(l) for l in locs]
        for loc in locs:
            self._check_loc(loc)
        addr_of = {loc: self._block_addr(loc) for loc in locs}
        blocks = self.machine.read_blocks(addr for addr, _ in addr_of.values())
        out: Dict[FieldLoc, Any] = {}
        for loc, (addr, slot) in addr_of.items():
            payload = blocks[addr].payload
            out[loc] = None if payload is None else payload[slot]
        return out

    def read_fields_degraded(
        self, locs: Iterable[FieldLoc]
    ) -> Tuple[Dict[FieldLoc, Any], Dict[FieldLoc, Any]]:
        """Fault-tolerant variant of :meth:`read_fields`.

        Returns ``(values, failures)``: every requested location lands in
        exactly one map, failures carrying the typed
        :class:`~repro.pdm.errors.IOFault` that made its block unreadable.
        """
        locs = [tuple(l) for l in locs]
        for loc in locs:
            self._check_loc(loc)
        addr_of = {loc: self._block_addr(loc) for loc in locs}
        blocks, faults = self.machine.read_blocks_degraded(
            addr for addr, _ in addr_of.values()
        )
        out: Dict[FieldLoc, Any] = {}
        failures: Dict[FieldLoc, Any] = {}
        for loc, (addr, slot) in addr_of.items():
            fault = faults.get(addr)
            if fault is not None:
                failures[loc] = fault
                continue
            payload = blocks[addr].payload
            out[loc] = None if payload is None else payload[slot]
        return out, failures

    def write_fields(self, assignments: Mapping[FieldLoc, Any]) -> None:
        """Store values into fields (``None`` clears a field).

        Cost: one batched write.  The model's read-before-write is *not*
        charged here — callers read the blocks as part of their own probe
        (that is how the paper reaches "2 I/Os, the best possible" updates).
        """
        by_block: Dict[Tuple[int, int], List[Tuple[int, Any]]] = {}
        for loc, value in assignments.items():
            self._check_loc(loc)
            addr, slot = self._block_addr(loc)
            by_block.setdefault(addr, []).append((slot, value))
        writes = []
        for addr, slot_values in by_block.items():
            block = self.machine.peek_at(addr)
            payload: List[Any]
            if block is None or block.payload is None:
                payload = [None] * self.fields_per_block
            else:
                payload = list(block.payload)
            for slot, value in slot_values:
                payload[slot] = value
            used = sum(1 for v in payload if v is not None) * self.field_bits
            writes.append((addr, payload, used))
        self.machine.write_blocks(writes)

    def repair_fields(self, assignments: Mapping[FieldLoc, Any]) -> None:
        """Rewrite fields onto *scrubbed* blocks (read-repair; charged as
        ``repair_ios``).

        After a checksum mismatch the block's other slots are garbage of
        unknown shape, so repair starts from an empty payload and restores
        only the fields the caller reconstructed from redundancy; sibling
        keys' fields heal on their own next lookups.
        """
        by_block: Dict[Tuple[int, int], List[Tuple[int, Any]]] = {}
        for loc, value in assignments.items():
            self._check_loc(loc)
            addr, slot = self._block_addr(loc)
            by_block.setdefault(addr, []).append((slot, value))
        writes = []
        for addr, slot_values in by_block.items():
            payload: List[Any] = [None] * self.fields_per_block
            for slot, value in slot_values:
                payload[slot] = value
            used = sum(1 for v in payload if v is not None) * self.field_bits
            writes.append((addr, payload, used))
        self.machine.write_blocks(writes, repair=True)

    # -- audits (no I/O charged) ----------------------------------------------

    def peek(self, loc: FieldLoc) -> Any:
        """Read a field without charging I/O (tests/verification only)."""
        self._check_loc(loc)
        addr, slot = self._block_addr(loc)
        block = self.machine.peek_at(addr)
        payload = None if block is None else block.payload
        return None if payload is None else payload[slot]

    def occupied_fields(self) -> int:
        """Number of non-empty fields (audit; no I/O charged)."""
        count = 0
        for stripe in range(self.stripes):
            disk = self.machine.disks[self.disk_offset + stripe]
            base = self._base[stripe]
            for block_index in range(base, base + self.blocks_per_stripe):
                block = disk.peek(block_index)
                payload = None if block is None else block.payload
                if payload is not None:
                    count += sum(1 for v in payload if v is not None)
        return count

    @property
    def total_bits(self) -> int:
        """Declared external space of the array (all stripes, all blocks)."""
        return self.stripes * self.blocks_per_stripe * self.machine.block_bits


class StripedItemBuckets:
    """``d * stripe_size`` buckets holding up to ``capacity_items`` items
    apiece.

    This is the storage beneath the Section 4.1 dictionary.  With
    ``B = Omega(log N)`` the Lemma 3 load bound keeps every bucket inside
    one block and a probe of one bucket per stripe is one parallel I/O; for
    smaller ``B`` a bucket spans ``blocks_per_bucket`` consecutive blocks of
    the same disk (the "O(1) blocks, contents stored in a trivial way" case,
    where lookups remain O(1) I/Os but not one-probe).
    """

    def __init__(
        self,
        machine: AbstractDiskMachine,
        *,
        stripes: int,
        stripe_size: int,
        capacity_items: Optional[int] = None,
        item_bits: Optional[int] = None,
        disk_offset: int = 0,
    ):
        if stripes <= 0:
            raise ValueError(f"need at least one stripe, got {stripes}")
        if stripe_size <= 0:
            raise ValueError(f"stripe size must be positive, got {stripe_size}")
        if disk_offset < 0 or disk_offset + stripes > machine.num_disks:
            raise ValueError(
                f"stripes [{disk_offset}, {disk_offset + stripes}) do not fit "
                f"on a machine with {machine.num_disks} disks"
            )
        self.machine = machine
        self.stripes = stripes
        self.stripe_size = stripe_size
        self.item_bits = machine.item_bits if item_bits is None else item_bits
        max_items = machine.block_bits // self.item_bits
        self.capacity_items = max_items if capacity_items is None else capacity_items
        if self.capacity_items <= 0:
            raise ValueError("bucket capacity must be positive")
        self.items_per_block = max_items
        if self.items_per_block <= 0:
            raise ValueError(
                f"an item of {self.item_bits} bits does not fit in a "
                f"{machine.block_bits}-bit block"
            )
        self.blocks_per_bucket = -(-self.capacity_items // self.items_per_block)
        self.disk_offset = disk_offset
        # Claim a disjoint block range on each stripe's disk.
        self._base = [
            machine.allocate(
                disk_offset + s, stripe_size * self.blocks_per_bucket
            )
            for s in range(stripes)
        ]

    @property
    def num_buckets(self) -> int:
        return self.stripes * self.stripe_size

    def _check_loc(self, loc: FieldLoc) -> None:
        stripe, index = loc
        if not 0 <= stripe < self.stripes:
            raise IndexError(f"stripe {stripe} out of range [0, {self.stripes})")
        if not 0 <= index < self.stripe_size:
            raise IndexError(
                f"bucket index {index} out of range [0, {self.stripe_size})"
            )

    def _addrs(self, loc: FieldLoc) -> List[Tuple[int, int]]:
        """All block addresses of one bucket (consecutive on its disk)."""
        stripe, index = loc
        first = self._base[stripe] + index * self.blocks_per_bucket
        disk = self.disk_offset + stripe
        return [(disk, first + t) for t in range(self.blocks_per_bucket)]

    def block_addrs(self, locs: Iterable[FieldLoc]) -> List[Tuple[int, int]]:
        """Block addresses backing the given buckets (one per block, in
        bucket order); the batch layer's pricing/packing input."""
        out = []
        for loc in locs:
            loc = tuple(loc)
            self._check_loc(loc)
            out.extend(self._addrs(loc))
        return out

    def extents(self) -> List[Tuple[int, int, int]]:
        """Owned block ranges as ``(disk, first_block, count)`` — the
        registration unit of the recovery layer."""
        return [
            (
                self.disk_offset + s,
                self._base[s],
                self.stripe_size * self.blocks_per_bucket,
            )
            for s in range(self.stripes)
        ]

    def probe_plan(self, locals_flat: Sequence[int], kernel):
        """Kernel probe plan over flat per-stripe bucket indices.

        ``locals_flat`` holds ``stripes`` local indices per key (the
        ``NeighborhoodMemo`` flat layout); single-block buckets only
        (``blocks_per_bucket == 1``, the one-probe layout — multi-block
        buckets take the scalar path).  Returns ``(unique_addrs,
        max_per_disk, inverse)`` from :meth:`repro.kernels.base.Kernel.
        plan_unique_probe`; the dedup order equals the scalar
        ``dict.fromkeys`` order over the same probe sequence, and
        ``inverse`` (backend-shaped) maps each flat position back to its
        unique index for the kernel's candidate matching.
        """
        if self.blocks_per_bucket != 1:
            raise ValueError(
                "probe_plan covers single-block buckets only "
                f"(blocks_per_bucket={self.blocks_per_bucket})"
            )
        return kernel.plan_unique_probe(
            locals_flat, self.stripes, self._base, self.disk_offset
        )

    def read_buckets(self, locs: Iterable[FieldLoc]) -> Dict[FieldLoc, List[Any]]:
        """Fetch bucket contents as item lists (empty list if untouched).

        Multi-block buckets live on one disk, so reading a bucket costs
        ``blocks_per_bucket`` rounds — O(1) lookups but not one-probe,
        exactly the paper's small-``B`` trade-off.
        """
        locs = [l if type(l) is tuple else tuple(l) for l in locs]
        if self.blocks_per_bucket == 1:
            # Single-block buckets (the common one-probe layout): inline
            # the address arithmetic — this is the dictionary probe path.
            base = self._base
            off = self.disk_offset
            stripes = self.stripes
            size = self.stripe_size
            addr_of: Dict[FieldLoc, Tuple[int, int]] = {}
            for loc in locs:
                stripe, index = loc
                if not (0 <= stripe < stripes and 0 <= index < size):
                    self._check_loc(loc)
                addr_of[loc] = (off + stripe, base[stripe] + index)
            blocks = self.machine.read_blocks(addr_of.values())
            out_fast: Dict[FieldLoc, List[Any]] = {}
            for loc, addr in addr_of.items():
                payload = blocks[addr].payload
                out_fast[loc] = list(payload) if payload else []
            return out_fast
        for loc in locs:
            self._check_loc(loc)
        per_loc = [self._addrs(loc) for loc in locs]
        all_addrs = [a for addrs in per_loc for a in addrs]
        blocks = self.machine.read_blocks(all_addrs)
        out: Dict[FieldLoc, List[Any]] = {}
        for loc, addrs in zip(locs, per_loc):
            items: List[Any] = []
            for addr in addrs:
                payload = blocks[addr].payload
                if payload:
                    items.extend(payload)
            out[loc] = items
        return out

    def read_buckets_degraded(
        self, locs: Iterable[FieldLoc]
    ) -> Tuple[Dict[FieldLoc, List[Any]], Dict[FieldLoc, Any]]:
        """Fault-tolerant variant of :meth:`read_buckets`.

        A bucket is failed as a whole if *any* of its blocks is unreadable
        (a partial bucket could hide an item, so partial data is unsafe).
        Returns ``(buckets, failures)``; each location appears in exactly
        one of the two maps.
        """
        locs = [tuple(l) for l in locs]
        for loc in locs:
            self._check_loc(loc)
        all_addrs = []
        for loc in locs:
            all_addrs.extend(self._addrs(loc))
        blocks, faults = self.machine.read_blocks_degraded(all_addrs)
        out: Dict[FieldLoc, List[Any]] = {}
        failures: Dict[FieldLoc, Any] = {}
        for loc in locs:
            items: List[Any] = []
            fault = None
            for addr in self._addrs(loc):
                fault = faults.get(addr)
                if fault is not None:
                    break
                payload = blocks[addr].payload
                if payload:
                    items.extend(payload)
            if fault is not None:
                failures[loc] = fault
            else:
                out[loc] = items
        return out, failures

    def write_buckets(self, assignments: Mapping[FieldLoc, Sequence[Any]]) -> None:
        """Replace bucket contents.  Raises if a bucket would exceed its
        item capacity — the Lemma 3 load bound is what prevents this in the
        paper, and we want violations loud."""
        writes = []
        for loc, items in assignments.items():
            self._check_loc(loc)
            items = list(items)
            if len(items) > self.capacity_items:
                raise OverflowError(
                    f"bucket {loc} would hold {len(items)} items; capacity is "
                    f"{self.capacity_items}"
                )
            addrs = self._addrs(loc)
            for t, addr in enumerate(addrs):
                part = items[
                    t * self.items_per_block : (t + 1) * self.items_per_block
                ]
                writes.append((addr, part, len(part) * self.item_bits))
        self.machine.write_blocks(writes)

    def peek(self, loc: FieldLoc) -> List[Any]:
        """Read a bucket without charging I/O (tests/verification only)."""
        self._check_loc(loc)
        items: List[Any] = []
        for addr in self._addrs(loc):
            block = self.machine.peek_at(addr)
            payload = None if block is None else block.payload
            if payload:
                items.extend(payload)
        return items

    def loads(self) -> Dict[FieldLoc, int]:
        """Audit: current load of every touched bucket (no I/O charged)."""
        out: Dict[FieldLoc, int] = {}
        for stripe in range(self.stripes):
            for index in range(self.stripe_size):
                n = len(self.peek((stripe, index)))
                if n:
                    out[(stripe, index)] = n
        return out
