"""Per-disk health state machine and deterministic retry/backoff policies.

Mechanism for the self-healing layer (:mod:`repro.recovery` holds the
policy).  Two pieces live here because they sit on the machine's hot
path:

* :class:`RetryPolicy` — replaces the old flat ``retry_budget`` integer.
  Budgeted retries plus an optional exponential backoff *in logical
  rounds*: waiting is modelled as idle rounds charged to ``retry_ios``
  (the round clock advances, so a transient window expires "while we
  wait" — exactly what wall-clock backoff buys a real system, but
  deterministic and replayable).  The default policy has zero backoff
  and three attempts, reproducing the legacy accounting bit-for-bit.
* :class:`HealthTracker` — a per-disk state machine

  ``healthy → transient → suspect``, ``* → failed → rebuilding → healthy``

  driven by the typed fault observations the machine already makes in
  ``_read_batch``/``write_blocks``.  Error-driven transitions (degrade on
  ``down``/``transient``, recover on a clean round) happen inline;
  ``failed → rebuilding → healthy`` is owned by the
  :class:`repro.recovery.manager.RecoveryManager`, which is the only
  caller of :meth:`HealthTracker.begin_rebuild` /
  :meth:`HealthTracker.complete_rebuild`.

Every transition is validated against :data:`ALLOWED_TRANSITIONS` (the
Hypothesis property tests drive arbitrary observation sequences and
assert no illegal edge is ever taken) and — closing a latent PR 3 gap —
invalidates the buffer pool's entries for that disk: a disk that heals
from a transient window must not keep serving cached blocks staged
before the window, and a disk that fails must not have its stale copies
resurrected after rebuild.

Attachment follows the machine's one-``None``-check contract:
``machine.health`` is ``None`` by default; :func:`attach_health` installs
a tracker and the fault paths feed it only when present.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.bits.mix import derive

#: canonical state names, in degradation order
HEALTHY = "healthy"
TRANSIENT = "transient"
SUSPECT = "suspect"
FAILED = "failed"
REBUILDING = "rebuilding"

STATES: Tuple[str, ...] = (HEALTHY, TRANSIENT, SUSPECT, FAILED, REBUILDING)

#: the complete edge set of the health state machine; every transition a
#: tracker performs is checked against this (identity edges are no-ops,
#: not transitions).
ALLOWED_TRANSITIONS = frozenset(
    {
        (HEALTHY, TRANSIENT),   # first transient error in a clean run
        (HEALTHY, FAILED),      # hard failure with no warning
        (TRANSIENT, HEALTHY),   # a clean round clears the window
        (TRANSIENT, SUSPECT),   # errors keep coming: escalate
        (TRANSIENT, FAILED),    # hard failure mid-window
        (SUSPECT, HEALTHY),     # clean round clears even a suspect disk
        (SUSPECT, FAILED),      # suspect confirmed dead
        (FAILED, REBUILDING),   # recovery manager starts a rebuild
        (REBUILDING, HEALTHY),  # rebuild committed
        (REBUILDING, FAILED),   # rebuild aborted (e.g. spare lost)
    }
)

# Domain tag for backoff jitter rolls (same register as the
# repro.faults.plan tags; disjoint value).
_TAG_BACKOFF = 0x0F05


class IllegalTransition(RuntimeError):
    """An edge outside :data:`ALLOWED_TRANSITIONS` was requested."""


@dataclass(frozen=True, slots=True)
class RetryPolicy:
    """Deterministic retry/backoff policy for transient read faults.

    ``max_attempts`` is the number of *extra* attempts after the first
    (the old ``retry_budget`` semantics, preserved exactly).  After a
    failed attempt ``i`` (0-based) the machine waits
    ``min(backoff_cap, backoff_base * backoff_factor**i)`` idle rounds
    before re-issuing; the wait is charged to ``read_ios`` *and*
    ``retry_ios``, so foreground charged-cost identities are unchanged
    (the theorem monitors subtract ``retry_ios``).  ``backoff_base=0``
    (the default) disables waiting entirely — no extra charges, the
    legacy behaviour.

    With ``jitter_seed`` set, up to half of each wait is shaved off by a
    :func:`repro.bits.mix.derive` roll keyed on the attempt index —
    deterministic jitter, so replays of the same seed are identical.
    """

    max_attempts: int = 3
    backoff_base: int = 0
    backoff_factor: int = 2
    backoff_cap: int = 64
    jitter_seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 0:
            raise ValueError(
                f"retry budget must be non-negative, got {self.max_attempts}"
            )
        if self.backoff_base < 0:
            raise ValueError(
                f"backoff base must be non-negative, got {self.backoff_base}"
            )
        if self.backoff_factor < 1:
            raise ValueError(
                f"backoff factor must be at least 1, got {self.backoff_factor}"
            )
        if self.backoff_cap < 0:
            raise ValueError(
                f"backoff cap must be non-negative, got {self.backoff_cap}"
            )

    def backoff_rounds(self, attempt: int) -> int:
        """Idle rounds to wait after failed attempt ``attempt`` (0-based)."""
        if self.backoff_base <= 0:
            return 0
        wait = self.backoff_base * (self.backoff_factor ** attempt)
        if wait > self.backoff_cap:
            wait = self.backoff_cap
        if self.jitter_seed is not None and wait > 1:
            wait -= derive(self.jitter_seed, _TAG_BACKOFF, attempt) % (
                wait // 2 + 1
            )
        return wait

    @classmethod
    def flat(cls, budget: int) -> "RetryPolicy":
        """The legacy policy: ``budget`` extra attempts, no backoff."""
        return cls(max_attempts=budget)

    @classmethod
    def exponential(
        cls,
        *,
        max_attempts: int = 5,
        base: int = 1,
        factor: int = 2,
        cap: int = 64,
        jitter_seed: Optional[int] = None,
    ) -> "RetryPolicy":
        """Exponential backoff: waits ``base, base*factor, ...`` rounds
        (capped), advancing the logical clock so bounded transient
        windows expire within the attempt budget."""
        return cls(
            max_attempts=max_attempts,
            backoff_base=base,
            backoff_factor=factor,
            backoff_cap=cap,
            jitter_seed=jitter_seed,
        )


@dataclass(slots=True)
class DiskHealth:
    """Tracked health of one disk."""

    disk: int
    state: str = HEALTHY
    #: errors observed since the last clean round (any kind)
    consecutive_errors: int = 0
    #: logical round of the last state change
    since_clock: int = 0
    #: full transition log: ``(clock, old_state, new_state)``
    transitions: List[Tuple[int, str, str]] = field(default_factory=list)


class HealthTracker:
    """Per-disk health state machine for one machine.

    Error-driven edges fire from the machine's fault paths via
    :meth:`observe_error` / :meth:`observe_ok`; rebuild edges are driven
    by the recovery manager via :meth:`begin_rebuild` /
    :meth:`complete_rebuild` / :meth:`fail`.  All clocks are the logical
    round clock (``machine.stats.total_ios``).
    """

    def __init__(self, machine, *, suspect_after: int = 3) -> None:
        if suspect_after <= 0:
            raise ValueError(
                f"suspect threshold must be positive, got {suspect_after}"
            )
        self.machine = machine
        self.suspect_after = suspect_after
        self.disks: Dict[int, DiskHealth] = {
            i: DiskHealth(i) for i in range(machine.num_disks)
        }
        #: total transitions performed (all disks)
        self.transitions = 0

    # -- queries -----------------------------------------------------------

    def state(self, disk: int) -> str:
        return self.disks[disk].state

    def states(self) -> Dict[int, str]:
        return {i: h.state for i, h in self.disks.items()}

    def counts(self) -> Dict[str, int]:
        """Number of disks in each state (every state always present)."""
        out = {s: 0 for s in STATES}
        for h in self.disks.values():
            out[h.state] += 1
        return out

    def all_healthy(self) -> bool:
        return all(h.state == HEALTHY for h in self.disks.values())

    def in_state(self, state: str) -> List[int]:
        return [i for i, h in self.disks.items() if h.state == state]

    # -- transitions -------------------------------------------------------

    def _transition(self, h: DiskHealth, new: str, clock: int) -> None:
        old = h.state
        if old == new:
            return
        if (old, new) not in ALLOWED_TRANSITIONS:
            raise IllegalTransition(
                f"disk {h.disk}: {old} -> {new} at round {clock} is not an "
                f"edge of the health state machine"
            )
        h.state = new
        h.since_clock = clock
        h.transitions.append((clock, old, new))
        self.transitions += 1
        # Any state change invalidates cached blocks for the disk: a heal
        # must not serve entries staged before the fault window, and a
        # failure must not resurrect stale copies after rebuild.
        cache = self.machine.cache
        if cache is not None:
            cache.invalidate_disk(h.disk)

    def observe_error(self, disk: int, kind: str, clock: int) -> None:
        """Feed one observed fault.  ``kind`` is ``"down"``,
        ``"transient"`` or ``"corruption"`` (corruption counts toward the
        error streak but does not change state — the scrubber and
        read-repair own it)."""
        h = self.disks[disk]
        h.consecutive_errors += 1
        if kind == "down":
            if h.state == REBUILDING:
                # A rebuilding disk is expected to be unreadable; the
                # recovery manager owns its exit from this state.
                return
            self._transition(h, FAILED, clock)
        elif kind == "transient":
            if h.state == HEALTHY:
                self._transition(h, TRANSIENT, clock)
            elif (
                h.state == TRANSIENT
                and h.consecutive_errors >= self.suspect_after
            ):
                self._transition(h, SUSPECT, clock)
        elif kind != "corruption":
            raise ValueError(f"unknown error kind {kind!r}")

    def observe_ok(self, disk: int, clock: int) -> None:
        """A clean round on ``disk``: reset the streak and clear a
        transient/suspect state.  Ignored for failed/rebuilding disks
        (those exit only through the recovery manager)."""
        h = self.disks[disk]
        h.consecutive_errors = 0
        if h.state in (TRANSIENT, SUSPECT):
            self._transition(h, HEALTHY, clock)

    def begin_rebuild(self, disk: int, clock: int) -> None:
        """Recovery manager: start rebuilding a failed disk."""
        self._transition(self.disks[disk], REBUILDING, clock)

    def complete_rebuild(self, disk: int, clock: int) -> None:
        """Recovery manager: rebuild committed, disk fully healed."""
        h = self.disks[disk]
        self._transition(h, HEALTHY, clock)
        h.consecutive_errors = 0

    def fail(self, disk: int, clock: int) -> None:
        """Force a disk to ``failed`` (rebuild abort, external signal)."""
        h = self.disks[disk]
        if h.state != FAILED:
            self._transition(h, FAILED, clock)

    def to_dict(self) -> Dict[str, object]:
        return {
            "transitions": self.transitions,
            "counts": self.counts(),
            "states": {str(i): s for i, s in sorted(self.states().items())},
        }


def attach_health(machine, *, suspect_after: int = 3) -> HealthTracker:
    """Attach a fresh :class:`HealthTracker` to ``machine`` (replacing
    any existing one) and return it."""
    tracker = HealthTracker(machine, suspect_after=suspect_after)
    machine.health = tracker
    return tracker


def detach_health(machine) -> None:
    machine.health = None
