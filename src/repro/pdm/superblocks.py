"""Striped superblocks: the disks "considered as a single disk with block
size BD" (Section 1.1).

A :class:`SuperblockArray` is a logical array whose entry ``j`` spans one
block at the same index on each disk of a group — reading or writing one
superblock is exactly one parallel I/O and moves up to ``width * B`` items.
This is the storage layout beneath every hashing baseline and beneath the
pointer-indirected payload store; it is pure PDM layout (no hashing
involved), which is why it lives here rather than in ``repro.hashing``.
"""

from __future__ import annotations

from typing import Any, Dict, Iterable, List, Optional, Sequence

from repro.pdm.machine import AbstractDiskMachine


class SuperblockArray:
    """``num_superblocks`` superblocks of ``width * B`` items each."""

    def __init__(
        self,
        machine: AbstractDiskMachine,
        *,
        num_superblocks: int,
        disk_offset: int = 0,
        width: Optional[int] = None,
        item_bits: Optional[int] = None,
    ):
        if num_superblocks <= 0:
            raise ValueError(
                f"need at least one superblock, got {num_superblocks}"
            )
        if width is None:
            width = machine.num_disks - disk_offset
        if width <= 0 or disk_offset + width > machine.num_disks:
            raise ValueError(
                f"disk group [{disk_offset}, {disk_offset + width}) invalid "
                f"for a machine with {machine.num_disks} disks"
            )
        self.machine = machine
        self.num_superblocks = num_superblocks
        self.disk_offset = disk_offset
        self.width = width
        self.item_bits = machine.item_bits if item_bits is None else item_bits
        self.items_per_block = machine.block_bits // self.item_bits
        if self.items_per_block <= 0:
            raise ValueError("an item does not fit in a block")
        self.capacity_items = self.width * self.items_per_block
        self._base = [
            machine.allocate(disk_offset + t, num_superblocks)
            for t in range(width)
        ]

    def _addrs(self, j: int) -> List[tuple]:
        if not 0 <= j < self.num_superblocks:
            raise IndexError(
                f"superblock {j} out of range [0, {self.num_superblocks})"
            )
        return [
            (self.disk_offset + t, self._base[t] + j) for t in range(self.width)
        ]

    def read(self, js: Iterable[int]) -> Dict[int, List[Any]]:
        """Fetch superblocks; distinct ``j`` values on the same group cost
        one round each (they collide on every disk)."""
        js = list(dict.fromkeys(js))
        all_addrs = []
        for j in js:
            all_addrs.extend(self._addrs(j))
        blocks = self.machine.read_blocks(all_addrs)
        out: Dict[int, List[Any]] = {}
        for j in js:
            items: List[Any] = []
            for addr in self._addrs(j):
                payload = blocks[addr].payload
                if payload:
                    items.extend(payload)
            out[j] = items
        return out

    def write(self, assignments: Dict[int, Sequence[Any]]) -> None:
        """Replace superblock contents (split round-robin over the group)."""
        writes = []
        for j, items in assignments.items():
            items = list(items)
            if len(items) > self.capacity_items:
                raise OverflowError(
                    f"superblock {j} would hold {len(items)} items; capacity "
                    f"is {self.capacity_items}"
                )
            addrs = self._addrs(j)
            for t, addr in enumerate(addrs):
                part = items[
                    t * self.items_per_block : (t + 1) * self.items_per_block
                ]
                writes.append((addr, part, len(part) * self.item_bits))
        self.machine.write_blocks(writes)

    def peek(self, j: int) -> List[Any]:
        """Audit read without I/O charge."""
        items: List[Any] = []
        for addr in self._addrs(j):
            payload = self.machine.block_at(addr).payload
            if payload:
                items.extend(payload)
        return items

    def occupancy(self) -> Dict[int, int]:
        """Audit: items per non-empty superblock."""
        out = {}
        for j in range(self.num_superblocks):
            n = len(self.peek(j))
            if n:
                out[j] = n
        return out
