"""A single disk: a growable array of blocks.

Disks auto-extend on first touch of a block index, which keeps allocation out
of the algorithms' way (the paper's structures address a fixed-size array of
fields/buckets computed at initialisation; growth only happens once, lazily).
"""

from __future__ import annotations

from typing import Dict

from repro.pdm.block import Block


class Disk:
    """One storage device: a sparse, growable array of fixed-size blocks."""

    __slots__ = ("disk_id", "block_bits", "_blocks", "high_water")

    def __init__(self, disk_id: int, block_bits: int):
        self.disk_id = disk_id
        self.block_bits = block_bits
        # Sparse map: untouched blocks cost no host memory.  ``high_water``
        # is one past the largest block index ever touched.
        self._blocks: Dict[int, Block] = {}  # detlint: guarded(disk-lane) -- each Disk is owned by exactly one executor lane (thread-per-disk)
        self.high_water = 0

    def block(self, index: int) -> Block:
        """Return (creating if necessary) the block at ``index``."""
        if index < 0:
            raise IndexError(f"negative block index {index}")
        blk = self._blocks.get(index)
        if blk is None:
            blk = Block(self.block_bits)
            self._blocks[index] = blk
            if index + 1 > self.high_water:
                self.high_water = index + 1
        return blk

    def peek(self, index: int) -> "Block | None":
        """Return the block at ``index`` if it was ever written, else ``None``.

        Unlike :meth:`block` this never materialises storage, so read-only
        probes of untouched indices leave ``touched_blocks``/``high_water``
        unchanged — a never-written block reads back as empty without the
        accounting pretending it exists.
        """
        if index < 0:
            raise IndexError(f"negative block index {index}")
        return self._blocks.get(index)

    @property
    def touched_blocks(self) -> int:
        """Number of blocks ever materialised on this disk."""
        return len(self._blocks)

    @property
    def used_bits(self) -> int:
        """Total bits of payload currently stored on this disk."""
        return sum(b.used_bits for b in self._blocks.values())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Disk(id={self.disk_id}, touched={self.touched_blocks}, "
            f"high_water={self.high_water})"
        )
