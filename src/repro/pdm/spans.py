"""Hierarchical operation spans over the I/O accountant.

A *span* is a named, attributed window of execution on one machine; spans
nest, forming a tree per top-level operation ("lookup" containing
"membership-probe" containing the raw probe).  Each span's ``cost`` is the
raw :class:`~repro.pdm.iostats.IOStats` delta of the machine over the
window — exactly what :func:`repro.pdm.iostats.measure` reports — so the
root of a span tree always equals the legacy ``measure()`` total.

Composition is explicit: a span opened with ``parallel=True`` declares
that its direct children execute simultaneously on disjoint disk groups
(the Theorem 6(a)/Theorem 7 pattern), so its *effective* cost combines the
children with :meth:`OpCost.parallel` instead of ``+``.
:attr:`Span.effective_cost` evaluates the whole tree under these rules —
this is the quantity the paper's theorems bound, and the quantity the
``repro.obs`` bound monitors check.

Like :class:`repro.pdm.trace.TraceRecorder`, recording is off unless a
:class:`SpanRecorder` is attached to the machine; the hot path pays one
``None`` check (structures open spans unconditionally, but an unrecorded
span is just a snapshot/delta pair, the same work ``measure`` does).

Wall-clock channel
------------------

A recorder may additionally carry a monotonic nanosecond ``clock`` (and a
``lane_of`` identity provider) — attach both with
:func:`repro.obs.wallclock.enable_wall_clock`, never by hand.  When a
clock is present, every recorded span is also stamped with its real
start/duration (:attr:`Span.wall_start_ns` / :attr:`Span.wall_ns`) and
the executor lane that opened it (:attr:`Span.lane`, drawn from the
``guarded()`` synchronization inventory).  This channel is *parallel* to
— and strictly segregated from — the deterministic one: :attr:`Span.cost`
and :meth:`Span.to_dict` never contain wall time, so charged-cost
artifacts stay bit-identical whether or not the clock is attached.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Iterator, List, Optional

from repro.pdm.iostats import OpCost


@dataclass(slots=True)
class Span:
    """One node of a span tree."""

    index: int
    name: str
    mode: str = "seq"  # "seq" | "parallel" — how direct children compose
    attrs: Dict[str, Any] = field(default_factory=dict)
    cost: OpCost = field(default_factory=OpCost)
    children: List["Span"] = field(default_factory=list)
    #: nondeterministic wall channel — stamped only when the recorder has a
    #: clock attached; never part of :meth:`to_dict` (the deterministic
    #: artifact shape).
    wall_start_ns: Optional[int] = None
    wall_ns: Optional[int] = None
    lane: Optional[str] = None

    @property
    def total_ios(self) -> int:
        return self.cost.total_ios

    @property
    def effective_cost(self) -> OpCost:
        """Cost under the declared sequential/parallel composition.

        Children contribute their own effective costs, combined with ``+``
        (``mode="seq"``) or :meth:`OpCost.parallel` (``mode="parallel"``);
        I/O the span performed *outside* any child (the residual) is always
        sequential.  A leaf's effective cost is its raw cost.
        """
        if not self.children:
            return self.cost
        child_raw = OpCost.zero()
        for c in self.children:
            child_raw = child_raw + c.cost
        residual = self.cost - child_raw
        if self.mode == "parallel":
            combined = OpCost.parallel(*(c.effective_cost for c in self.children))
        else:
            combined = OpCost.zero()
            for c in self.children:
                combined = combined + c.effective_cost
        return combined + residual

    def walk(self) -> Iterator["Span"]:
        """Pre-order traversal of this subtree (deterministic)."""
        yield self
        for child in self.children:
            yield from child.walk()

    def to_dict(self) -> Dict[str, Any]:
        """JSON-ready representation of this subtree."""
        eff = self.effective_cost
        return {
            "index": self.index,
            "name": self.name,
            "mode": self.mode,
            "attrs": dict(self.attrs),
            "cost": {
                "read_ios": self.cost.read_ios,
                "write_ios": self.cost.write_ios,
                "blocks_read": self.cost.blocks_read,
                "blocks_written": self.cost.blocks_written,
                "retry_ios": self.cost.retry_ios,
                "repair_ios": self.cost.repair_ios,
            },
            "effective": {
                "read_ios": eff.read_ios,
                "write_ios": eff.write_ios,
                "blocks_read": eff.blocks_read,
                "blocks_written": eff.blocks_written,
                "retry_ios": eff.retry_ios,
                "repair_ios": eff.repair_ios,
            },
            "children": [c.to_dict() for c in self.children],
        }


@dataclass(slots=True)
class SpanHandle:
    """Yielded by :func:`span`; carries the measured cost (always) and the
    recorded tree node (only when a recorder is attached)."""

    cost: OpCost = field(default_factory=OpCost)
    span: Optional[Span] = None

    @property
    def total_ios(self) -> int:
        return self.cost.total_ios

    @property
    def read_ios(self) -> int:
        return self.cost.read_ios

    @property
    def write_ios(self) -> int:
        return self.cost.write_ios

    def annotate(self, **attrs: Any) -> None:
        """Attach attributes discovered mid-operation (hit/miss, levels,
        loads).  No-op when unrecorded."""
        if self.span is not None:
            self.span.attrs.update(attrs)


class SpanRecorder:
    """Collects span trees from an attached machine.

    Maintains an open-span stack; completed top-level spans accumulate in
    :attr:`roots` in execution order.  All ordering is insertion order —
    no wall clock anywhere (``index`` is the deterministic logical time).
    """

    def __init__(self) -> None:
        self.roots: List[Span] = []
        self._stack: List[Span] = []  # detlint: guarded(machine-op) -- spans strictly nest within one machine operation
        self._next_index = 0
        #: optional monotonic ns clock — the nondeterministic wall channel.
        #: Attach via :func:`repro.obs.wallclock.enable_wall_clock`; when
        #: ``None`` (the default) recording is fully deterministic.
        self.clock = None
        #: optional zero-arg provider of the current executor lane name
        #: (``repro.obs.wallclock.current_lane``); consulted at span entry.
        self.lane_of = None
        #: wall timestamp at clock attachment — exporters render spans
        #: relative to this origin.
        self.wall_origin_ns: Optional[int] = None

    def enter(self, name: str, mode: str, attrs: Dict[str, Any]) -> Span:
        node = Span(index=self._next_index, name=name, mode=mode, attrs=attrs)
        self._next_index += 1
        if self._stack:
            self._stack[-1].children.append(node)
        else:
            self.roots.append(node)
        self._stack.append(node)
        return node

    def exit(self, node: Span, cost: OpCost) -> None:
        if not self._stack or self._stack[-1] is not node:
            raise RuntimeError(
                f"unbalanced span exit for {node.name!r}; spans must strictly nest"
            )
        self._stack.pop()
        node.cost = cost

    @property
    def depth(self) -> int:
        return len(self._stack)

    def clear(self) -> None:
        if self._stack:
            raise RuntimeError("cannot clear a recorder with open spans")
        self.roots.clear()
        self._next_index = 0

    def iter_spans(self) -> Iterator[Span]:
        """Every recorded span, pre-order across roots."""
        for root in self.roots:
            yield from root.walk()

    def totals(self) -> Dict[str, Dict[str, int]]:
        """Aggregate per span name: count, raw and effective round/block
        sums.  Keys appear in first-execution order."""
        out: Dict[str, Dict[str, int]] = {}
        for s in self.iter_spans():
            agg = out.setdefault(
                s.name,
                {
                    "count": 0,
                    "read_ios": 0,
                    "write_ios": 0,
                    "total_ios": 0,
                    "blocks_read": 0,
                    "blocks_written": 0,
                    "effective_ios": 0,
                    "retry_ios": 0,
                    "repair_ios": 0,
                },
            )
            agg["count"] += 1
            agg["read_ios"] += s.cost.read_ios
            agg["write_ios"] += s.cost.write_ios
            agg["total_ios"] += s.cost.total_ios
            agg["blocks_read"] += s.cost.blocks_read
            agg["blocks_written"] += s.cost.blocks_written
            agg["effective_ios"] += s.effective_cost.total_ios
            agg["retry_ios"] += s.cost.retry_ios
            agg["repair_ios"] += s.cost.repair_ios
        return out


class span:
    """Measure the I/O cost of the block as a (possibly nested) span.

    Subsumes :func:`repro.pdm.iostats.measure` for the single-machine case:
    the yielded handle exposes ``.cost`` / ``.total_ios`` the same way, and
    additionally builds a node in the machine's attached
    :class:`SpanRecorder` (if any).  ``parallel=True`` marks the *direct
    children* of this span as executing on disjoint disk groups.

    A class-based context manager (not ``@contextmanager``): structures
    open a span on *every* operation, recorded or not, so the enter/exit
    pair is hot — this shape skips the generator machinery and the
    intermediate :meth:`IOStats.snapshot` allocation.

    >>> with span(machine, "lookup", op="lookup") as h:
    ...     machine.read_blocks(addrs)
    >>> h.total_ios
    1
    """

    __slots__ = ("_machine", "_name", "_parallel", "_attrs",
                 "_snap", "_cache_snap", "_handle", "_node", "_recorder")

    def __init__(
        self, machine, name: str, *, parallel: bool = False, **attrs: Any
    ) -> None:
        self._machine = machine
        self._name = name
        self._parallel = parallel
        self._attrs = attrs

    def __enter__(self) -> SpanHandle:
        machine = self._machine
        recorder: Optional[SpanRecorder] = machine.spans
        self._recorder = recorder
        stats = machine.stats
        self._snap = (
            stats.read_ios, stats.write_ios,
            stats.blocks_read, stats.blocks_written,
            stats.retry_ios, stats.repair_ios,
        )
        handle = SpanHandle()
        self._handle = handle
        if recorder is not None:
            node = recorder.enter(
                self._name, "parallel" if self._parallel else "seq",
                self._attrs,
            )
            handle.span = node
            self._node = node
            cache = machine.cache
            if cache is not None:
                cs = cache.stats
                self._cache_snap = (cs.hits, cs.misses, cs.evictions)
            else:
                self._cache_snap = None
            clock = recorder.clock
            if clock is not None:
                lane_of = recorder.lane_of
                if lane_of is not None:
                    node.lane = lane_of()
                node.wall_start_ns = clock()
        else:
            self._node = None
            self._cache_snap = None
        return handle

    def __exit__(self, exc_type, exc, tb) -> bool:
        stats = self._machine.stats
        snap = self._snap
        handle = self._handle
        handle.cost = OpCost(
            read_ios=stats.read_ios - snap[0],
            write_ios=stats.write_ios - snap[1],
            blocks_read=stats.blocks_read - snap[2],
            blocks_written=stats.blocks_written - snap[3],
            retry_ios=stats.retry_ios - snap[4],
            repair_ios=stats.repair_ios - snap[5],
        )
        node = self._node
        if node is not None:
            if node.wall_start_ns is not None:
                clock = self._recorder.clock
                if clock is not None:
                    node.wall_ns = clock() - node.wall_start_ns
            csnap = self._cache_snap
            cache = self._machine.cache
            if csnap is not None and cache is not None:
                cs = cache.stats
                node.attrs["cache.hits"] = cs.hits - csnap[0]
                node.attrs["cache.misses"] = cs.misses - csnap[1]
                node.attrs["cache.evictions"] = cs.evictions - csnap[2]
            self._recorder.exit(node, handle.cost)
        return False


def attach_spans(machine) -> SpanRecorder:
    """Attach a fresh :class:`SpanRecorder` to ``machine`` (replacing any
    existing one) and return it."""
    recorder = SpanRecorder()
    machine.spans = recorder
    return recorder


def detach_spans(machine) -> None:
    machine.spans = None
