"""Optional I/O tracing.

A :class:`TraceRecorder` attached to a machine logs every read/write batch
(addresses, rounds charged, direction).  Used by the concurrency analysis
(write-footprint disjointness — Section 1.1's "simplifies concurrency
control mechanisms such as locking") and available for debugging I/O
schedules.

Tracing is off unless a recorder is attached; the hot path pays one `None`
check.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, KeysView, List, Optional, Tuple

Addr = Tuple[int, int]


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One batched I/O."""

    kind: str  # "read" | "write"
    addrs: Tuple[Addr, ...]
    rounds: int


@dataclass(slots=True)
class TraceRecorder:
    """Collects :class:`TraceEvent` objects from an attached machine.

    With a monotonic ns ``clock`` attached (via
    :func:`repro.obs.wallclock.enable_wall_clock`, never by hand) each
    recorded event is also stamped with the real time it completed, into
    the *parallel* :attr:`walls` list — ``walls[i]`` belongs to
    ``events[i]``.  The deterministic :attr:`events` channel is unchanged
    by the clock; :attr:`walls` stays empty without one.
    """

    events: List[TraceEvent] = field(default_factory=list)
    #: optional monotonic ns clock — the nondeterministic wall channel
    clock: Optional[Callable[[], int]] = None
    #: wall stamp (ns) per event, parallel to :attr:`events`; populated
    #: only while a clock is attached
    walls: List[int] = field(default_factory=list)

    def record(self, kind: str, addrs, rounds: int) -> None:
        self.events.append(TraceEvent(kind, tuple(addrs), rounds))
        if self.clock is not None:
            self.walls.append(self.clock())

    def clear(self) -> None:
        self.events.clear()
        self.walls.clear()

    # -- analyses -------------------------------------------------------------

    def blocks_touched(self, kind: str | None = None) -> KeysView[Addr]:
        """Distinct blocks touched, in *first-touch order*.

        The result is a dict keys view: set-like for membership and
        intersection tests (the concurrency analysis), but insertion-ordered
        — exporting or diffing footprints is stable run to run, unlike the
        hash-ordered ``set`` this used to return.
        """
        out: Dict[Addr, None] = {}
        for ev in self.events:
            if kind is None or ev.kind == kind:
                for addr in ev.addrs:
                    out[addr] = None
        return out.keys()

    def write_footprint(self) -> KeysView[Addr]:
        """All blocks written during the trace — the lock set a pessimistic
        concurrency-control scheme would need for the traced operation."""
        return self.blocks_touched("write")

    def read_footprint(self) -> KeysView[Addr]:
        return self.blocks_touched("read")

    @property
    def rounds(self) -> int:
        return sum(ev.rounds for ev in self.events)


def attach(machine) -> TraceRecorder:
    """Attach a fresh recorder to ``machine`` (replacing any existing one)
    and return it."""
    recorder = TraceRecorder()
    machine.tracer = recorder
    return recorder


def detach(machine) -> None:
    machine.tracer = None
