"""Parallel disk model (PDM) simulator.

The parallel disk model of Vitter and Shriver [19] has ``D`` storage devices,
each an array of blocks with capacity for ``B`` data items.  One *parallel
I/O* retrieves (or writes) at most one block from (or to) **each** of the
``D`` devices.  The performance of an algorithm is the number of parallel
I/Os it performs.

This package provides:

* :class:`~repro.pdm.machine.ParallelDiskMachine` — the PDM proper.  A batch
  of block requests touching several blocks on the *same* disk is serialised
  into multiple rounds; the charged cost is the maximum per-disk multiplicity.
* :class:`~repro.pdm.machine.ParallelDiskHeadMachine` — the strictly stronger
  parallel disk *head* model of Aggarwal and Vitter [1] (one disk with ``D``
  independent heads): any ``D`` blocks can be touched per I/O, so a batch of
  ``m`` blocks costs ``ceil(m / D)`` rounds.  Section 5 of the paper needs
  this model when the expander at hand is not striped.
* :class:`~repro.pdm.iostats.IOStats` / :class:`~repro.pdm.iostats.OpCost` —
  I/O accounting with snapshots, per-operation deltas and parallel-phase
  combination (sub-dictionaries living on disjoint disk groups execute their
  probes simultaneously, so their costs combine with ``max``, not ``+``).
* :func:`~repro.pdm.spans.span` / :class:`~repro.pdm.spans.SpanRecorder` —
  hierarchical operation spans: named, nestable ``measure`` windows whose
  trees make sequential/parallel composition explicit.  Off by default
  (one ``None`` check); the ``repro.obs`` layer consumes them for metrics,
  bound monitoring and trace export.
* :class:`~repro.pdm.memory.InternalMemory` — word-granular accounting of
  internal memory (the paper assumes capacity for ``O(log n)`` keys, and
  Section 5 trades ``O(N^beta)`` words of internal memory for explicitness).
* :class:`~repro.pdm.cache.BufferPool` — the M-bounded deterministic
  write-back block cache (``⌊M/B⌋`` blocks charged against
  :class:`~repro.pdm.memory.InternalMemory`): hits cost zero I/Os, misses
  fetch-and-fill, dirty blocks flush as ordinary charged writes.  Off by
  default (one ``None`` check); enable with ``cache_blocks=N`` on the
  machine or :func:`~repro.pdm.cache.attach_cache`.
* :class:`~repro.pdm.striping.StripedFieldArray` — an array of sub-block
  *fields* laid out in ``d`` stripes, one stripe per disk, so that reading
  one field per stripe is a single parallel I/O.  This is the storage layout
  beneath every dictionary in Section 4.
* :class:`~repro.pdm.superblocks.SuperblockArray` — the disks "considered
  as a single disk with block size BD" (Section 1.1): the layout beneath
  the hashing baselines, the pointer store and the B-tree.
* :mod:`~repro.pdm.executors` — the pluggable physical backend seam:
  round planning and charging stay in the machine, while a
  :class:`~repro.pdm.executors.base.RoundExecutor` moves the bytes — the
  default in-memory :class:`~repro.pdm.executors.base.SimulatedExecutor`,
  a thread-per-disk real-file backend, or a process-pool backend, all
  bit-identical in charged accounting (see ``docs/executors.md``).
* :mod:`~repro.pdm.faults` / :mod:`~repro.pdm.errors` — deterministic fault
  injection (disk outages, transient read errors, silent corruption,
  stragglers, all scheduled by logical round) plus the typed
  :class:`~repro.pdm.errors.IOFault` taxonomy and per-block checksums.
  Off by default (one ``None`` check); schedules come from the
  ``repro.faults`` package.
"""

from repro.pdm.block import Block, BlockOverflowError, payload_fingerprint
from repro.pdm.cache import (
    BufferPool,
    CacheStats,
    attach_cache,
    detach_cache,
    max_cache_blocks,
)
from repro.pdm.disk import Disk
from repro.pdm.errors import (
    BlockCorruption,
    DiskFailure,
    IOFault,
    TransientIOError,
)
from repro.pdm.executors import (
    EXECUTOR_NAMES,
    ExecutorObservations,
    RoundExecutor,
    SimulatedExecutor,
    create_executor,
)
from repro.pdm.faults import (
    DiskOutage,
    FaultInjector,
    FaultyDisk,
    SilentCorruption,
    StragglerWindow,
    TransientWindow,
    attach_faults,
    detach_faults,
)
from repro.pdm.iostats import IOStats, OpCost, measure
from repro.pdm.machine import (
    AbstractDiskMachine,
    ParallelDiskMachine,
    ParallelDiskHeadMachine,
)
from repro.pdm.memory import InternalMemory, InternalMemoryExceeded
from repro.pdm.spans import (
    Span,
    SpanHandle,
    SpanRecorder,
    attach_spans,
    detach_spans,
    span,
)
from repro.pdm.striping import StripedFieldArray, StripedItemBuckets
from repro.pdm.superblocks import SuperblockArray

__all__ = [
    "Block",
    "BlockOverflowError",
    "payload_fingerprint",
    "Disk",
    "IOFault",
    "DiskFailure",
    "TransientIOError",
    "BlockCorruption",
    "DiskOutage",
    "TransientWindow",
    "SilentCorruption",
    "StragglerWindow",
    "FaultyDisk",
    "FaultInjector",
    "attach_faults",
    "detach_faults",
    "IOStats",
    "OpCost",
    "measure",
    "Span",
    "SpanHandle",
    "SpanRecorder",
    "span",
    "attach_spans",
    "detach_spans",
    "AbstractDiskMachine",
    "ParallelDiskMachine",
    "ParallelDiskHeadMachine",
    "EXECUTOR_NAMES",
    "ExecutorObservations",
    "RoundExecutor",
    "SimulatedExecutor",
    "create_executor",
    "InternalMemory",
    "InternalMemoryExceeded",
    "BufferPool",
    "CacheStats",
    "attach_cache",
    "detach_cache",
    "max_cache_blocks",
    "StripedFieldArray",
    "StripedItemBuckets",
    "SuperblockArray",
]
