"""Thread-per-disk executor over real files.

One :class:`~repro.fs.blockfile.BlockLogFile` per disk, one worker lane
per disk: a round's ``D`` transfers are dispatched concurrently, so the
PDM's charged unit of parallelism — one block per disk per round — is,
for the first time, *measured* wall-clock parallelism rather than only a
charged number.  Charged costs are untouched: the machine computes every
``IOStats``/``RoundPlan`` above the seam (see
:mod:`repro.pdm.executors.base`), and ``benchmarks/bench_executors.py``
gates that the parallel dispatch beats this executor's own sequential
(``workers=1``) mode while the charged rounds stay identical.

Threading/lane model (the PR 6 ``guarded()`` inventory, implemented):

* each :class:`BlockLogFile` and each ``per_disk_wall_ns`` slot is owned
  by its disk's lane — a batch dispatches at most one task per disk, so
  no two tasks ever share a file or a slot;
* the dispatch pool is a plain ``ThreadPoolExecutor`` sized ``D``;
  worker tasks carry their own disk tag, so lane attribution
  (``disk-lane:<tag>``) is correct regardless of which pool thread runs
  the task;
* result merging happens in the calling thread after every future
  resolves — the machine above never sees partial state.

Determinism: no wall clock is read here (DET004) — ``clock`` is an
injected callable (``repro.obs`` passes ``time.perf_counter_ns`` when
timing a run) and feeds only the observation side-channel.  The optional
``transfer_delay_ns`` knob models per-block device service time with a
GIL-releasing sleep so speedup measurements do not depend on the page
cache; it changes wall time only, never results or charges.
"""

from __future__ import annotations

import os
import time
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fs.blockfile import BlockLogFile
from repro.pdm.block import Block, BlockOverflowError
from repro.pdm.errors import BlockCorruption, IOFault
from repro.pdm.executors.base import Addr, ReadResult, RoundExecutor


def disk_log_path(directory: str, disk_id: int) -> str:
    """The canonical per-disk log filename (shared with the process
    executor so the two file backends are image-compatible)."""
    return os.path.join(str(directory), f"disk-{disk_id:03d}.blk")


class FileExecutor(RoundExecutor):
    """Real-file backend: one block log and one worker lane per disk.

    Parameters
    ----------
    directory:
        Where the per-disk logs live.  Created if missing; always
        caller-provided (no hidden temp directories — the caller owns the
        lifetime, and tests point this at a ``tmp_path``).
    workers:
        ``None`` (default) dispatches one task per disk onto a
        ``D``-wide thread pool; ``1`` serves every disk sequentially in
        the calling thread — the honest single-lane baseline the speedup
        benchmark compares against.
    fsync:
        Passed through to every :class:`BlockLogFile`: fsync each append
        before acknowledging it.
    transfer_delay_ns:
        Modeled per-block device service time (sleep inside the disk's
        lane, GIL released).  Zero by default.
    clock:
        Injected nanosecond clock for the observation side-channel;
        ``None`` disables timing entirely.
    lane_factory:
        Injected lane context factory with the signature of
        :func:`repro.obs.wallclock.lane` — the executor never imports the
        observability layer (``repro.pdm`` sits below it).
    """

    name = "file"
    inline = False

    def __init__(
        self,
        directory: str,
        *,
        workers: Optional[int] = None,
        fsync: bool = False,
        transfer_delay_ns: int = 0,
        clock: Optional[Callable[[], int]] = None,
        lane_factory: Optional[Callable[..., object]] = None,
    ):
        super().__init__()
        if workers is not None and workers < 1:
            raise ValueError(f"workers must be >= 1, got {workers}")
        self.directory = str(directory)
        self.workers = workers
        self.fsync = fsync
        self.transfer_delay_ns = transfer_delay_ns
        self.clock = clock
        self.lane_factory = lane_factory
        self._logs: List[BlockLogFile] = []
        self._pool: Optional[ThreadPoolExecutor] = None
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def bind(self, machine) -> None:
        super().bind(machine)
        os.makedirs(self.directory, exist_ok=True)
        self._logs = [
            BlockLogFile(disk_log_path(self.directory, i), fsync=self.fsync)
            for i in range(machine.num_disks)
        ]
        if self.workers != 1 and machine.num_disks > 1:
            width = machine.num_disks
            if self.workers is not None:
                width = min(width, self.workers)
            self._pool = ThreadPoolExecutor(
                max_workers=width, thread_name_prefix="disk-lane"
            )

    def flush(self) -> None:
        for log in self._logs:
            if not log.closed:
                log.sync()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None
        for log in self._logs:
            log.close()

    # -- physical transfer -------------------------------------------------

    def _lane(self, disk_id: int):
        if self.lane_factory is None:
            return nullcontext()
        return self.lane_factory("disk-lane", tag=disk_id)

    def _serve_disk(
        self, disk_id: int, addrs: Sequence[Addr]
    ) -> Dict[Addr, ReadResult]:
        clock = self.clock
        out: Dict[Addr, ReadResult] = {}
        with self._lane(disk_id):
            t0 = clock() if clock is not None else 0
            if self.transfer_delay_ns:
                time.sleep(self.transfer_delay_ns * len(addrs) / 1e9)
            log = self._logs[disk_id]
            block_bits = self.machine.block_bits
            for addr in addrs:
                try:
                    record = log.read_block(addr[1])
                except IOFault as fault:
                    out[addr] = fault
                    continue
                if record is None:
                    out[addr] = None
                    continue
                payload, used_bits, checksum = record
                blk = Block(block_bits)
                try:
                    blk.store(payload, used_bits)
                except (BlockOverflowError, ValueError) as exc:
                    out[addr] = BlockCorruption(
                        f"frame for block {addr} does not fit this "
                        f"machine's geometry: {exc}",
                        addrs=[addr], disk=addr[0],
                    )
                    continue
                # Carry the on-medium seal; the machine verifies above the
                # seam, so a stale seal fails there exactly as in-memory.
                blk.checksum = checksum
                out[addr] = blk
            if clock is not None:
                self.observations.note_disk(disk_id, clock() - t0)
        return out

    def _store_disk(
        self, disk_id: int, entries: Sequence[Tuple[int, Block]]
    ) -> None:
        clock = self.clock
        with self._lane(disk_id):
            t0 = clock() if clock is not None else 0
            if self.transfer_delay_ns:
                time.sleep(self.transfer_delay_ns * len(entries) / 1e9)
            self._logs[disk_id].append_many(
                (index, blk.payload, blk.used_bits, blk.checksum)
                for index, blk in entries
            )
            if clock is not None:
                self.observations.note_disk(disk_id, clock() - t0)

    def run_read(self, addrs: Sequence[Addr]) -> Dict[Addr, ReadResult]:
        by_disk: Dict[int, List[Addr]] = {}
        for addr in addrs:
            by_disk.setdefault(addr[0], []).append(addr)
        clock = self.clock
        t0 = clock() if clock is not None else 0
        out: Dict[Addr, ReadResult] = {}
        if self._pool is None or len(by_disk) <= 1:
            for disk_id, items in by_disk.items():
                out.update(self._serve_disk(disk_id, items))
        else:
            futures = [
                self._pool.submit(self._serve_disk, disk_id, items)
                for disk_id, items in by_disk.items()
            ]
            for future in futures:
                out.update(future.result())
        self.observations.note_read(
            len(addrs), (clock() - t0) if clock is not None else 0
        )
        return out

    def run_write(self, stored: Sequence[Tuple[Addr, Block]]) -> None:
        by_disk: Dict[int, List[Tuple[int, Block]]] = {}
        for addr, blk in stored:
            by_disk.setdefault(addr[0], []).append((addr[1], blk))
        clock = self.clock
        t0 = clock() if clock is not None else 0
        if self._pool is None or len(by_disk) <= 1:
            for disk_id, entries in by_disk.items():
                self._store_disk(disk_id, entries)
        else:
            futures = [
                self._pool.submit(self._store_disk, disk_id, entries)
                for disk_id, entries in by_disk.items()
            ]
            for future in futures:
                future.result()
        self.observations.note_write(
            len(stored), (clock() - t0) if clock is not None else 0
        )

    # -- physical consistency hooks ----------------------------------------

    def sync_block(self, addr: Addr) -> None:
        blk = self.machine.disks[addr[0]].peek(addr[1])
        if blk is not None:
            self._logs[addr[0]].append_block(
                addr[1], blk.payload, blk.used_bits, blk.checksum
            )

    def resync_disk(self, disk_id: int) -> None:
        log = self._logs[disk_id]
        log.reset()
        disk = self.machine.disks[disk_id]
        log.append_many(
            (index, blk.payload, blk.used_bits, blk.checksum)
            for index, blk in sorted(disk._blocks.items())
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        mode = "sequential" if self._pool is None else "thread-per-disk"
        return f"FileExecutor({self.directory!r}, {mode})"
