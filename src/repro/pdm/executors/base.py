"""The executor seam: round planning above, physical transfer below.

:class:`~repro.pdm.machine.AbstractDiskMachine` owns every *policy*
decision — round packing and charging (:class:`~repro.pdm.machine.RoundPlan`),
fault status, retries and backoff, checksum verify, cache fills, health
observations, spans and traces — and keeps its in-memory ``disks`` as the
authoritative *logical* store.  A :class:`RoundExecutor` owns only the
*physical* transfer: given the addresses the machine decided to serve
this round, produce their bytes (``run_read``) or persist them
(``run_write``).

That split is what makes the executor-equivalence invariant hold **by
construction**: charged ``IOStats``/``OpCost``/``RoundPlan`` accounting
is computed entirely above the seam, so every executor — in-memory,
thread-per-disk over real files, process-pool — produces bit-identical
accounting for the same operation sequence, healthy or under a fault
plan (asserted by ``tests/model`` and
``tests/integration/test_executor_parity.py``; see ``docs/executors.md``).

Physical consistency hooks (``sync_block``, ``resync_disk``) let the
uncharged mutation sites — the fault layer's in-place corruption and
seal-on-attach scrub, the recovery manager's rebuilt-spare swap — keep a
real-file image in step with the logical store without charging I/O.

Determinism: executors never read a wall clock (DET004); timing is only
taken through an *injected* ``clock`` callable, and only into the
observation side-channel (:class:`ExecutorObservations`), never into any
control path.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple, Union

from repro.pdm.block import Block
from repro.pdm.errors import IOFault

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.pdm.machine import AbstractDiskMachine

Addr = Tuple[int, int]

#: what ``run_read`` may say about one address: the block's current
#: contents, ``None`` for never-written, or a typed fault the physical
#: medium raised (torn frame, lost file) — routed into the machine's
#: per-address failure channel exactly like an injected fault.
ReadResult = Union[Block, None, IOFault]


class ExecutorObservations:
    """Wall-clock side channel of one executor: batch counts and measured
    transfer time, total and per disk lane.

    Only populated when the executor was given an injected ``clock``;
    with no clock every duration stays zero and the record is just batch
    and block counters.  Nothing deterministic may read this back — it
    feeds ``repro.obs`` collectors and ``BENCH_executors.json`` only.
    """

    __slots__ = (
        "read_batches", "write_batches", "blocks_read", "blocks_written",
        "read_wall_ns", "write_wall_ns", "per_disk_wall_ns",
    )

    def __init__(self, num_disks: int = 0):
        self.read_batches = 0
        self.write_batches = 0
        self.blocks_read = 0
        self.blocks_written = 0
        self.read_wall_ns = 0
        self.write_wall_ns = 0
        # Pre-sized per disk: each entry is updated only from that disk's
        # worker lane (index assignment on a fixed-size list, no resizing).
        self.per_disk_wall_ns: List[int] = [0] * num_disks  # detlint: guarded(disk-lane) -- slot i is written only by disk i's worker lane

    def note_read(self, blocks: int, wall_ns: int) -> None:
        self.read_batches += 1
        self.blocks_read += blocks
        self.read_wall_ns += wall_ns

    def note_write(self, blocks: int, wall_ns: int) -> None:
        self.write_batches += 1
        self.blocks_written += blocks
        self.write_wall_ns += wall_ns

    def note_disk(self, disk_id: int, wall_ns: int) -> None:
        self.per_disk_wall_ns[disk_id] += wall_ns

    def to_dict(self) -> Dict[str, object]:
        return {
            "read_batches": self.read_batches,
            "write_batches": self.write_batches,
            "blocks_read": self.blocks_read,
            "blocks_written": self.blocks_written,
            "read_wall_ns": self.read_wall_ns,
            "write_wall_ns": self.write_wall_ns,
            "per_disk_wall_ns": list(self.per_disk_wall_ns),
        }


class RoundExecutor:
    """Physical backend of one machine.  Subclasses implement the
    transfer methods; everything here is the neutral default.

    ``inline`` declares that the physical store *is* the machine's
    logical ``disks`` (no second copy of the data exists), which lets the
    machine keep its zero-overhead read fast path and skip the physical
    write mirror entirely.  Only :class:`SimulatedExecutor` is inline.
    """

    name = "abstract"
    #: True when the logical store is the physical store (no mirroring).
    inline = False

    def __init__(self) -> None:
        self.machine: Optional["AbstractDiskMachine"] = None
        self.observations = ExecutorObservations()

    # -- lifecycle ---------------------------------------------------------

    def bind(self, machine: "AbstractDiskMachine") -> None:
        """Called once from the machine's constructor.  Subclasses open
        their physical resources (files, worker pools) here — the machine
        geometry (``num_disks``, ``block_bits``) is known at this point."""
        if self.machine is not None:
            raise RuntimeError(
                f"{type(self).__name__} is already bound to a machine; "
                f"executors are one-per-machine (create a fresh one)"
            )
        self.machine = machine
        self.observations = ExecutorObservations(machine.num_disks)

    def flush(self) -> None:
        """Durability barrier: persist everything acknowledged so far."""

    def close(self) -> None:
        """Release physical resources (threads, descriptors).  Idempotent;
        the machine's ``close()`` delegates here."""

    # -- physical transfer -------------------------------------------------

    def run_read(self, addrs: Sequence[Addr]) -> Dict[Addr, ReadResult]:
        """Serve one attempt's worth of block fetches.

        ``addrs`` is exactly the set the machine decided to charge this
        attempt (fault triage already done); the result must cover every
        address.  Values are the block contents, ``None`` for a block
        never written, or a typed :class:`~repro.pdm.errors.IOFault` the
        medium raised for that address.
        """
        raise NotImplementedError

    def run_write(self, stored: Sequence[Tuple[Addr, Block]]) -> None:
        """Persist blocks the machine just committed to the logical store
        (post mirror-redirect: ``addr`` is always the physical slot)."""
        raise NotImplementedError

    # -- physical consistency hooks (uncharged) ----------------------------

    def sync_block(self, addr: Addr) -> None:
        """Re-mirror one block from the logical store after an uncharged
        in-place mutation (fault-layer corruption, seal-on-attach)."""

    def resync_disk(self, disk_id: int) -> None:
        """Rewrite one disk's physical image from its logical contents —
        called by :meth:`~repro.pdm.machine.AbstractDiskMachine.replace_disk`
        after a rebuilt spare is swapped in."""


class SimulatedExecutor(RoundExecutor):
    """The in-memory behavior the machine always had, behind the seam.

    The logical store is the physical store: reads peek the live
    :class:`~repro.pdm.disk.Disk` objects (returning the very same
    :class:`~repro.pdm.block.Block` instances as before the refactor) and
    writes are already complete once the machine stored them.
    """

    name = "simulated"
    inline = True

    def run_read(self, addrs: Sequence[Addr]) -> Dict[Addr, ReadResult]:
        disks = self.machine.disks
        return {addr: disks[addr[0]].peek(addr[1]) for addr in addrs}

    def run_write(self, stored: Sequence[Tuple[Addr, Block]]) -> None:
        pass  # the machine's store *is* the medium
