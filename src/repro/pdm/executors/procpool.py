"""Process-pool executor: GIL-free parallel block transfers.

Same on-disk image as :class:`~repro.pdm.executors.filebacked.FileExecutor`
(one :class:`~repro.fs.blockfile.BlockLogFile` per disk — the two file
backends are interchangeable over the same directory), but a round's
per-disk fetches are dispatched to a ``ProcessPoolExecutor``: each worker
task is *stateless* — ``(path, [(index, offset, length)]) -> raw frame
bytes`` — so one long-lived pool serves any number of machines, and no
picklable executor state ever crosses the process boundary.  Frames are
CRC-checked and unpickled in the parent; writes and index maintenance
stay in the parent (single-writer, exactly as the thread backend's
per-disk lanes).

The pool uses the ``spawn`` start method: fork-after-threads is unsafe
(and warns on modern interpreters), and the thread backend runs in the
same process.  Spawn start-up is paid once per pool — share one via
:func:`shared_process_pool` (tests and benchmarks do) rather than paying
it per machine.

Charged costs are computed above the executor seam, so this backend is
bit-identical in ``IOStats``/``OpCost``/``RoundPlan`` to the simulated
and threaded executors — the differential suites assert it.
"""

from __future__ import annotations

import multiprocessing
import os
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.fs.blockfile import BlockLogFile, decode_frame
from repro.pdm.block import Block, BlockOverflowError
from repro.pdm.errors import BlockCorruption, DiskFailure, IOFault
from repro.pdm.executors.base import Addr, ReadResult, RoundExecutor
from repro.pdm.executors.filebacked import disk_log_path

#: default pool width: bounded — the pool is shared, not per-machine.
DEFAULT_POOL_WORKERS = 8

_shared_pool: Optional[ProcessPoolExecutor] = None
_shared_pool_lock = threading.Lock()


def shared_process_pool(
    max_workers: int = DEFAULT_POOL_WORKERS,
) -> ProcessPoolExecutor:
    """The process pool shared by every :class:`ProcessExecutor` that was
    not handed its own.  Created lazily (spawn start method), reused until
    :func:`shutdown_shared_pool`."""
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is None:
            _shared_pool = ProcessPoolExecutor(
                max_workers=max_workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
        return _shared_pool


def shutdown_shared_pool() -> None:
    global _shared_pool
    with _shared_pool_lock:
        if _shared_pool is not None:
            _shared_pool.shutdown(wait=True)
            _shared_pool = None


def _serve_extents(
    path: str,
    requests: Sequence[Tuple[int, int, int]],
    delay_ns: int,
) -> List[Tuple[int, bytes]]:
    """Worker-side task: pread each ``(block_index, offset, length)``
    extent of ``path``.  Stateless by design — any pool process can serve
    any disk; raw ``OSError`` crosses back and is typed in the parent."""
    if delay_ns:
        time.sleep(delay_ns * len(requests) / 1e9)
    out: List[Tuple[int, bytes]] = []
    fd = os.open(path, os.O_RDONLY)
    try:
        for block_index, offset, length in requests:
            out.append((block_index, os.pread(fd, length, offset)))
    finally:
        os.close(fd)
    return out


class ProcessExecutor(RoundExecutor):
    """File-backed executor whose reads run on a process pool.

    Parameters mirror :class:`~repro.pdm.executors.filebacked.FileExecutor`
    where they overlap; ``pool`` injects a long-lived
    ``ProcessPoolExecutor`` (``None`` uses :func:`shared_process_pool`,
    which ``close()`` deliberately leaves running)."""

    name = "process"
    inline = False

    def __init__(
        self,
        directory: str,
        *,
        fsync: bool = False,
        transfer_delay_ns: int = 0,
        clock: Optional[Callable[[], int]] = None,
        pool: Optional[ProcessPoolExecutor] = None,
    ):
        super().__init__()
        self.directory = str(directory)
        self.fsync = fsync
        self.transfer_delay_ns = transfer_delay_ns
        self.clock = clock
        self._pool = pool
        self._logs: List[BlockLogFile] = []
        self._closed = False

    # -- lifecycle ---------------------------------------------------------

    def bind(self, machine) -> None:
        super().bind(machine)
        os.makedirs(self.directory, exist_ok=True)
        self._logs = [
            BlockLogFile(disk_log_path(self.directory, i), fsync=self.fsync)
            for i in range(machine.num_disks)
        ]
        if self._pool is None:
            self._pool = shared_process_pool()

    def flush(self) -> None:
        for log in self._logs:
            if not log.closed:
                log.sync()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for log in self._logs:
            log.close()
        # The pool is shared (or caller-owned) long-lived infrastructure;
        # shutdown_shared_pool() ends it explicitly.
        self._pool = None

    # -- physical transfer -------------------------------------------------

    def run_read(self, addrs: Sequence[Addr]) -> Dict[Addr, ReadResult]:
        clock = self.clock
        t0 = clock() if clock is not None else 0
        out: Dict[Addr, ReadResult] = {}
        jobs: List[Tuple[int, List[Addr], object]] = []
        for addr in addrs:
            out.setdefault(addr, None)
        by_disk: Dict[int, List[Tuple[Addr, Tuple[int, int]]]] = {}
        for addr in addrs:
            log = self._logs[addr[0]]
            try:
                extent = log.frame_extent(addr[1])
            except IOFault as fault:
                out[addr] = fault
                continue
            if extent is None:
                continue  # never written: stays None
            by_disk.setdefault(addr[0], []).append((addr, extent))
        for disk_id, entries in by_disk.items():
            requests = [
                (addr[1], offset, length)
                for addr, (offset, length) in entries
            ]
            future = self._pool.submit(
                _serve_extents,
                self._logs[disk_id].path,
                requests,
                self.transfer_delay_ns,
            )
            jobs.append((disk_id, [addr for addr, _ in entries], future))
        block_bits = self.machine.block_bits
        for disk_id, disk_addrs, future in jobs:
            try:
                frames = future.result()
            except OSError as exc:
                fault = DiskFailure(
                    f"process read of disk {disk_id} "
                    f"({self._logs[disk_id].path}) failed: {exc}",
                    disk=disk_id,
                )
                for addr in disk_addrs:
                    out[addr] = fault
                continue
            except BrokenProcessPool as exc:
                raise DiskFailure(
                    f"process pool died serving disk {disk_id}: {exc}"
                ) from exc
            for addr, (_, data) in zip(disk_addrs, frames):
                try:
                    payload, used_bits, checksum = decode_frame(
                        data,
                        path=self._logs[disk_id].path,
                        block_index=addr[1],
                    )
                    blk = Block(block_bits)
                    blk.store(payload, used_bits)
                except IOFault as fault:
                    out[addr] = fault
                    continue
                except (BlockOverflowError, ValueError) as exc:
                    out[addr] = BlockCorruption(
                        f"frame for block {addr} does not fit this "
                        f"machine's geometry: {exc}",
                        addrs=[addr], disk=addr[0],
                    )
                    continue
                blk.checksum = checksum
                out[addr] = blk
        self.observations.note_read(
            len(addrs), (clock() - t0) if clock is not None else 0
        )
        return out

    def run_write(self, stored: Sequence[Tuple[Addr, Block]]) -> None:
        clock = self.clock
        t0 = clock() if clock is not None else 0
        by_disk: Dict[int, List[Tuple[int, Block]]] = {}
        for addr, blk in stored:
            by_disk.setdefault(addr[0], []).append((addr[1], blk))
        for disk_id, entries in by_disk.items():
            self._logs[disk_id].append_many(
                (index, blk.payload, blk.used_bits, blk.checksum)
                for index, blk in entries
            )
        self.observations.note_write(
            len(stored), (clock() - t0) if clock is not None else 0
        )

    # -- physical consistency hooks ----------------------------------------

    def sync_block(self, addr: Addr) -> None:
        blk = self.machine.disks[addr[0]].peek(addr[1])
        if blk is not None:
            self._logs[addr[0]].append_block(
                addr[1], blk.payload, blk.used_bits, blk.checksum
            )

    def resync_disk(self, disk_id: int) -> None:
        log = self._logs[disk_id]
        log.reset()
        disk = self.machine.disks[disk_id]
        log.append_many(
            (index, blk.payload, blk.used_bits, blk.checksum)
            for index, blk in sorted(disk._blocks.items())
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProcessExecutor({self.directory!r})"
