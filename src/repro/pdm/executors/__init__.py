"""Pluggable physical backends for the PDM machines.

The machine plans and charges rounds; a :class:`RoundExecutor` moves the
bytes.  Three implementations:

* :class:`SimulatedExecutor` — in-memory, the default, zero overhead;
* ``FileExecutor`` (:mod:`repro.pdm.executors.filebacked`) — real files,
  one worker thread per disk;
* ``ProcessExecutor`` (:mod:`repro.pdm.executors.procpool`) — same file
  image, reads on a process pool.

This package ``__init__`` imports only the seam (:mod:`.base`): the file
backends pull in :mod:`repro.fs`, whose package import reaches back up
through :mod:`repro.core` to the machine — importing them lazily via
:func:`create_executor` keeps the cycle broken no matter which module is
imported first.
"""

from __future__ import annotations

from typing import Optional

from repro.pdm.executors.base import (
    ExecutorObservations,
    ReadResult,
    RoundExecutor,
    SimulatedExecutor,
)

EXECUTOR_NAMES = ("simulated", "file", "process")


def create_executor(
    name: str, *, directory: Optional[str] = None, **options
) -> RoundExecutor:
    """Build an executor by name.

    ``directory`` is required for the file-backed executors and rejected
    for ``"simulated"``-with-options misuse is surfaced by the underlying
    constructors.  Extra keyword ``options`` pass through (``workers``,
    ``fsync``, ``transfer_delay_ns``, ``clock``, ``lane_factory``,
    ``pool`` — whichever the chosen backend accepts).
    """
    if name == "simulated":
        if directory is not None or options:
            raise ValueError(
                "the simulated executor takes no directory or options"
            )
        return SimulatedExecutor()
    if name == "file":
        if directory is None:
            raise ValueError("the file executor needs a directory")
        from repro.pdm.executors.filebacked import FileExecutor

        return FileExecutor(directory, **options)
    if name == "process":
        if directory is None:
            raise ValueError("the process executor needs a directory")
        from repro.pdm.executors.procpool import ProcessExecutor

        return ProcessExecutor(directory, **options)
    raise ValueError(
        f"unknown executor {name!r}; choose from {EXECUTOR_NAMES}"
    )


__all__ = [
    "EXECUTOR_NAMES",
    "ExecutorObservations",
    "ReadResult",
    "RoundExecutor",
    "SimulatedExecutor",
    "create_executor",
]
