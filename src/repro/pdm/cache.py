"""The M-bounded buffer pool: internal memory holding disk blocks.

The PDM gives every algorithm an internal memory of ``M`` words for free,
but until this module existed the simulator charged a parallel I/O for
*every* block probe — even a re-read of a block fetched one operation ago.
:class:`BufferPool` is the missing piece: a deterministic write-back cache
of at most ``capacity_blocks`` blocks (each ``B`` words, so a pool of
``⌊M/B⌋`` blocks exactly fills the model's internal memory), charged
against the machine's :class:`~repro.pdm.memory.InternalMemory` at
attach time.

Semantics
---------
* **Hits cost zero I/Os.**  A read of a cached address is served from
  memory; the machine charges no rounds and moves no blocks.  Under the
  skewed request mixes of Section 1.2 (a few hot keys absorb most probes)
  this converts the bulk of the charged rounds into free memory hits.
* **Misses fetch-and-fill.**  An uncached address is read through the
  machine's ordinary charged path (checksums verify on the miss fetch,
  exactly as without a pool) and the block is installed in the pool,
  evicting the least-recently-used unpinned entry if the pool is full.
* **Writes are absorbed (write-back).**  ``write_blocks`` on a cached
  machine stores into the pool and marks the entry dirty; the charged
  write happens when the entry is evicted or :meth:`BufferPool.flush` is
  called — as an ordinary accounted write (rounds, ``blocks_written``,
  trace events).  :meth:`~repro.pdm.machine.AbstractDiskMachine.peek_at`
  consults the pool first, so audits and read-modify-write staging always
  see the logical latest contents.
* **Determinism.**  Eviction order is pure LRU over the deterministic
  access sequence; no clocks, no randomness.  Two identical runs evict
  identically (asserted by ``tests/pdm/test_cache.py``).
* **Faults invalidate.**  The fault layer models the I/O channel and the
  medium; a cached copy must never outlive what it claims to mirror.
  :meth:`~repro.pdm.faults.FaultInjector.apply_due_corruption` drops the
  cached copy of every block it scrambles, and a hit on a disk that is
  down (or transient) at the current round is discarded and re-fetched
  through the fault machinery — so degraded verdicts match the uncached
  path exactly.  While an injector is attached the pool runs
  *write-through* (``attach_faults`` flushes and flips the mode): every
  datum reaches the medium immediately, which keeps recovery reasoning
  identical to the uncached machine.

Pinning
-------
``pin(addr)`` exempts an entry from eviction (mid-operation staging that
must not be silently flushed); ``unpin`` releases it.  When every entry is
pinned the pool stops caching new fills rather than evicting a pinned
block — reads still work, they just stay charged.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Dict, Iterator, List, Optional, Tuple

from repro.pdm.block import Block
from repro.pdm.memory import InternalMemory

Addr = Tuple[int, int]


class CacheStats:
    """Deterministic counters of one pool's lifetime."""

    __slots__ = (
        "hits",
        "misses",
        "fills",
        "evictions",
        "flushed_blocks",
        "invalidations",
        "absorbed_writes",
        "write_through_writes",
    )

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0
        self.fills = 0
        self.evictions = 0
        self.flushed_blocks = 0
        self.invalidations = 0
        #: writes absorbed by the pool (deferred to eviction/flush)
        self.absorbed_writes = 0
        #: writes that went straight to disk (write-through mode / pinned-full)
        self.write_through_writes = 0

    @property
    def requests(self) -> int:
        return self.hits + self.misses

    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def as_dict(self) -> Dict[str, float]:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "fills": self.fills,
            "evictions": self.evictions,
            "flushed_blocks": self.flushed_blocks,
            "invalidations": self.invalidations,
            "absorbed_writes": self.absorbed_writes,
            "write_through_writes": self.write_through_writes,
            "hit_rate": self.hit_rate(),
        }


class _Entry:
    """One cached block: the pool-owned copy plus its bookkeeping bits."""

    __slots__ = ("block", "dirty", "pinned")

    def __init__(self, block: Block, dirty: bool = False) -> None:
        self.block = block
        self.dirty = dirty
        self.pinned = False


class BufferPool:
    """A capacity-bounded, deterministic, write-back block cache.

    Create through the machine (``ParallelDiskMachine(..., cache_blocks=N)``)
    or :func:`attach_cache`; the pool charges
    ``capacity_blocks * block_items`` words against the machine's
    :class:`~repro.pdm.memory.InternalMemory` up front, so a pool larger
    than ``⌊M/B⌋`` blocks on an ``M``-word machine raises
    :class:`~repro.pdm.memory.InternalMemoryExceeded` — the model bound is
    enforced, not advisory.
    """

    __slots__ = (
        "capacity_blocks",
        "block_bits",
        "words_per_block",
        "memory",
        "write_through",
        "stats",
        "_entries",
        "_charged_words",
    )

    def __init__(
        self,
        capacity_blocks: int,
        *,
        block_bits: int,
        words_per_block: int,
        memory: Optional[InternalMemory] = None,
    ) -> None:
        if capacity_blocks <= 0:
            raise ValueError(
                f"cache capacity must be positive, got {capacity_blocks}"
            )
        self.capacity_blocks = capacity_blocks
        self.block_bits = block_bits
        self.words_per_block = words_per_block
        self.memory = memory
        self.write_through = False
        self.stats = CacheStats()
        self._entries: "OrderedDict[Addr, _Entry]" = OrderedDict()  # detlint: guarded(pool-lock) -- LRU order mutates on every read; executor split must serialize the pool
        self._charged_words = 0
        if memory is not None:
            words = capacity_blocks * words_per_block
            memory.charge(words)  # raises InternalMemoryExceeded past ⌊M/B⌋
            self._charged_words = words

    # -- introspection -------------------------------------------------------

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, addr: Addr) -> bool:
        return addr in self._entries

    def contains(self, addr: Addr) -> bool:
        """Presence test with no LRU bump and no hit/miss accounting (the
        round planner uses this to drop cached addresses from a plan)."""
        return addr in self._entries

    def cached_addresses(self) -> List[Addr]:
        """Addresses currently cached, LRU-first (deterministic)."""
        return list(self._entries)

    def dirty_addresses(self) -> List[Addr]:
        return [a for a, e in self._entries.items() if e.dirty]

    # -- the read side -------------------------------------------------------

    def get(self, addr: Addr) -> Optional[Block]:
        """Serve a hit (bumping LRU) or return ``None`` on a miss.

        Hit/miss counters are maintained here; the machine's read paths
        call this exactly once per requested address.
        """
        entry = self._entries.get(addr)
        if entry is None:
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        self._entries.move_to_end(addr)
        return entry.block

    def peek(self, addr: Addr) -> Optional[Block]:
        """Like :meth:`get` but free: no LRU bump, no counters.  Used by
        ``machine.peek_at`` so audits don't perturb eviction order."""
        entry = self._entries.get(addr)
        return None if entry is None else entry.block

    def fill(self, addr: Addr, source: Block, machine) -> Block:
        """Install a clean copy of ``source`` after a miss fetch; returns
        the pool-owned block (shared payload — payloads are replaced, never
        mutated, by every writer in this repository).

        If the pool is full the LRU unpinned entry is evicted first (dirty
        evictions flush as ordinary charged writes on ``machine``); if
        every entry is pinned the fill is skipped and ``source`` itself is
        returned — the read stays correct, just uncached.
        """
        entry = self._entries.get(addr)
        if entry is not None:  # refresh (e.g. re-fetch after invalidation)
            entry.block = self._copy(source)
            entry.dirty = False
            self._entries.move_to_end(addr)
            return entry.block
        if not self._make_room(machine):
            return source
        owned = self._copy(source)
        self._entries[addr] = _Entry(owned)
        self.stats.fills += 1
        return owned

    # -- the write side ------------------------------------------------------

    def put(self, addr: Addr, payload, used_bits: int, machine) -> bool:
        """Absorb one write (write-back).  Returns ``False`` when the pool
        cannot take it (every entry pinned and full) — the caller then
        writes through to disk.

        The payload is validated against the block capacity here, exactly
        as a direct :meth:`~repro.pdm.block.Block.store` would.
        """
        block = Block(self.block_bits)
        block.store(payload, used_bits)
        entry = self._entries.get(addr)
        if entry is not None:
            entry.block = block
            entry.dirty = True
            self._entries.move_to_end(addr)
            self.stats.absorbed_writes += 1
            return True
        if not self._make_room(machine):
            return False
        new = _Entry(block, dirty=True)
        self._entries[addr] = new
        self.stats.fills += 1
        self.stats.absorbed_writes += 1
        return True

    def refresh(self, addr: Addr, payload, used_bits: int) -> None:
        """Update the cached copy of a block just written *through* to disk
        (write-through mode keeps hits coherent without going dirty)."""
        entry = self._entries.get(addr)
        if entry is None:
            return
        block = Block(self.block_bits)
        block.store(payload, used_bits)
        entry.block = block
        entry.dirty = False

    # -- pinning -------------------------------------------------------------

    def pin(self, addr: Addr) -> None:
        entry = self._entries.get(addr)
        if entry is None:
            raise KeyError(f"cannot pin uncached block {addr}")
        entry.pinned = True

    def unpin(self, addr: Addr) -> None:
        entry = self._entries.get(addr)
        if entry is None:
            raise KeyError(f"cannot unpin uncached block {addr}")
        entry.pinned = False

    # -- eviction / flush / invalidation ------------------------------------

    def _copy(self, source: Block) -> Block:
        owned = Block(self.block_bits)
        owned.payload = source.payload
        owned.used_bits = source.used_bits
        owned.checksum = source.checksum
        return owned

    def _make_room(self, machine) -> bool:
        """Ensure one free slot; ``False`` when everything is pinned."""
        while len(self._entries) >= self.capacity_blocks:
            victim = None
            for addr, entry in self._entries.items():  # LRU-first order
                if not entry.pinned:
                    victim = addr
                    break
            if victim is None:
                return False
            self._evict(victim, machine)
        return True

    def _evict(self, addr: Addr, machine) -> None:
        entry = self._entries.pop(addr)
        self.stats.evictions += 1
        if entry.dirty:
            machine.flush_writes(
                [(addr, entry.block.payload, entry.block.used_bits)]
            )
            self.stats.flushed_blocks += 1

    def flush(self, machine) -> int:
        """Write every dirty entry back to disk as one ordinary charged
        batch (LRU-first order — deterministic).  Returns the number of
        blocks flushed.  Entries stay cached, now clean."""
        writes = []
        dirty_entries = []
        for addr, entry in self._entries.items():
            if entry.dirty:
                writes.append(
                    (addr, entry.block.payload, entry.block.used_bits)
                )
                dirty_entries.append(entry)
        if writes:
            machine.flush_writes(writes)
            for entry in dirty_entries:
                entry.dirty = False
            self.stats.flushed_blocks += len(writes)
        return len(writes)

    def invalidate(self, addr: Addr) -> bool:
        """Drop a cached copy *without* flushing — the on-disk state is (or
        must become) the truth.  The fault layer calls this when it
        corrupts a block or when a hit lands on a non-``ok`` disk; a
        subsequent read re-fetches through the charged, verified path."""
        entry = self._entries.pop(addr, None)
        if entry is None:
            return False
        self.stats.invalidations += 1
        return True

    def invalidate_all(self) -> int:
        count = len(self._entries)
        self._entries.clear()
        self.stats.invalidations += count
        return count

    def invalidate_disk(self, disk_id: int) -> int:
        """Drop every *clean* cached block of one disk without flushing.

        The health tracker calls this on every state transition: a disk
        healing from a transient window must not keep serving entries
        staged before the window, and a failed disk's stale copies must
        not survive into its rebuilt replacement.  Dirty entries are kept
        — under write-back the pool copy is the authoritative one, so
        dropping it would lose the write (with fault injection attached
        the pool runs write-through and every entry is clean).  Returns
        the number of entries dropped."""
        doomed = [
            addr
            for addr, entry in self._entries.items()
            if addr[0] == disk_id and not entry.dirty
        ]
        for addr in doomed:
            del self._entries[addr]
        self.stats.invalidations += len(doomed)
        return len(doomed)

    def release(self) -> None:
        """Return the pool's charged words to internal memory (detach)."""
        if self.memory is not None and self._charged_words:
            self.memory.release(self._charged_words)
            self._charged_words = 0

    def iter_entries(self) -> Iterator[Tuple[Addr, Block, bool, bool]]:
        """(addr, block, dirty, pinned) LRU-first — tests and exporters."""
        for addr, entry in self._entries.items():
            yield addr, entry.block, entry.dirty, entry.pinned

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"BufferPool({len(self._entries)}/{self.capacity_blocks} blocks, "
            f"dirty={len(self.dirty_addresses())}, "
            f"hit_rate={self.stats.hit_rate():.3f})"
        )


def max_cache_blocks(memory: InternalMemory, words_per_block: int) -> int:
    """The largest pool that still fits: ``⌊(M - used)/B⌋`` blocks (or a
    nominal large number when the memory is unbounded)."""
    if memory.capacity_words is None:
        return 1 << 20
    free = memory.capacity_words - memory.used_words
    return max(0, free // words_per_block)


def attach_cache(machine, capacity_blocks: int) -> BufferPool:
    """Wire a buffer pool into ``machine`` and return it.

    Charges ``capacity_blocks * B`` words against the machine's internal
    memory; raises :class:`~repro.pdm.memory.InternalMemoryExceeded` when
    that exceeds the configured ``M``.
    """
    if machine.cache is not None:
        raise RuntimeError("machine already has a buffer pool attached")
    pool = BufferPool(
        capacity_blocks,
        block_bits=machine.block_bits,
        words_per_block=machine.block_items,
        memory=machine.memory,
    )
    if machine.faults is not None:
        pool.write_through = True
    machine.cache = pool
    return pool


def detach_cache(machine) -> None:
    """Flush every dirty block, release the charged memory, and remove the
    pool.  All written data survives on disk."""
    pool = machine.cache
    if pool is None:
        return
    pool.flush(machine)
    pool.release()
    machine.cache = None
