"""Machine-side fault injection primitives.

This module is the *mechanism* half of the fault subsystem: fault event
records, the :class:`FaultyDisk` wrapper, and the :class:`FaultInjector`
that the machine consults on every I/O batch.  The *policy* half — building
seeded schedules and running chaos workloads — lives in :mod:`repro.faults`,
outside the PDM layer, exactly as :mod:`repro.pdm.spans` holds the recorder
while :mod:`repro.obs` holds the analysis.  The split keeps the hot path
honest: a machine with no faults attached pays a single ``is None`` check,
and ``repro.pdm`` never imports upward.

Time is the machine's logical round clock (``stats.total_ios``): an event
window ``[start, end)`` is active whenever a batch begins at a round count
inside it.  No wall clock anywhere, so a fault schedule replays
bit-identically.

Event types
-----------
* :class:`DiskOutage` — the disk answers nothing in the window; reads and
  writes fail with :class:`~repro.pdm.errors.DiskFailure`.
* :class:`TransientWindow` — reads fail with
  :class:`~repro.pdm.errors.TransientIOError`, but the machine retries the
  failed sub-batch in later rounds (up to ``machine.retry_budget`` extra
  attempts); because retries advance the clock, short windows heal.
* :class:`SilentCorruption` — at its round, the payload of one block is
  deterministically scrambled *without* touching its checksum.  With
  ``machine.checksums`` on, verify-on-read surfaces this as
  :class:`~repro.pdm.errors.BlockCorruption`; with checksums off it is the
  nightmare case — plausible-looking wrong data.
* :class:`StragglerWindow` — the disk still answers, but every read batch
  touching it costs ``extra_rounds`` additional rounds, accounted under
  ``retry_ios`` (fault-attributable overhead).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Iterable, List, Optional, Tuple

from repro.bits.mix import splitmix64
from repro.pdm.block import Block
from repro.pdm.disk import Disk

Addr = Tuple[int, int]


# -- fault events -------------------------------------------------------------


@dataclass(frozen=True)
class DiskOutage:
    """Disk ``disk`` is unreachable for rounds ``start <= clock < end``."""

    disk: int
    start: int
    end: int


@dataclass(frozen=True)
class TransientWindow:
    """Reads of ``disk`` fail (retryably) for ``start <= clock < end``."""

    disk: int
    start: int
    end: int


@dataclass(frozen=True)
class SilentCorruption:
    """At the first batch with ``clock >= round``, scramble one block."""

    disk: int
    round: int
    block: int
    salt: int = 0


@dataclass(frozen=True)
class StragglerWindow:
    """Read batches touching ``disk`` in the window pay extra rounds."""

    disk: int
    start: int
    end: int
    extra_rounds: int = 1


FaultEvent = Any  # union of the four dataclasses above


# -- deterministic payload scrambling ----------------------------------------


def corrupt_value(value: Any, salt: int) -> Any:
    """Deterministically scramble one stored value, preserving its shape.

    Shape preservation matters: corruption must produce *plausible* garbage
    (a different key, a flipped fragment) rather than something that crashes
    the reader — that is what makes silent corruption dangerous and
    checksums worth their bits.
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return not value
    if isinstance(value, int):
        flipped = value ^ (splitmix64(salt) or 1)
        return flipped if flipped != value else value + 1
    if isinstance(value, str):
        return value + format(splitmix64(salt) & 0xFFFF, "04x")
    if isinstance(value, tuple):
        if not value:
            return value
        idx = splitmix64(salt ^ 0x7F) % len(value)
        return tuple(
            corrupt_value(v, splitmix64(salt + i)) if i == idx else v
            for i, v in enumerate(value)
        )
    if isinstance(value, list):
        if not value:
            return value
        idx = splitmix64(salt ^ 0x7F) % len(value)
        return [
            corrupt_value(v, splitmix64(salt + i)) if i == idx else v
            for i, v in enumerate(value)
        ]
    to_int = getattr(value, "to_int", None)
    from_int = getattr(type(value), "from_int", None)
    if to_int is not None and from_int is not None and len(value) > 0:
        # BitVector-like: flip one deterministic bit.
        bit = splitmix64(salt ^ 0x155) % len(value)
        return from_int(to_int() ^ (1 << bit), len(value))
    return value  # unknown immutable shape: leave as-is (still counts as hit)


def corrupt_payload(payload: Any, salt: int) -> Any:
    """Scramble a block payload (a list of slot values, usually)."""
    if payload is None:
        return None
    if isinstance(payload, list):
        if not payload:
            return payload
        # Corrupt every non-empty slot: a media error rarely respects slot
        # boundaries, and this guarantees the block's contents changed.
        return [
            corrupt_value(v, splitmix64(salt ^ (0x9E37 + i)))
            for i, v in enumerate(payload)
        ]
    return corrupt_value(payload, salt)


# -- the faulty disk wrapper --------------------------------------------------


class FaultyDisk(Disk):
    """A :class:`~repro.pdm.disk.Disk` that knows its own fault schedule.

    Shares the wrapped disk's block storage (same dict object), so data
    written before attachment stays visible and :func:`detach_faults`
    restores the original disk without copying.  Direct ``block``/``peek``
    access (audits, ``block_at``) is *not* fault-checked — faults model the
    I/O channel, not the medium's existence; only the machine's charged
    read/write paths consult :meth:`status_at`.
    """

    __slots__ = ("outages", "transients", "stragglers")

    def __init__(self, disk_id: int, block_bits: int):
        super().__init__(disk_id, block_bits)
        self.outages: List[Tuple[int, int]] = []
        self.transients: List[Tuple[int, int]] = []
        self.stragglers: List[Tuple[int, int, int]] = []

    @classmethod
    def wrap(cls, disk: Disk) -> "FaultyDisk":
        fd = cls(disk.disk_id, disk.block_bits)
        fd._blocks = disk._blocks  # shared storage, not a copy
        fd.high_water = disk.high_water
        return fd

    def status_at(self, clock: int) -> str:
        """``"down"``, ``"transient"`` or ``"ok"`` at logical round ``clock``.

        An outage shadows an overlapping transient window — the stronger
        fault wins, deterministically.
        """
        for start, end in self.outages:
            if start <= clock < end:
                return "down"
        for start, end in self.transients:
            if start <= clock < end:
                return "transient"
        return "ok"

    def extra_rounds_at(self, clock: int) -> int:
        """Straggler penalty for a read batch starting at ``clock``."""
        extra = 0
        for start, end, rounds in self.stragglers:
            if start <= clock < end and rounds > extra:
                extra = rounds
        return extra

    def respawn(self, storage: Disk, clock: int) -> "FaultyDisk":
        """The wrapper for this slot after a rebuild onto ``storage``.

        The physical device was replaced, so fault windows already begun
        die with it; windows scheduled to *start* after ``clock`` belong
        to the slot's future (the chaos plan keeps applying to whatever
        disk sits there) and carry over.  Storage is shared with the
        spare, not copied — same contract as :meth:`wrap`."""
        fd = FaultyDisk(self.disk_id, self.block_bits)
        fd._blocks = storage._blocks
        fd.high_water = storage.high_water
        fd.outages = [(s, e) for s, e in self.outages if s > clock]
        fd.transients = [(s, e) for s, e in self.transients if s > clock]
        fd.stragglers = [
            (s, e, r) for s, e, r in self.stragglers if s > clock
        ]
        return fd


# -- the injector -------------------------------------------------------------


class FaultInjector:
    """Holds a machine's fault schedule and injection counters.

    Attach with :func:`attach_faults`; the machine's I/O paths then consult
    ``machine.faults`` (this object) once per batch.  Everything here is a
    pure function of the event list and the logical clock.
    """

    def __init__(self, events: Iterable[FaultEvent]):
        self.events: List[FaultEvent] = list(events)
        #: pending corruption events, consumed in deterministic order
        self._corruptions: List[SilentCorruption] = [
            e for e in self.events if isinstance(e, SilentCorruption)
        ]
        #: injection counters by fault kind, for ``repro.obs`` collectors
        self.injected: Dict[str, int] = {  # detlint: guarded(machine-op) -- mutated only inside machine operations, which serialize per machine
            "disk_failure": 0,
            "transient": 0,
            "corruption": 0,
            "straggler_rounds": 0,
        }
        self._disks: List[FaultyDisk] = []

    def bind(self, disks: List[FaultyDisk]) -> None:
        """Distribute window events onto their disks' schedules."""
        self._disks = disks
        for event in self.events:
            if isinstance(event, DiskOutage):
                disks[event.disk].outages.append((event.start, event.end))
            elif isinstance(event, TransientWindow):
                disks[event.disk].transients.append((event.start, event.end))
            elif isinstance(event, StragglerWindow):
                disks[event.disk].stragglers.append(
                    (event.start, event.end, event.extra_rounds)
                )

    def count(self, kind: str, amount: int = 1) -> None:
        self.injected[kind] = self.injected.get(kind, 0) + amount

    def apply_due_corruption(self, clock: int, machine) -> None:
        """Fire every corruption event whose round has arrived.

        Replaces the stored block with a copy whose payload is scrambled
        *without* resealing, so a later checksummed read sees the mismatch.
        Copy-on-corrupt (rather than mutating the live object) means
        references handed out by earlier reads keep the bytes that were
        actually transferred — the semantics every physical backend has
        naturally, which the executor-equivalence suite relies on.
        Corrupting a never-written block is a no-op (there is nothing to
        scramble) but still consumes the event.
        """
        if not self._corruptions:
            return
        due = [c for c in self._corruptions if c.round <= clock]
        if not due:
            return
        self._corruptions = [c for c in self._corruptions if c.round > clock]
        cache = getattr(machine, "cache", None)
        for c in due:
            if not 0 <= c.disk < len(machine.disks):
                continue
            disk = machine.disks[c.disk]
            blk = disk.peek(c.block)
            if blk is None or blk.payload is None:
                continue
            scrambled = Block(blk.capacity_bits)
            scrambled.payload = corrupt_payload(
                blk.payload, splitmix64(c.salt ^ (c.disk << 20) ^ c.block)
            )
            scrambled.used_bits = blk.used_bits
            scrambled.checksum = blk.checksum  # stale seal: verify() fails
            disk._blocks[c.block] = scrambled
            if cache is not None:
                # A cached copy predates the corruption (payloads are
                # replaced, never mutated, so the pool still holds clean
                # data) — drop it so the next read re-fetches from the
                # medium and the checksum verdict matches the uncached
                # machine exactly.
                cache.invalidate((c.disk, c.block))
            executor = getattr(machine, "executor", None)
            if executor is not None and not executor.inline:
                # The scrambled payload must reach the physical medium
                # too, or a file-backed read would serve clean bytes and
                # the checksum verdict would diverge from the simulator.
                executor.sync_block((c.disk, c.block))
            self.count("corruption")

    @property
    def pending_corruptions(self) -> int:
        return len(self._corruptions)


# -- attach / detach ----------------------------------------------------------


def attach_faults(
    machine,
    events: Iterable[FaultEvent],
    *,
    checksums: bool = True,
    retry_budget: Optional[int] = None,
) -> FaultInjector:
    """Wire a fault schedule into ``machine`` and return the injector.

    Replaces the machine's disks with schedule-aware :class:`FaultyDisk`
    wrappers (sharing storage), sets ``machine.faults``, and — by default —
    turns on write-sealing/verify-on-read checksums, since degraded-mode
    recovery is only sound when corruption is detectable.

    Enabling checksums also seals every block already on the disks (a
    metadata-only scrub, no I/O charged): data written before the attach
    carries no checksum, and an unsealed block verifies trivially — later
    corruption of it would be returned as truth.
    """
    if machine.faults is not None:
        raise RuntimeError("machine already has a fault injector attached")
    cache = getattr(machine, "cache", None)
    if cache is not None:
        # Degraded-mode reasoning assumes the medium holds every datum:
        # flush the pool's dirty blocks (ordinary charged writes, before
        # the fault clock starts mattering) and run write-through while
        # the injector is attached.
        cache.flush(machine)
        cache.write_through = True
    injector = FaultInjector(events)
    for event in injector.events:
        disk = getattr(event, "disk", None)
        if disk is None or not 0 <= disk < machine.num_disks:
            raise ValueError(f"fault event targets invalid disk: {event!r}")
    wrapped = [FaultyDisk.wrap(d) for d in machine.disks]
    injector.bind(wrapped)
    machine.disks = wrapped
    machine.faults = injector
    if checksums:
        machine.checksums = True
        executor = getattr(machine, "executor", None)
        mirror = executor is not None and not executor.inline
        for disk in machine.disks:
            for index in sorted(disk._blocks):
                block = disk._blocks[index]
                if block.checksum is None:
                    block.seal()
                    if mirror:
                        # Re-mirror the freshly sealed frame so the
                        # on-medium checksum matches the logical one.
                        executor.sync_block((disk.disk_id, index))
    if retry_budget is not None:
        if retry_budget < 0:
            raise ValueError(f"retry budget must be >= 0, got {retry_budget}")
        machine.retry_budget = retry_budget
    return injector


def detach_faults(machine) -> None:
    """Remove the injector and restore plain disks (storage is shared, so
    all written data survives)."""
    if machine.faults is None:
        return
    plain = []
    for fd in machine.disks:
        d = Disk(fd.disk_id, fd.block_bits)
        d._blocks = fd._blocks
        d.high_water = fd.high_water
        plain.append(d)
    machine.disks = plain
    machine.faults = None
    cache = getattr(machine, "cache", None)
    if cache is not None:
        cache.write_through = False
