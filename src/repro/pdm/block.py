"""Disk blocks.

A block has a fixed bit capacity (``B`` items of ``item_bits`` bits each in
the classical formulation).  Payloads are arbitrary Python objects; the
*structure* that owns the block declares how many bits its payload occupies,
and the block enforces the capacity.  This keeps the simulator honest about
the space claims of Theorem 6 without forcing every data structure through a
bit-serialisation layer.
"""

from __future__ import annotations

from typing import Any


class BlockOverflowError(Exception):
    """Raised when a payload is declared larger than the block capacity."""


class Block:
    """One disk block: a payload plus bit-granular capacity accounting."""

    __slots__ = ("capacity_bits", "payload", "used_bits")

    def __init__(self, capacity_bits: int):
        if capacity_bits <= 0:
            raise ValueError(f"block capacity must be positive, got {capacity_bits}")
        self.capacity_bits = capacity_bits
        self.payload: Any = None
        self.used_bits = 0

    @property
    def is_empty(self) -> bool:
        return self.payload is None and self.used_bits == 0

    @property
    def free_bits(self) -> int:
        return self.capacity_bits - self.used_bits

    def store(self, payload: Any, used_bits: int) -> None:
        """Replace the block contents, declaring the payload size in bits."""
        if used_bits < 0:
            raise ValueError(f"used_bits must be non-negative, got {used_bits}")
        if used_bits > self.capacity_bits:
            raise BlockOverflowError(
                f"payload of {used_bits} bits exceeds block capacity of "
                f"{self.capacity_bits} bits"
            )
        self.payload = payload
        self.used_bits = used_bits

    def clear(self) -> None:
        self.payload = None
        self.used_bits = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block(used={self.used_bits}/{self.capacity_bits} bits, "
            f"payload={self.payload!r})"
        )
