"""Disk blocks.

A block has a fixed bit capacity (``B`` items of ``item_bits`` bits each in
the classical formulation).  Payloads are arbitrary Python objects; the
*structure* that owns the block declares how many bits its payload occupies,
and the block enforces the capacity.  This keeps the simulator honest about
the space claims of Theorem 6 without forcing every data structure through a
bit-serialisation layer.

Integrity: a block can carry a *checksum* — a deterministic 64-bit
fingerprint of its payload (:func:`payload_fingerprint`, built on
:func:`repro.bits.mix.stable_hash`, so it is identical across processes and
platforms).  Checksums are maintained by the machine when its ``checksums``
flag is on: every :meth:`Block.seal` after a write records the fingerprint,
and verify-on-read (:meth:`Block.verify`) turns *silent* corruption — a
payload mutated behind the accountant's back by the fault layer — into a
typed :class:`~repro.pdm.errors.BlockCorruption`.
"""

from __future__ import annotations

import itertools
from typing import Any, Optional

from repro.bits.mix import splitmix64, stable_hash

#: process-wide monotonic stamp source for :attr:`Block.version`.  Being
#: global (not per-block) makes a version globally unique: even when a
#: fault replaces a Block object wholesale, the replacement's stamp can
#: never collide with the stamp a cache recorded for the old object.
_next_version = itertools.count(1).__next__


class BlockOverflowError(Exception):
    """Raised when a payload is declared larger than the block capacity."""


def _fingerprint_obj(obj: Any, acc: int) -> int:
    """Fold one payload object into the running fingerprint.

    Handles the payload shapes the simulator stores (None, ints, strings,
    bytes, bools, bit vectors, and nested lists/tuples of those); anything
    else is folded through its ``repr``, which is deterministic for every
    type this repository puts on disk.
    """
    if obj is None:
        return splitmix64(acc ^ 0x9E3779B97F4A7C15)
    if isinstance(obj, bool):
        return splitmix64(acc ^ (0xB0 + int(obj)))
    if isinstance(obj, int):
        return splitmix64(acc ^ stable_hash(obj))
    if isinstance(obj, (str, bytes, bytearray)):
        return splitmix64(acc ^ stable_hash(bytes(obj) if not isinstance(obj, str) else obj))
    if isinstance(obj, (list, tuple)):
        acc = splitmix64(acc ^ (0x1157 + len(obj)))
        for item in obj:
            acc = _fingerprint_obj(item, acc)
        return acc
    # BitVector and friends: a stable repr is part of their contract.
    return splitmix64(acc ^ stable_hash(repr(obj)))


def payload_fingerprint(payload: Any, used_bits: int) -> int:
    """Deterministic 64-bit fingerprint of ``(payload, used_bits)``."""
    return _fingerprint_obj(payload, splitmix64(used_bits + 0xA0761D6478BD642F))


class Block:
    """One disk block: a payload plus bit-granular capacity accounting."""

    __slots__ = ("capacity_bits", "payload", "used_bits", "checksum", "version")

    def __init__(self, capacity_bits: int):
        if capacity_bits <= 0:
            raise ValueError(f"block capacity must be positive, got {capacity_bits}")
        self.capacity_bits = capacity_bits
        self.payload: Any = None
        self.used_bits = 0
        #: fingerprint of the payload at the last sealed write, or ``None``
        #: when the block has never been written with checksums enabled.
        self.checksum: Optional[int] = None
        #: globally-unique content stamp, refreshed by every :meth:`store`
        #: / :meth:`clear`.  Derived caches (the batch kernels' key
        #: columns) key on it: an unchanged version proves the payload was
        #: not replaced through the write API.  It deliberately does NOT
        #: cover in-place mutation behind the API (fault corruption, the
        #: buffer pool's refresh) — consumers must not cache across those.
        self.version: int = _next_version()

    @property
    def is_empty(self) -> bool:
        return self.payload is None and self.used_bits == 0

    @property
    def free_bits(self) -> int:
        return self.capacity_bits - self.used_bits

    def store(self, payload: Any, used_bits: int) -> None:
        """Replace the block contents, declaring the payload size in bits.

        Any previous checksum is invalidated; the machine re-seals after a
        checksummed write (:meth:`seal`).
        """
        if used_bits < 0:
            raise ValueError(f"used_bits must be non-negative, got {used_bits}")
        if used_bits > self.capacity_bits:
            raise BlockOverflowError(
                f"payload of {used_bits} bits exceeds block capacity of "
                f"{self.capacity_bits} bits"
            )
        self.payload = payload
        self.used_bits = used_bits
        self.checksum = None
        self.version = _next_version()

    def clear(self) -> None:
        self.payload = None
        self.used_bits = 0
        self.checksum = None
        self.version = _next_version()

    # -- integrity ----------------------------------------------------------

    def seal(self) -> int:
        """Record the fingerprint of the current contents and return it."""
        self.checksum = payload_fingerprint(self.payload, self.used_bits)
        return self.checksum

    def verify(self) -> bool:
        """``True`` iff the contents still match the sealed checksum.

        An unsealed block (``checksum is None`` — written before checksums
        were enabled, or never written) trivially verifies: there is no
        integrity claim to check.
        """
        if self.checksum is None:
            return True
        return self.checksum == payload_fingerprint(self.payload, self.used_bits)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Block(used={self.used_bits}/{self.capacity_bits} bits, "
            f"payload={self.payload!r})"
        )
