"""I/O accounting for the parallel disk model.

Every machine owns an :class:`IOStats` counter.  Structures measure the cost
of a single operation by taking a snapshot before and subtracting after
(:func:`measure` packages this as a context manager yielding an
:class:`OpCost`).

Composite dictionaries (Theorem 6(a), Theorem 7) run two sub-dictionaries on
*disjoint* groups of disks and query them simultaneously; the parallel I/O
cost of such an operation is the **maximum**, not the sum, of the two
sub-costs.  :meth:`OpCost.parallel` implements that combination (element-wise
``max`` on I/O rounds — a safe upper bound on the true interleaved schedule —
and ``+`` on block counters, which count data volume rather than rounds).

:mod:`repro.pdm.spans` builds on these primitives: a span is a named,
nestable ``measure`` window whose tree records the sequential/parallel
composition explicitly, feeding the ``repro.obs`` observability layer.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass(slots=True)
class IOStats:
    """Cumulative I/O counters of one machine.

    ``read_ios`` / ``write_ios`` count *parallel I/O rounds* — the quantity
    the paper's theorems bound.  ``blocks_read`` / ``blocks_written`` count
    individual blocks moved (data volume); in the PDM one round moves at most
    ``D`` blocks.
    """

    read_ios: int = 0
    write_ios: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    #: Extra rounds spent re-issuing reads after transient faults.  These
    #: rounds are *also* counted in ``read_ios`` (they are real I/O); this
    #: field isolates how much of the total is recovery overhead.
    retry_ios: int = 0
    #: Rounds spent on repair work: re-writing blocks to heal detected
    #: corruption (read-repair), rebuild reads/writes metered by the
    #: recovery manager, and scrub passes.  Also counted in ``read_ios``
    #: or ``write_ios`` as appropriate; see ``retry_ios``.
    repair_ios: int = 0

    @property
    def total_ios(self) -> int:
        """Total parallel I/O rounds (reads plus writes)."""
        return self.read_ios + self.write_ios

    def utilization(self, num_disks: int) -> float:
        """Fraction of the array's bandwidth actually used:
        ``blocks moved / (rounds * D)``.  Striped access patterns approach
        1.0; un-striped ones collapse toward ``1/D`` — the quantitative
        version of why Section 2 requires striped expanders."""
        if num_disks <= 0:
            raise ValueError(
                f"utilization needs a positive disk count, got {num_disks}"
            )
        rounds = self.total_ios
        if rounds == 0:
            return 0.0
        return (self.blocks_read + self.blocks_written) / (rounds * num_disks)

    def snapshot(self) -> "IOStats":
        """Return an immutable copy of the current counters."""
        return IOStats(
            self.read_ios,
            self.write_ios,
            self.blocks_read,
            self.blocks_written,
            self.retry_ios,
            self.repair_ios,
        )

    def since(self, snap: "IOStats") -> "OpCost":
        """Cost accumulated since ``snap`` was taken."""
        return OpCost(
            read_ios=self.read_ios - snap.read_ios,
            write_ios=self.write_ios - snap.write_ios,
            blocks_read=self.blocks_read - snap.blocks_read,
            blocks_written=self.blocks_written - snap.blocks_written,
            retry_ios=self.retry_ios - snap.retry_ios,
            repair_ios=self.repair_ios - snap.repair_ios,
        )

    def add(self, cost: "OpCost") -> None:
        """Fold an :class:`OpCost` back into the cumulative counters."""
        self.read_ios += cost.read_ios
        self.write_ios += cost.write_ios
        self.blocks_read += cost.blocks_read
        self.blocks_written += cost.blocks_written
        self.retry_ios += cost.retry_ios
        self.repair_ios += cost.repair_ios

    def merge(self, other: "IOStats") -> "IOStats":
        """Return a new :class:`IOStats` with both counter sets summed.

        Merging treats the two machines' histories as sequential work by a
        single driver (the same convention as :func:`measure` across several
        machines); use :meth:`OpCost.parallel` for simultaneous probes of
        disjoint disk groups.
        """
        return IOStats(
            self.read_ios + other.read_ios,
            self.write_ios + other.write_ios,
            self.blocks_read + other.blocks_read,
            self.blocks_written + other.blocks_written,
            self.retry_ios + other.retry_ios,
            self.repair_ios + other.repair_ios,
        )

    def reset(self) -> None:
        self.read_ios = 0
        self.write_ios = 0
        self.blocks_read = 0
        self.blocks_written = 0
        self.retry_ios = 0
        self.repair_ios = 0


@dataclass(frozen=True, slots=True)
class OpCost:
    """The parallel-I/O cost of a single (possibly composite) operation."""

    read_ios: int = 0
    write_ios: int = 0
    blocks_read: int = 0
    blocks_written: int = 0
    retry_ios: int = 0
    repair_ios: int = 0

    @property
    def total_ios(self) -> int:
        return self.read_ios + self.write_ios

    @property
    def recovery_ios(self) -> int:
        """Rounds attributable to fault recovery (retries plus repairs).
        A subset of ``total_ios``, never an addition to it."""
        return self.retry_ios + self.repair_ios

    def __add__(self, other: "OpCost") -> "OpCost":
        """Sequential composition: phases that must happen one after another."""
        return OpCost(
            self.read_ios + other.read_ios,
            self.write_ios + other.write_ios,
            self.blocks_read + other.blocks_read,
            self.blocks_written + other.blocks_written,
            self.retry_ios + other.retry_ios,
            self.repair_ios + other.repair_ios,
        )

    def __sub__(self, other: "OpCost") -> "OpCost":
        """Counter-wise difference (the residual of a parent span after its
        children are accounted for)."""
        return OpCost(
            self.read_ios - other.read_ios,
            self.write_ios - other.write_ios,
            self.blocks_read - other.blocks_read,
            self.blocks_written - other.blocks_written,
            self.retry_ios - other.retry_ios,
            self.repair_ios - other.repair_ios,
        )

    def utilization(self, num_disks: int) -> float:
        """Per-operation bandwidth utilization, the :meth:`IOStats.utilization`
        counterpart: ``blocks moved / (rounds * D)``."""
        if num_disks <= 0:
            raise ValueError(
                f"utilization needs a positive disk count, got {num_disks}"
            )
        rounds = self.total_ios
        if rounds == 0:
            return 0.0
        return (self.blocks_read + self.blocks_written) / (rounds * num_disks)

    @staticmethod
    def parallel(*costs: "OpCost") -> "OpCost":
        """Parallel composition: phases executed simultaneously on disjoint
        disk groups.  Rounds combine with ``max`` (conservative upper bound),
        block volumes with ``+``."""
        if not costs:
            return OpCost()
        return OpCost(
            read_ios=max(c.read_ios for c in costs),
            write_ios=max(c.write_ios for c in costs),
            blocks_read=sum(c.blocks_read for c in costs),
            blocks_written=sum(c.blocks_written for c in costs),
            retry_ios=max(c.retry_ios for c in costs),
            repair_ios=max(c.repair_ios for c in costs),
        )

    @staticmethod
    def zero() -> "OpCost":
        return OpCost()


@dataclass(slots=True)
class _CostBox:
    """Mutable holder filled in when a :func:`measure` block exits."""

    cost: OpCost = field(default_factory=OpCost)

    @property
    def total_ios(self) -> int:
        return self.cost.total_ios

    @property
    def read_ios(self) -> int:
        return self.cost.read_ios

    @property
    def write_ios(self) -> int:
        return self.cost.write_ios


@contextmanager
def measure(*machines) -> Iterator[_CostBox]:
    """Measure the I/O cost incurred on ``machines`` inside the block.

    Costs across machines combine *sequentially* (``+``) by default because a
    single thread of control drives them; use :meth:`OpCost.parallel`
    explicitly when modelling simultaneous sub-structure probes.

    >>> with measure(machine) as m:
    ...     machine.read_blocks(addrs)
    >>> m.total_ios
    1
    """
    snaps = [m.stats.snapshot() for m in machines]
    box = _CostBox()
    try:
        yield box
    finally:
        total = OpCost()
        for machine, snap in zip(machines, snaps):
            total = total + machine.stats.since(snap)
        box.cost = total
