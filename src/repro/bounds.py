"""Closed-form versions of every quantitative bound in the paper.

Single home for the formulas that tests, benchmarks and EXPERIMENTS.md
compare measurements against.  Each function cites its source statement.
"""

from __future__ import annotations

import math


def lemma3_max_load(
    n: int, v: int, k: int, d: int, eps: float, delta: float
) -> float:
    """Lemma 3: ``kn/((1-delta)v) + log_{(1-eps)d/k} v``."""
    base = (1 - eps) * d / k
    if base <= 1:
        raise ValueError("Lemma 3 needs (1 - eps) d / k > 1")
    return k * n / ((1 - delta) * v) + math.log(v, base)


def lemma4_unique_neighbors(d: int, eps: float, n: int) -> float:
    """Lemma 4: ``|Phi(S)| >= (1 - 2 eps) d n``."""
    return (1 - 2 * eps) * d * n


def lemma5_assignable(n: int, eps: float, lam: float) -> float:
    """Lemma 5: ``|S'| >= (1 - 2 eps / lam) n``."""
    return (1 - 2 * eps / lam) * n


def theorem6_fields_per_key(d: int) -> int:
    """Theorem 6 construction: every key is assigned ``ceil(2d/3)`` fields."""
    return -(-2 * d // 3)


def theorem6_case_a_space_bits(n: int, u: int, sigma: int, c: float = 64.0) -> float:
    """Theorem 6(a): ``O(n (log u + sigma))`` bits; ``c`` is the constant
    our geometry realises (64-bit items, slack-4 arrays)."""
    return c * n * (math.log2(max(u, 2)) + sigma)


def theorem6_case_b_space_bits(n: int, u: int, sigma: int, c: float = 64.0) -> float:
    """Theorem 6(b): ``O(n log u log n + n sigma)`` bits."""
    return c * n * (
        math.log2(max(u, 2)) * math.log2(max(n, 2)) + sigma
    )


def theorem6_case_b_field_bits(n: int, sigma: int, d: int) -> int:
    """Theorem 6(b): fields of ``lg n + 3 sigma / (2d)`` bits."""
    ident = max(1, math.ceil(math.log2(max(n, 2))))
    frag = math.ceil(sigma / theorem6_fields_per_key(d)) if sigma else 0
    return ident + frag


def theorem6_case_a_field_bits(sigma: int, d: int) -> int:
    """Theorem 6(a): fields of ``3 sigma / (2d) + 4`` bits (large-sigma
    regime; the implementation also enforces the per-field unary floor)."""
    return math.ceil(3 * sigma / (2 * d)) + 4


def theorem7_degree_floor(eps: float) -> int:
    """Theorem 7: degree ``d > 6 (1 + 1/eps)``."""
    return math.floor(6 * (1 + 1 / eps)) + 1


def theorem7_num_levels(N: int, eps: float) -> int:
    """Theorem 7: ``l = log N / log(1/(6 eps))`` arrays."""
    if not 0 < 6 * eps < 1:
        raise ValueError("Theorem 7 needs 6 eps < 1")
    return max(1, math.ceil(math.log(max(N, 2)) / math.log(1 / (6 * eps))))


def theorem7_avg_reads(eps_level: float, max_levels: int | None = None) -> float:
    """Theorem 7's geometric series: ``1 + r + r^2 + ...`` with
    ``r = 6 eps`` (here the level-shrink ratio)."""
    if not 0 < eps_level < 1:
        raise ValueError("ratio must lie in (0, 1)")
    if max_levels is None:
        return 1 / (1 - eps_level)
    return sum(eps_level**i for i in range(max_levels))


def btree_height(n: int, fanout: int) -> int:
    """The Section 1.2 baseline: ``Theta(log_{BD} n)`` I/Os per access."""
    if fanout < 2:
        raise ValueError("fan-out must be at least 2")
    return max(1, math.ceil(math.log(max(n, 2), fanout)))


def striping_space_blowup(d: int) -> int:
    """Section 5 closing remark: trivial striping costs a factor ``d``."""
    return d


def telescope_eps(stage_epsilons) -> float:
    """Lemmas 10/11: composed error ``1 - prod(1 - eps_i)``."""
    acc = 1.0
    for e in stage_epsilons:
        acc *= 1 - e
    return 1 - acc
