"""Instrumented workload runs: the glue between ``repro.workloads`` and
the observability layer.

:func:`run_instrumented` builds a machine and a dictionary, attaches a
span recorder (and optionally an I/O tracer), replays a generated
workload, collects metrics, and evaluates the theorem-bound monitors —
returning everything as one :class:`ObsReport`.  The CLI
(``python -m repro.obs``) and the smoke benchmark are thin wrappers over
this function.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional

from repro.analysis.reporting import render_table
from repro.core.basic_dict import BasicDictionary
from repro.core.dynamic_dict import DynamicDictionary
from repro.obs import wallclock
from repro.obs.export import span_events
from repro.obs.latency import DiskTimeline, collect_latency, percentile_rows
from repro.obs.metrics import (
    MetricsRegistry,
    collect_batches,
    collect_load_distribution,
    collect_machine,
    collect_spans,
)
from repro.obs.monitors import MonitorSet, default_monitors
from repro.obs.wallclock import enable_wall_clock
from repro.pdm.executors import create_executor
from repro.pdm.machine import ParallelDiskMachine
from repro.pdm.spans import SpanRecorder, attach_spans
from repro.pdm.trace import TraceRecorder, attach
from repro.workloads.replay import ReplaySummary, Workload, replay

STRUCTURES = ("basic", "dynamic")


def _cleanup_on_close(machine: ParallelDiskMachine, directory: str) -> None:
    """Arrange for ``machine.close()`` to also remove ``directory`` (the
    throwaway image backing an ``executor_dir``-less file-backed run)."""
    inner = machine.close

    def close() -> None:
        inner()
        shutil.rmtree(directory, ignore_errors=True)

    machine.close = close  # type: ignore[method-assign]


@dataclass
class ObsReport:
    """Everything one instrumented run produced."""

    structure: str
    params: Dict[str, Any]
    summary: ReplaySummary
    recorder: SpanRecorder
    registry: MetricsRegistry
    monitors: MonitorSet
    tracer: Optional[TraceRecorder] = None
    machine: Any = None
    dictionary: Any = None
    notes: List[str] = field(default_factory=list)
    #: wall-clock channel, populated only by ``run_instrumented(wall=True)``.
    #: Deliberately a *separate* registry and deliberately absent from
    #: :meth:`to_dict`: the committed report stays byte-identical whether
    #: or not the run was timed.
    wall_registry: Optional[MetricsRegistry] = None
    timeline: Optional[DiskTimeline] = None

    @property
    def ok(self) -> bool:
        return self.summary.errors == 0 and self.monitors.ok

    def to_dict(self) -> Dict[str, Any]:
        """Machine-readable report (the ``BENCH_smoke.json`` payload)."""
        per_kind = {}
        for kind in sorted(self.summary.ios_by_kind):
            per_kind[kind] = {
                "count": len(self.summary.ios_by_kind[kind]),
                "avg_ios": self.summary.avg(kind),
                "worst_ios": self.summary.worst(kind),
            }
        return {
            "structure": self.structure,
            "params": self.params,
            "operations": self.summary.operations,
            "total_ios": self.summary.total_ios,
            "per_kind": per_kind,
            "span_totals": self.recorder.totals(),
            "metrics": self.registry.as_dict(),
            "monitors": self.monitors.summary(),
            "notes": list(self.notes),
        }

    def render_text(self) -> str:
        """The human-readable report the CLI prints."""
        lines: List[str] = []
        lines.append(f"== instrumented run: {self.structure} ==")
        lines.append(
            "params: "
            + " ".join(f"{k}={v}" for k, v in sorted(self.params.items()))
        )
        lines.append("")
        lines.append("-- per-operation I/O --")
        rows = [
            [
                kind,
                len(self.summary.ios_by_kind[kind]),
                f"{self.summary.avg(kind):.3f}",
                self.summary.worst(kind),
            ]
            for kind in sorted(self.summary.ios_by_kind)
        ]
        lines.append(render_table(["kind", "count", "avg ios", "worst ios"], rows))
        lines.append("")
        lines.append("-- span totals --")
        rows = [
            [
                name,
                agg["count"],
                agg["total_ios"],
                agg["effective_ios"],
                f"{agg['total_ios'] / agg['count']:.3f}",
            ]
            for name, agg in self.recorder.totals().items()
        ]
        lines.append(
            render_table(
                ["span", "count", "raw ios", "effective ios", "avg raw"], rows
            )
        )
        lines.append("")
        lines.append("-- metrics --")
        lines.append(self.registry.render_text())
        lines.append("")
        lines.append("-- bound monitors --")
        lines.append(
            f"checks: {self.monitors.checks}  "
            f"violations: {len(self.monitors.violations)}  "
            f"{'OK' if self.monitors.ok else 'VIOLATED'}"
        )
        for v in self.monitors.violations:
            lines.append(
                f"  [{v.monitor}] {v.span_name}#{v.span_index}: "
                f"observed {v.observed:g} > budget {v.budget:g} ({v.detail})"
            )
        return "\n".join(lines)

    def render_wall_text(self) -> str:
        """The wall-clock addendum (``--wall`` / ``--percentiles``):
        latency percentile tables per op class / layer / lane, and the
        per-disk utilization summary when the run was traced.  All values
        here are real time — machine-dependent by design."""
        if self.wall_registry is None:
            return "(wall-clock channel not enabled; rerun with --wall)"
        lines: List[str] = []
        lines.append("-- wall latency (us, measured; varies run to run) --")
        for family, label in (
            ("latency.op_us", "op"),
            ("latency.layer_us", "layer"),
            ("latency.lane_us", "lane"),
            ("latency.kernel_us", "stage"),
        ):
            rows = percentile_rows(self.wall_registry, family)
            if not rows:
                continue
            lines.append(
                render_table(
                    [label, "count", "p50", "p95", "p99", "max"], rows
                )
            )
        if self.timeline is not None:
            lines.append("")
            lines.append("-- per-disk utilization (logical rounds) --")
            lines.append(
                render_table(
                    ["disk", "busy", "idle", "utilization"],
                    self.timeline.summary_rows(),
                )
            )
            lines.append(
                f"mean utilization: {self.timeline.mean_utilization:.1%} "
                f"over {self.timeline.total_rounds} rounds"
            )
        return "\n".join(lines)


def build_structure(
    structure: str,
    machine: ParallelDiskMachine,
    *,
    universe_size: int,
    capacity: int,
    sigma: int,
    seed: int,
):
    if structure == "basic":
        return BasicDictionary(
            machine,
            universe_size=universe_size,
            capacity=capacity,
            degree=machine.num_disks,
            seed=seed,
        )
    if structure == "dynamic":
        return DynamicDictionary(
            machine,
            universe_size=universe_size,
            capacity=capacity,
            sigma=sigma,
            seed=seed,
        )
    raise ValueError(
        f"unknown structure {structure!r}; choose from {STRUCTURES}"
    )


def run_instrumented(
    structure: str = "basic",
    *,
    num_disks: int = 16,
    block_items: int = 32,
    universe_size: int = 1 << 20,
    capacity: int = 512,
    operations: int = 512,
    sigma: int = 32,
    insert_fraction: float = 0.4,
    delete_fraction: float = 0.1,
    seed: int = 0,
    trace: bool = False,
    strict: bool = False,
    monitors: Optional[MonitorSet] = None,
    batch: Optional[int] = None,
    cache_blocks: Optional[int] = None,
    wall: bool = False,
    executor: str = "simulated",
    executor_dir: Optional[str] = None,
) -> ObsReport:
    """Replay a generated workload under full instrumentation.

    Returns the spans, metrics and monitor verdicts of the run; with
    ``strict=True`` the first theorem-budget violation raises
    :class:`~repro.obs.monitors.BoundViolationError` instead of being
    recorded.  With ``batch=N`` the replay routes runs of same-kind
    operations through the dictionary's round-packed batch methods and the
    report gains ``batch.*`` metrics (``rounds_saved`` et al.).  With
    ``cache_blocks=N`` the machine runs an ``N``-block buffer pool
    (:mod:`repro.pdm.cache`) and the report gains ``cache.*`` metrics —
    note the theorem-bound monitors assume the uncached cost model, so a
    cached strict run may legitimately *under*-shoot the budgets.

    With ``wall=True`` the span recorder (and tracer, if tracing) also
    run with the wall-clock channel attached: the report gains a separate
    ``wall_registry`` of latency histograms and, when traced, a
    ``timeline`` of per-disk utilization.  The deterministic outputs —
    ``to_dict()``, every metric in ``registry``, every monitor verdict —
    are byte-identical with ``wall`` on or off.

    ``executor`` selects the physical backend (:mod:`repro.pdm.executors`):
    ``"simulated"`` (default, in-memory), or ``"file"``/``"process"`` over
    real per-disk logs in ``executor_dir`` (a temporary directory when
    ``None``, removed when the run's machine is closed by the caller).
    The executor-equivalence invariant means every deterministic output is
    byte-identical across backends; with ``wall=True`` the file backends
    additionally receive the injected wall clock and the lane factory, so
    their worker threads stamp ``disk-lane:<disk>`` spans and the report
    gains ``executor.*`` transfer metrics in ``wall_registry``.
    """
    temp_dir: Optional[str] = None
    if executor == "simulated":
        engine = None
    else:
        if executor_dir is None:
            temp_dir = tempfile.mkdtemp(prefix="repro-executor-")
            executor_dir = temp_dir
        options: Dict[str, Any] = {}
        if wall:
            options["clock"] = wallclock.DEFAULT_CLOCK
            if executor == "file":
                options["lane_factory"] = wallclock.lane
        engine = create_executor(
            executor, directory=executor_dir, **options
        )
    machine = ParallelDiskMachine(
        num_disks, block_items, cache_blocks=cache_blocks, executor=engine
    )
    if temp_dir is not None:
        # The machine owns the throwaway image: closing it removes the
        # logs (callers that want to inspect them pass executor_dir).
        _cleanup_on_close(machine, temp_dir)
    dictionary = build_structure(
        structure,
        machine,
        universe_size=universe_size,
        capacity=capacity,
        sigma=sigma,
        seed=seed,
    )
    workload = Workload.generate(
        name=f"{structure}-mixed",
        universe_size=universe_size,
        operations=operations,
        capacity=capacity,
        value_bits=sigma,
        insert_fraction=insert_fraction,
        delete_fraction=delete_fraction,
        seed=seed,
    )
    recorder = attach_spans(machine)
    tracer = attach(machine) if trace else None
    if wall:
        enable_wall_clock(recorder)
        if tracer is not None:
            enable_wall_clock(tracer)

    summary = replay(dictionary, workload, batch=batch)

    registry = MetricsRegistry()
    collect_machine(registry, machine)
    collect_spans(registry, recorder)
    if batch is not None:
        collect_batches(registry, recorder)
    if structure == "basic":
        collect_load_distribution(
            registry, dictionary.load_histogram(), structure=structure
        )
    else:
        collect_load_distribution(
            registry,
            dictionary.membership.load_histogram(),
            structure=f"{structure}.membership",
        )
        for level, occupied in enumerate(dictionary.level_occupancy()):
            registry.gauge(
                "dynamic_dict.level_occupancy", level=level
            ).set(occupied)

    monitor_set = monitors if monitors is not None else MonitorSet(
        monitors=default_monitors(), strict=strict
    )
    monitor_set.check_recorder(recorder)

    wall_registry: Optional[MetricsRegistry] = None
    timeline = None
    if wall:
        wall_registry = MetricsRegistry()
        collect_latency(wall_registry, recorder)
        if tracer is not None:
            timeline = DiskTimeline.from_tracer(tracer, machine.num_disks)
        obs = machine.executor.observations
        if obs.read_batches or obs.write_batches:
            for key, value in obs.to_dict().items():
                if key == "per_disk_wall_ns":
                    for disk_id, ns in enumerate(value):
                        wall_registry.gauge(
                            "executor.disk_wall_ns", disk=disk_id
                        ).set(ns)
                else:
                    wall_registry.gauge(f"executor.{key}").set(value)

    params = {
        "num_disks": num_disks,
        "block_items": block_items,
        "universe_size": universe_size,
        "capacity": capacity,
        "operations": operations,
        "sigma": sigma,
        "seed": seed,
    }
    if batch is not None:
        params["batch"] = batch
    if cache_blocks is not None:
        params["cache_blocks"] = cache_blocks
    if executor != "simulated":
        # Executor equivalence: the backend changes no deterministic
        # output, but the report should say how the bytes really moved.
        params["executor"] = executor
    return ObsReport(
        structure=structure,
        params=params,
        summary=summary,
        recorder=recorder,
        registry=registry,
        monitors=monitor_set,
        tracer=tracer,
        machine=machine,
        dictionary=dictionary,
        wall_registry=wall_registry,
        timeline=timeline,
    )


def report_events(report: ObsReport) -> List[Dict[str, Any]]:
    """JSONL event stream of one report: a header, every span, every
    metric, every violation."""
    events: List[Dict[str, Any]] = [
        {
            "type": "run",
            "structure": report.structure,
            "params": report.params,
            "operations": report.summary.operations,
            "total_ios": report.summary.total_ios,
        }
    ]
    events.extend(span_events(report.recorder))
    for key, data in report.registry.as_dict().items():
        events.append({"type": "metric", "name": key, **data})
    for v in report.monitors.violations:
        events.append(v.to_dict())
    return events
