"""Latency attribution: wall histograms, layer split, per-disk timelines.

Everything here consumes the nondeterministic wall channel that
:mod:`repro.obs.wallclock` attaches to span/trace recorders and folds it
into *deterministically shaped* aggregates — fixed-bucket histograms
(:data:`~repro.obs.metrics.DEFAULT_LATENCY_BUCKETS_US`) with p50/p95/p99
estimation, per operation class (``lookup``/``insert``/``delete``/
``batch_*``), per layer (cache hit vs miss vs fault-retry vs uncached)
and per executor lane.  The *values* are wall measurements and vary run
to run; the *schema* (bucket bounds, label sets, key order) never does,
so reports from different runs and PRs line up metric-for-metric in the
bench trajectory (:mod:`repro.obs.history`).

Two recording modes:

* **Full spans** — a :class:`~repro.pdm.spans.SpanRecorder` with the wall
  channel enabled; :func:`collect_latency` attributes every root span.
* **Always-on** — :class:`LatencyTracker`, a histogram-only aggregator
  cheap enough to leave on in a serving loop (two clock reads and one
  bisect per operation; its self-measured overhead is gated ≤5% in CI by
  ``scripts/check_obs_overhead.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass, field
from typing import Any, Callable, Dict, List, Optional, Sequence, Tuple

from repro.obs.metrics import (
    DEFAULT_LATENCY_BUCKETS_US,
    DEFAULT_QUANTILES,
    Histogram,
    MetricsRegistry,
)
from repro.obs.wallclock import DEFAULT_CLOCK
from repro.pdm.spans import Span, SpanRecorder

#: Layer labels, in attribution-priority order.  ``kernel`` is special:
#: it is never the verdict of :func:`classify_layer` (which classifies
#: whole root spans) — its mass comes from the ``kernel.*`` *child* spans
#: a vectorized batched operation opens, attributed by
#: :func:`collect_latency` alongside the root's own layer.
LAYERS: Tuple[str, ...] = (
    "repair",
    "fault-retry",
    "cache-hit",
    "cache-miss",
    "uncached",
    "kernel",
)

#: Root-span name prefixes owned by the self-healing layer
#: (``repro.recovery``): rebuild scheduling and scrub passes.
_REPAIR_PREFIXES: Tuple[str, ...] = ("recovery.", "scrub.")

#: Child-span name prefix owned by the batch-kernel layer
#: (:mod:`repro.kernels`): the vectorized stages a batched operation runs
#: inside its root span (``kernel.neighborhoods`` / ``kernel.plan`` /
#: ``kernel.match``).
KERNEL_PREFIX = "kernel."


def op_class(span: Span) -> str:
    """The operation class of a root span: the last dotted component of
    its name (``"basic_dict.batch_lookup"`` → ``"batch_lookup"``)."""
    return span.name.rsplit(".", 1)[-1]


def classify_layer(span: Span) -> str:
    """Which layer served a root span, by priority:

    * ``repair`` — the span *is* background recovery work (a
      ``recovery.*`` or ``scrub.*`` root), as opposed to a foreground op
      that merely paid for retries;
    * ``fault-retry`` — recovery I/O happened (``retry_ios``/
      ``repair_ios`` in the raw cost, or the span ran degraded);
    * ``cache-hit`` — the buffer pool answered every read (hits recorded,
      zero charged read rounds);
    * ``cache-miss`` — the pool was consulted but a charged fetch
      happened;
    * ``uncached`` — no pool in the loop.
    """
    if span.name.startswith(_REPAIR_PREFIXES):
        return "repair"
    cost = span.cost
    if cost.retry_ios or cost.repair_ios or span.attrs.get("degraded"):
        return "fault-retry"
    hits = span.attrs.get("cache.hits", 0)
    misses = span.attrs.get("cache.misses", 0)
    if hits and not cost.read_ios:
        return "cache-hit"
    if misses or hits:
        return "cache-miss"
    return "uncached"


def collect_latency(
    registry: MetricsRegistry,
    recorder: SpanRecorder,
    *,
    buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US,
) -> int:
    """Fold wall-stamped root spans into latency histograms.

    Four label families, one histogram each per label value:
    ``latency.op_us{op=...}``, ``latency.layer_us{layer=...}``,
    ``latency.lane_us{lane=...}`` and — when batched operations ran
    through the vectorized kernels — ``latency.kernel_us{stage=...}``.
    Kernel attribution walks each root's subtree for wall-stamped
    ``kernel.*`` child spans (:data:`KERNEL_PREFIX`); their time lands
    both per stage (``kernel.plan`` → ``stage=plan``) and, summed, under
    ``layer=kernel`` in the layer family, so the layer table answers "how
    much of the wall went to the flat-array kernels" directly.  Spans
    without a wall stamp (recorded before the clock was enabled) are
    skipped.  Returns the number of *root* spans attributed.

    The registry this feeds is the *wall* registry of a report — keep it
    separate from the deterministic one so charged-cost artifacts stay
    byte-identical with the clock on or off.
    """
    attributed = 0
    for root in recorder.roots:
        if root.wall_ns is None:
            continue
        us = root.wall_ns / 1000.0
        registry.histogram("latency.op_us", buckets, op=op_class(root)).observe(us)
        registry.histogram(
            "latency.layer_us", buckets, layer=classify_layer(root)
        ).observe(us)
        if root.lane is not None:
            registry.histogram(
                "latency.lane_us", buckets, lane=root.lane
            ).observe(us)
        for node in root.walk():
            if (
                node is root
                or node.wall_ns is None
                or not node.name.startswith(KERNEL_PREFIX)
            ):
                continue
            kus = node.wall_ns / 1000.0
            registry.histogram(
                "latency.layer_us", buckets, layer="kernel"
            ).observe(kus)
            registry.histogram(
                "latency.kernel_us",
                buckets,
                stage=node.name[len(KERNEL_PREFIX):],
            ).observe(kus)
        attributed += 1
    return attributed


def percentile_rows(
    registry: MetricsRegistry,
    name: str = "latency.op_us",
    *,
    qs: Sequence[float] = DEFAULT_QUANTILES,
) -> List[List[Any]]:
    """Table rows ``[label, count, p50, p95, p99, max]`` (µs, label order
    = first-observation order) for one latency histogram family."""
    rows: List[List[Any]] = []
    for metric_name, labels, metric in registry.items():
        if metric_name != name or not isinstance(metric, Histogram):
            continue
        label = ",".join(labels.values()) if labels else "-"
        pcts = metric.percentiles(qs)
        rows.append(
            [label, metric.total]
            + [f"{pcts[k]:.1f}" for k in pcts]
            + [f"{metric.max:.1f}"]
        )
    return rows


# -- always-on low-overhead mode ----------------------------------------------


class LatencyTracker:
    """Histogram-only wall-latency aggregator for the always-on mode.

    No span trees, no allocation per operation: ``observe_ns`` is a dict
    probe plus a bisect into the fixed bucket bounds.  Use
    :meth:`start` / :meth:`stop_ns` around each operation (two clock
    reads) or :meth:`observe_ns` when the caller already timed it.  The
    result is the same :class:`~repro.obs.metrics.Histogram` shape the
    full span pipeline produces, so both modes feed the same tables and
    the same trajectory metrics.
    """

    __slots__ = ("clock", "buckets", "_hists")

    def __init__(
        self,
        *,
        buckets: Sequence[float] = DEFAULT_LATENCY_BUCKETS_US,
        clock: Optional[Callable[[], int]] = None,
    ) -> None:
        self.clock = clock if clock is not None else DEFAULT_CLOCK
        self.buckets = list(buckets)
        self._hists: Dict[str, Histogram] = {}  # detlint: guarded(owner-lane) -- one tracker per owning thread; cross-thread aggregation goes through record_into on the owner

    def start(self) -> int:
        return self.clock()

    def stop_ns(self, op: str, started: int) -> int:
        ns = self.clock() - started
        self.observe_ns(op, ns)
        return ns

    def observe_ns(self, op: str, ns: int) -> None:
        h = self._hists.get(op)
        if h is None:
            h = self._hists[op] = Histogram(self.buckets)
        us = ns / 1000.0
        # Inline of Histogram.observe(us) with a bisect instead of the
        # linear bound scan — this is the per-operation hot path the ≤5%
        # overhead gate protects.
        h.counts[bisect_left(h.bounds, us)] += 1
        h.total += 1
        h.sum += us
        if us > h.max:
            h.max = us

    def histogram(self, op: str) -> Optional[Histogram]:
        return self._hists.get(op)

    @property
    def operations(self) -> int:
        return sum(h.total for h in self._hists.values())

    def record_into(
        self, registry: MetricsRegistry, name: str = "latency.op_us"
    ) -> None:
        """Merge the tracked histograms into ``registry`` (same family
        name as :func:`collect_latency`, labelled by op class)."""
        for op, h in self._hists.items():
            target = registry.histogram(name, self.buckets, op=op)
            for idx, count in enumerate(h.counts):
                target.counts[idx] += count
            target.total += h.total
            target.sum += h.sum
            if h.max > target.max:
                target.max = h.max

    def percentiles(
        self, qs: Sequence[float] = DEFAULT_QUANTILES
    ) -> Dict[str, Dict[str, float]]:
        """Per-op percentile summary (µs): ``{op: {"count", "p50", ...}}``."""
        out: Dict[str, Dict[str, float]] = {}
        for op, h in self._hists.items():
            entry: Dict[str, float] = {"count": h.total}
            entry.update(
                {k: round(v, 2) for k, v in h.percentiles(qs).items()}
            )
            entry["max"] = round(h.max, 2)
            out[op] = entry
        return out


# -- per-disk utilization timelines -------------------------------------------


@dataclass(frozen=True)
class TimelineEvent:
    """One traced batch I/O placed on the logical round clock (and, when
    the trace carried the wall channel, on the real one)."""

    kind: str
    start_round: int
    rounds: int
    busy: Dict[int, int]  # disk -> busy rounds within this batch
    wall_ns: Optional[int] = None


@dataclass
class DiskTimeline:
    """Busy/idle accounting per disk, per logical round and per wall
    interval.

    Built from a :class:`~repro.pdm.trace.TraceRecorder`: each batch I/O
    advances the logical clock by its charged rounds and occupies every
    disk it touches for that disk's block multiplicity (≤ the batch
    rounds; the remainder is idle — exactly the slack the paper's striped
    layouts eliminate).  When the tracer carried a wall clock, events
    also have completion stamps and :meth:`wall_timeline` bins the same
    busy accounting into real-time intervals.
    """

    num_disks: int
    total_rounds: int = 0
    busy_rounds: List[int] = field(default_factory=list)
    events: List[TimelineEvent] = field(default_factory=list)

    @classmethod
    def from_tracer(cls, tracer, num_disks: int) -> "DiskTimeline":
        timeline = cls(num_disks=num_disks, busy_rounds=[0] * num_disks)
        walls = tracer.walls
        # walls[i] pairs with the *last* len(walls) events: the clock may
        # have been enabled after recording started.
        wall_base = len(tracer.events) - len(walls)
        cursor = 0
        for i, ev in enumerate(tracer.events):
            multiplicity: Dict[int, int] = {}
            for disk_id, _idx in ev.addrs:
                multiplicity[disk_id] = multiplicity.get(disk_id, 0) + 1
            busy = {
                disk_id: min(count, ev.rounds)
                for disk_id, count in multiplicity.items()
            }
            for disk_id, rounds in busy.items():
                if 0 <= disk_id < num_disks:
                    timeline.busy_rounds[disk_id] += rounds
            timeline.events.append(
                TimelineEvent(
                    kind=ev.kind,
                    start_round=cursor,
                    rounds=ev.rounds,
                    busy=busy,
                    wall_ns=walls[i - wall_base] if i >= wall_base else None,
                )
            )
            cursor += ev.rounds
        timeline.total_rounds = cursor
        return timeline

    def utilization(self, disk_id: int) -> float:
        if not self.total_rounds:
            return 0.0
        return self.busy_rounds[disk_id] / self.total_rounds

    @property
    def mean_utilization(self) -> float:
        if not self.num_disks:
            return 0.0
        return sum(self.utilization(d) for d in range(self.num_disks)) / (
            self.num_disks
        )

    def logical_timeline(
        self, width: int = 64
    ) -> List[Dict[str, Any]]:
        """Per-disk busy rounds binned into intervals of ``width`` logical
        rounds: ``[{"start_round", "busy": [per-disk]}, ...]``."""
        if width <= 0:
            raise ValueError(f"interval width must be positive, got {width}")
        bins: Dict[int, List[int]] = {}
        for ev in self.events:
            start = (ev.start_round // width) * width
            row = bins.setdefault(start, [0] * self.num_disks)
            for disk_id, busy in ev.busy.items():
                if 0 <= disk_id < self.num_disks:
                    row[disk_id] += busy
        return [
            {"start_round": start, "busy": bins[start]}
            for start in sorted(bins)
        ]

    def wall_timeline(
        self, width_ns: int = 1_000_000
    ) -> List[Dict[str, Any]]:
        """Like :meth:`logical_timeline` but binned by wall completion
        stamp (only events recorded while the clock was attached)."""
        if width_ns <= 0:
            raise ValueError(
                f"interval width must be positive, got {width_ns}"
            )
        stamped = [ev for ev in self.events if ev.wall_ns is not None]
        if not stamped:
            return []
        origin = min(ev.wall_ns for ev in stamped)
        bins: Dict[int, List[int]] = {}
        for ev in stamped:
            start = ((ev.wall_ns - origin) // width_ns) * width_ns
            row = bins.setdefault(start, [0] * self.num_disks)
            for disk_id, busy in ev.busy.items():
                if 0 <= disk_id < self.num_disks:
                    row[disk_id] += busy
        return [
            {"start_ns": start, "busy": bins[start]}
            for start in sorted(bins)
        ]

    def summary_rows(self) -> List[List[Any]]:
        """Table rows ``[disk, busy, idle, utilization]`` per disk."""
        rows: List[List[Any]] = []
        for d in range(self.num_disks):
            busy = self.busy_rounds[d]
            rows.append(
                [d, busy, self.total_rounds - busy,
                 f"{self.utilization(d):.1%}"]
            )
        return rows

    def to_dict(self) -> Dict[str, Any]:
        """Deterministic summary (logical rounds only — no wall values)."""
        return {
            "num_disks": self.num_disks,
            "total_rounds": self.total_rounds,
            "mean_utilization": round(self.mean_utilization, 4),
            "per_disk": [
                {
                    "disk": d,
                    "busy_rounds": self.busy_rounds[d],
                    "idle_rounds": self.total_rounds - self.busy_rounds[d],
                    "utilization": round(self.utilization(d), 4),
                }
                for d in range(self.num_disks)
            ],
        }
